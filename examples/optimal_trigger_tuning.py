#!/usr/bin/env python
"""Tuning the static trigger with Equation 18.

Given a machine (P, t_lb/U_calc) and a problem size W, the paper's
closed form predicts the best static threshold x_o.  This example
computes x_o for a range of configurations, then verifies one of them
against a measured sweep — the Table 3 experiment, self-served.

Run:  python examples/optimal_trigger_tuning.py
"""

import numpy as np

from repro import CostModel, optimal_static_trigger, run_divisible
from repro.util.tables import format_table


def predicted_table() -> None:
    cost = CostModel()  # CM-2 constants: 30 ms expansion, 13 ms LB phase
    rows = []
    for n_pes in (512, 2048, 8192):
        for work in (10**5, 10**6, 10**7):
            x_o = optimal_static_trigger(
                work, n_pes, u_calc=cost.u_calc, t_lb=cost.lb_phase_time(n_pes)
            )
            rows.append([n_pes, work, f"{x_o:.3f}"])
    print(
        format_table(
            ["P", "W", "x_o"],
            rows,
            title="Equation 18: optimal static trigger (x_o rises with W, falls with P)",
        )
    )


def measured_sweep(work: int = 500_000, n_pes: int = 512) -> None:
    cost = CostModel()
    x_o = optimal_static_trigger(
        work, n_pes, u_calc=cost.u_calc, t_lb=cost.lb_phase_time(n_pes)
    )
    print(f"\nmeasured sweep at W={work}, P={n_pes} (analytic x_o = {x_o:.3f}):")
    rows = []
    for x in np.round(np.arange(0.60, 0.99, 0.05), 2):
        m = run_divisible(f"GP-S{x}", work, n_pes, seed=11)
        rows.append([f"{x:.2f}", m.n_lb, f"{m.efficiency:.3f}"])
    m_at_xo = run_divisible(f"GP-S{x_o:.4f}", work, n_pes, seed=11)
    rows.append([f"{x_o:.3f} (x_o)", m_at_xo.n_lb, f"{m_at_xo.efficiency:.3f}"])
    print(format_table(["x", "Nlb", "E"], rows))


if __name__ == "__main__":
    predicted_table()
    measured_sweep()
