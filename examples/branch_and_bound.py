#!/usr/bin/env python
"""Depth-First Branch and Bound on the simulated SIMD machine.

The paper's load balancing is algorithm-agnostic across depth-first
methods; this example runs it on the two optimization workloads the
paper's introduction motivates — 0/1 knapsack (combinatorial
optimization) and TSP (operations research) — and shows the lock-step
incumbent-broadcast mechanism plus the node-count anomalies that
first-incumbent timing creates.

Run:  python examples/branch_and_bound.py
"""

from repro import KnapsackProblem, ParallelDFBB, TSPProblem, serial_dfbb
from repro.util.tables import format_table


def knapsack_demo() -> None:
    problem = KnapsackProblem.random(22, rng=5)
    optimum = problem.solve_dp()
    serial = serial_dfbb(problem)
    print(
        f"knapsack: {problem.n_items} items, capacity {problem.capacity}, "
        f"DP optimum {optimum}\n"
        f"serial DFBB: W={serial.expanded}, "
        f"{serial.incumbent_updates} incumbent updates"
    )

    rows = []
    for n_pes in (4, 16, 64):
        r = ParallelDFBB(problem, n_pes, "GP-DK", init_threshold=0.85).run()
        assert r.best_value == optimum
        rows.append(
            [n_pes, r.total_expanded, f"{r.total_expanded / serial.expanded:.2f}",
             f"{r.metrics.efficiency:.3f}"]
        )
    print(format_table(["P", "W parallel", "W_p/W_s", "E"], rows))
    print("(W_p/W_s != 1: branch-and-bound anomalies — pruning power depends")
    print(" on when the first good incumbent is found)\n")


def tsp_broadcast_demo() -> None:
    problem = TSPProblem.random_euclidean(10, rng=6)
    optimum = problem.solve_held_karp()
    print(f"TSP: 10 cities, Held-Karp optimum {optimum:.4f}")
    rows = []
    for every in (1, 8, 64, 10**9):
        r = ParallelDFBB(problem, 32, "GP-S0.75", broadcast_every=every).run()
        assert abs(r.best_value - optimum) < 1e-9
        rows.append(
            ["never" if every == 10**9 else every, r.total_expanded,
             f"{r.metrics.efficiency:.3f}"]
        )
    print(
        format_table(
            ["incumbent broadcast every", "W", "E"],
            rows,
            title="staleness costs expansions, never optimality:",
        )
    )


if __name__ == "__main__":
    knapsack_demo()
    tsp_broadcast_demo()
