#!/usr/bin/env python
"""Plugging your own problem into the SIMD search machinery.

The adoption story for a downstream user: subclass
:class:`repro.SearchProblem` (root + successor generator + goal test +
optional admissible heuristic), and every engine in the library —
serial DFS/IDA*, the lock-step parallel engine, all six load-balancing
schemes — works unchanged.

The demo problem: *subset-sum trees* — at each depth choose to include
or exclude a number, prune when the partial sum exceeds the target,
count exact hits.  Small, but genuinely irregular.

Run:  python examples/custom_problem.py
"""

from repro import ParallelIDAStar, SearchProblem, ida_star


class SubsetSumProblem(SearchProblem):
    """Count subsets of ``numbers`` summing exactly to ``target``.

    A state is ``(index, partial_sum)``: numbers before ``index`` are
    decided.  Branches where the partial sum already exceeds the target
    are pruned by the successor generator (all numbers are positive),
    which is what makes the tree unstructured.
    """

    def __init__(self, numbers: list[int], target: int) -> None:
        if any(n <= 0 for n in numbers):
            raise ValueError("numbers must be positive")
        self.numbers = sorted(numbers, reverse=True)  # fail fast
        self.target = target

    def initial_state(self):
        return (0, 0)

    def expand(self, state):
        index, total = state
        if index >= len(self.numbers):
            return []
        children = [(index + 1, total)]  # exclude
        with_it = total + self.numbers[index]
        if with_it <= self.target:
            children.append((index + 1, with_it))  # include
        return children

    def is_goal(self, state):
        index, total = state
        return index == len(self.numbers) and total == self.target

    def heuristic(self, state):
        # Remaining decisions — exact on depth, so IDA* needs one pass.
        return len(self.numbers) - state[0]


def main() -> None:
    numbers = [3, 34, 4, 12, 5, 2, 7, 13, 28, 19, 21, 9, 16, 25, 6, 11]
    target = 60
    problem = SubsetSumProblem(numbers, target)

    serial = ida_star(problem)
    print(
        f"subset-sum: {serial.solutions} subsets of {len(numbers)} numbers "
        f"sum to {target} (serial W = {serial.total_expanded})"
    )

    for spec in ("nGP-S0.75", "GP-S0.75", "GP-DK"):
        init = 0.85 if spec.endswith("DK") else None
        par = ParallelIDAStar(problem, 16, spec, init_threshold=init).run()
        assert par.solutions == serial.solutions
        assert par.total_expanded == serial.total_expanded
        print(
            f"  {spec:10s} on 16 PEs: cycles={par.metrics.n_expand:4d}  "
            f"Nlb={par.metrics.n_lb:3d}  E={par.metrics.efficiency:.3f}"
        )
    print("every scheme found the same count with the same total work —")
    print("your problem class is all you need to write.")


if __name__ == "__main__":
    main()
