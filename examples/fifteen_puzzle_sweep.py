#!/usr/bin/env python
"""A miniature Table 2 on the *real* 15-puzzle engine.

Sweeps matching schemes and static thresholds over a bundled instance,
reporting the paper's columns (N_expand, N_lb, E) measured on genuine
DFS stacks with bottom-of-stack donation — the full-fidelity version of
the abstract-model benchmark.

Run:  python examples/fifteen_puzzle_sweep.py
"""

from repro import ParallelIDAStar, ida_star
from repro.problems.fifteen_puzzle import BENCH_INSTANCES
from repro.util.tables import format_table


def main() -> None:
    name, n_pes = "small", 64
    puzzle = BENCH_INSTANCES[name]
    serial = ida_star(puzzle)
    print(
        f"instance '{name}': optimal cost {serial.solution_cost}, "
        f"serial W = {serial.total_expanded}\n"
    )

    rows = []
    for matching in ("nGP", "GP"):
        for x in (0.50, 0.70, 0.90):
            result = ParallelIDAStar(puzzle, n_pes, f"{matching}-S{x}").run()
            assert result.total_expanded == serial.total_expanded
            rows.append(
                [
                    f"{matching}-S{x:.2f}",
                    result.metrics.n_expand,
                    result.metrics.n_lb,
                    result.metrics.n_transfers,
                    f"{result.metrics.efficiency:.3f}",
                ]
            )
    for spec in ("GP-DP", "GP-DK"):
        result = ParallelIDAStar(puzzle, n_pes, spec, init_threshold=0.85).run()
        rows.append(
            [
                spec,
                result.metrics.n_expand,
                result.metrics.n_lb,
                result.metrics.n_transfers,
                f"{result.metrics.efficiency:.3f}",
            ]
        )

    print(
        format_table(
            ["scheme", "Nexpand", "Nlb", "transfers", "E"],
            rows,
            title=f"15-puzzle '{name}' on {n_pes} simulated PEs",
        )
    )
    print(
        "\npaper shapes to look for: GP needs fewer phases than nGP at\n"
        "x=0.90; the dynamic triggers land near the best static threshold."
    )


if __name__ == "__main__":
    main()
