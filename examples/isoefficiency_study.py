#!/usr/bin/env python
"""An end-to-end isoefficiency study (the Figure 4 workflow).

Runs a (scheme, W, P) grid, persists it as JSON (so re-analysis is
free), extracts the W needed for a target efficiency at each P, fits
the growth exponent against P log P, and draws the curves as an ASCII
chart — the full workflow a user would run on their own scheme.

Run:  python examples/isoefficiency_study.py
"""

import math
import tempfile
from pathlib import Path

from repro import growth_exponent, isoefficiency_points, run_grid
from repro.experiments.store import load_records, save_records, to_triples
from repro.util.ascii_plot import ascii_plot

SCHEMES = ["GP-S0.90", "nGP-S0.90"]
PES = [64, 128, 256, 512]
RATIOS = [4, 8, 16, 32, 64, 128]
TARGET = 0.7


def main() -> None:
    records = []
    for p in PES:
        works = [int(r * p * math.log2(p)) for r in RATIOS]
        records.extend(run_grid(SCHEMES, works, [p], base_seed=17))
    print(f"ran {len(records)} grid cells")

    store = Path(tempfile.gettempdir()) / "repro_isoeff_grid.json"
    save_records(records, store)
    records = load_records(store)  # prove the round trip
    print(f"grid persisted to {store}")

    curves = {}
    for scheme in SCHEMES:
        triples = to_triples([r for r in records if r.scheme == scheme])
        points = isoefficiency_points(triples, TARGET)
        b = growth_exponent(points)
        curves[f"{scheme} (b={b:.2f})"] = [(float(p), w) for p, w in points]
        print(f"{scheme}: W for E={TARGET} grows as (P log P)^{b:.2f}")

    print()
    print(
        ascii_plot(
            curves,
            logx=True,
            logy=True,
            x_label="P",
            y_label=f"W required for E={TARGET}",
            title="experimental isoefficiency curves",
            height=16,
        )
    )
    print(
        "\nthe paper's conclusion: GP-S0.90 tracks O(P log P) (exponent ~1);"
        "\nnGP needs more work at the same machine size."
    )


if __name__ == "__main__":
    main()
