#!/usr/bin/env python
"""Quickstart: parallel tree search on a simulated SIMD machine.

Two entry points in one script:

1. Solve a real 15-puzzle instance with parallel IDA* under the paper's
   recommended scheme (GP matching + D_K dynamic triggering) and check
   the node count against serial IDA*.
2. Run a paper-scale abstract workload (P = 8192, W = 16.1M — Table 2's
   largest configuration) in about a second.

Run:  python examples/quickstart.py
"""

from repro import (
    ParallelIDAStar,
    ida_star,
    run_divisible,
    scrambled_fifteen_puzzle,
)


def solve_a_puzzle() -> None:
    puzzle = scrambled_fifteen_puzzle(30, rng=7)
    print("15-puzzle instance:", puzzle.tiles)

    serial = ida_star(puzzle)
    print(
        f"serial IDA*:   cost={serial.solution_cost}  "
        f"solutions={serial.solutions}  W={serial.total_expanded}"
    )

    parallel = ParallelIDAStar(
        puzzle, n_pes=64, scheme="GP-DK", init_threshold=0.85
    ).run()
    print(
        f"parallel IDA*: cost={parallel.solution_cost}  "
        f"solutions={parallel.solutions}  W={parallel.total_expanded}  "
        f"cycles={parallel.metrics.n_expand}  "
        f"LB phases={parallel.metrics.n_lb}  "
        f"E={parallel.metrics.efficiency:.3f}"
    )
    assert parallel.total_expanded == serial.total_expanded, (
        "anomaly-free setup: serial and parallel W must match"
    )
    print("node counts match: the Section 5 setup holds\n")


def paper_scale_run() -> None:
    print("paper-scale divisible workload (Table 2, largest cell):")
    for spec in ("nGP-S0.90", "GP-S0.90", "GP-DK"):
        metrics = run_divisible(spec, total_work=16_110_463, n_pes=8192, seed=42)
        print(
            f"  {spec:10s}  Nexpand={metrics.n_expand:5d}  "
            f"Nlb={metrics.n_lb:5d}  E={metrics.efficiency:.2f}"
        )
    print("(paper, GP-S0.90: Nexpand=2099, Nlb=172, E=0.91)")


if __name__ == "__main__":
    solve_a_puzzle()
    paper_scale_run()
