#!/usr/bin/env python
"""Section 9's conclusion, measured: SIMD GP vs MIMD work stealing.

Runs the same (P, W) grid through the lock-step GP-S^0.85 scheduler and
through an asynchronous global-round-robin work-stealing simulation,
then compares the W each needs to sustain 70% efficiency.  The paper's
claim: similar scalability, with SIMD paying a constant-factor idling
tax that hardware cost can offset.

Run:  python examples/simd_vs_mimd.py
"""

import math

from repro import growth_exponent, isoefficiency_points, run_divisible
from repro.baselines.mimd import MimdWorkStealing
from repro.util.tables import format_table


def main() -> None:
    pes = [64, 128, 256, 512]
    ratios = [8, 16, 32, 64, 128]
    simd_records, mimd_records, rows = [], [], []

    for p in pes:
        for r in ratios:
            w = int(r * p * math.log2(p))
            simd = run_divisible("GP-S0.85", w, p, seed=13)
            mimd = MimdWorkStealing(w, p, policy="grr", rng=13).run()
            simd_records.append((p, float(w), simd.efficiency))
            mimd_records.append((p, float(w), mimd.efficiency))
            if r == 32:
                rows.append(
                    [p, w, f"{simd.efficiency:.3f}", f"{mimd.efficiency:.3f}"]
                )

    print(
        format_table(
            ["P", "W (ratio=32)", "SIMD GP-S0.85 E", "MIMD GRR E"],
            rows,
            title="Efficiency at matched work per processor",
        )
    )

    for label, records in (("SIMD", simd_records), ("MIMD", mimd_records)):
        points = isoefficiency_points(records, 0.7)
        b = growth_exponent(points)
        print(f"{label}: W for E=0.7 grows as (P log P)^{b:.2f}")
    print(
        "\npaper's reading: both track O(P log P); the MIMD machine is a\n"
        "constant factor more efficient (no lock-step idling), which the\n"
        "SIMD machine's hardware-cost advantage can repay."
    )


if __name__ == "__main__":
    main()
