#!/usr/bin/env python
"""The Figure 2 worked example: GP vs nGP matching, step by step.

Eight processors, two of them idle, and the paper's exact scenario: the
global pointer starts at processor 5 (1-indexed).  nGP hits the same
donors every phase; GP rotates the burden — the property that drops the
phase bound V(P) from (log W)^{(2x-1)/(1-x)} to ceil(1/(1-x)).

Run:  python examples/matching_walkthrough.py
"""

import numpy as np

from repro import GPMatcher, NGPMatcher


def show(label: str, matcher, busy: np.ndarray, idle: np.ndarray, phases: int) -> None:
    print(f"\n{label}")
    for phase in range(phases):
        result = matcher.match(busy, idle)
        pairs = ", ".join(
            f"PE{d + 1}->PE{r + 1}"  # print 1-indexed like the paper
            for d, r in zip(result.donors, result.receivers)
        )
        pointer = ""
        if isinstance(matcher, GPMatcher):
            pointer = f"   (global pointer now at PE{matcher.pointer + 1})"
        print(f"  phase {phase + 1}: {pairs}{pointer}")


def main() -> None:
    # Figure 2: processors 1-5 and 8 busy, 6 and 7 idle (1-indexed).
    busy = np.array([1, 1, 1, 1, 1, 0, 0, 1], dtype=bool)
    idle = ~busy
    print("state:", " ".join("B" if b else "I" for b in busy), "(PE1..PE8)")

    show("nGP (no global pointer) — same donors every phase:", NGPMatcher(), busy, idle, 3)
    gp = GPMatcher(pointer=4)  # the paper's pointer: processor 5, 0-indexed 4
    show("GP (global pointer at PE5) — donors rotate:", gp, busy, idle, 3)

    print(
        "\npaper's Figure 2 expects: GP phase 1 donors PE8->PE6, PE1->PE7;"
        "\nphase 2 donors PE2->PE6, PE3->PE7 — matching the output above."
    )


if __name__ == "__main__":
    main()
