"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``schemes`` — list the Table 1 scheme registry.
- ``run`` — one load-balancing run over the divisible workload; supports
  fault injection (``--faults``) and checkpoint/resume (``--checkpoint``,
  ``--resume``).
- ``solve`` — solve a real problem instance (puzzle / queens / knapsack
  / tsp) with parallel search on the simulated machine.
- ``xo`` — the Equation 18 optimal static trigger for a configuration.
- ``table`` / ``figure`` — regenerate a paper table or figure.
- ``bench`` — time the hot kernels, the real-search backends and a
  small grid; writes ``BENCH_kernels.json`` and ``BENCH_search.json``
  for the perf trajectory.
- ``stats`` — render a metrics-registry snapshot (written by ``run
  --stats`` / ``grid --stats``) and check the ledger identity
  ``P * T_par == T_calc + T_idle + T_lb + T_recovery`` it must encode.
- ``trace`` — run one profiled stack-model workload and write a
  Chrome-trace / Perfetto ``trace.json`` of the kernel spans.
- ``lint`` — the SIMD-discipline static checks (rules R001-R005).

Every command prints plain text and exits non-zero on bad arguments, so
the CLI scripts cleanly.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unstructured tree search on simulated SIMD machines "
        "(Karypis & Kumar, 1992).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list the Table 1 load-balancing schemes")

    run = sub.add_parser("run", help="run a scheme over the divisible workload")
    run.add_argument(
        "scheme", nargs="?", default=None,
        help="scheme spec, e.g. GP-S0.90 or nGP-DK (omit with --resume)",
    )
    run.add_argument("--work", type=int, default=1_000_000, help="W, total nodes")
    run.add_argument("--pes", type=int, default=1024, help="P, processors")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--lb-mult", type=float, default=1.0, help="LB transfer cost multiplier"
    )
    run.add_argument(
        "--init", type=float, default=None,
        help="initial-distribution threshold (default: 0.85 for dynamic triggers)",
    )
    run.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-plan spec, e.g. 'kill=2,drop=0.05,seed=1' or "
        "'kill=3:40+7:90,straggle=2,slow=4'",
    )
    run.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a checkpoint file here every --checkpoint-every cycles",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=100, metavar="N",
        help="cycles between checkpoint writes (default 100)",
    )
    run.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a checkpointed run instead of starting fresh",
    )
    run.add_argument(
        "--sanitize", action="store_true",
        help="enable the per-cycle runtime sanitizer",
    )
    run.add_argument(
        "--stats", default=None, metavar="PATH",
        help="write a metrics-registry snapshot here (view with 'repro stats')",
    )

    solve = sub.add_parser("solve", help="solve a real problem instance")
    solve.add_argument(
        "problem", choices=["puzzle", "queens", "knapsack", "tsp", "coloring"],
    )
    solve.add_argument("--scheme", default="GP-DK")
    solve.add_argument("--pes", type=int, default=64)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--size", type=int, default=None,
        help="puzzle: scramble length (default 25); queens: board size "
        "(default 8); knapsack: items (default 20); tsp: cities "
        "(default 10); coloring: vertices (default 10, 3 colors)",
    )
    solve.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-plan spec (puzzle/queens/coloring only), "
        "e.g. 'kill=1,drop=0.02,seed=3'",
    )
    solve.add_argument(
        # Mirrors kernels.dispatch.BACKENDS; kept literal so building the
        # parser stays import-light (locked by a CLI test).
        "--kernel-backend", default="numpy",
        choices=["auto", "numpy", "fused", "jit"],
        help="expand-cycle kernel tier (puzzle only — a non-numpy tier "
        "switches the search to the arena backend, which needs the "
        "puzzle's vectorizable state).  'jit' needs numba and degrades "
        "to 'fused' without it (default: numpy)",
    )

    xo = sub.add_parser("xo", help="Equation 18 optimal static trigger")
    xo.add_argument("--work", type=float, required=True)
    xo.add_argument("--pes", type=int, required=True)
    xo.add_argument("--u-calc", type=float, default=0.030)
    xo.add_argument("--t-lb", type=float, default=0.013)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=[1, 2, 3, 4, 5, 6])
    table.add_argument("--scale", default="small", choices=["tiny", "small", "paper"])
    table.add_argument("--seed", type=int, default=0)
    table.add_argument("--out", default=None, help="directory to save the table")

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=[1, 3, 4, 5, 6, 7, 8])
    figure.add_argument("--scale", default="small", choices=["tiny", "small", "paper"])
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--out", default=None, help="directory to save the figure")

    grid = sub.add_parser(
        "grid", help="run a (scheme, W, P) grid and save it as JSON"
    )
    grid.add_argument("out", help="output JSON path")
    grid.add_argument("--schemes", nargs="+", default=["GP-S0.90"])
    grid.add_argument("--works", nargs="+", type=int, required=True)
    grid.add_argument("--pes", nargs="+", type=int, required=True)
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the grid cells (default: serial)",
    )
    grid.add_argument(
        # Mirrors runner.GRID_EXECUTORS; kept literal so building the
        # parser stays import-light (locked by a CLI test).
        "--executor", default="auto",
        choices=["auto", "serial", "process", "batched"],
        help="grid execution strategy: batched packs all cells into one "
        "mega-arena; process is the per-cell pool; auto picks batched "
        "when every cell supports it (default: auto)",
    )
    grid.add_argument(
        "--stats", default=None, metavar="PATH",
        help="write a metrics-registry snapshot here (view with 'repro stats')",
    )
    grid.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write-ahead cell journal: each completed cell is durably "
        "recorded here the moment it finishes",
    )
    grid.add_argument(
        "--resume", action="store_true",
        help="skip cells already recorded in --journal (bit-identical to "
        "an uninterrupted run)",
    )
    grid.add_argument(
        "--kernel-backend", default="numpy",
        choices=["auto", "numpy", "fused", "jit"],
        help="kernel tier for the batched executor's mega-arena "
        "(serial/process paths ignore it; every tier is "
        "record-identical; default: numpy)",
    )

    bench = sub.add_parser(
        "bench",
        help="time the hot kernels; write BENCH_kernels.json + BENCH_search.json",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="few-second CI variant (small machine width, short timings)",
    )
    bench.add_argument(
        "--pes", type=int, default=None,
        help="machine width for the kernel benches (default: 4096, smoke: 256)",
    )
    bench.add_argument(
        "--jobs", type=int, default=4, help="worker processes for the grid bench"
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--out", default=None,
        help="report path (default: BENCH_kernels.json in the cwd)",
    )
    bench.add_argument(
        "--search-out", default=None,
        help="search report path (default: BENCH_search.json in the cwd)",
    )
    bench.add_argument(
        "--no-search", action="store_true",
        help="skip the real-search section (stack-model kernels only)",
    )
    bench.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="diff two bench JSON reports instead of running benches; "
        "exits 1 if any metric regressed past --tolerance",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional regression for --compare (default: 0.10)",
    )
    bench.add_argument(
        "--ratios-only", action="store_true",
        help="--compare only the host-independent speedup* ratios — use "
        "when OLD and NEW were produced on different machines (CI gates "
        "a fresh smoke report against the committed baseline this way)",
    )

    stats = sub.add_parser(
        "stats", help="render a metrics-registry snapshot as a table"
    )
    stats.add_argument("snapshot", help="JSON path written with --stats")
    stats.add_argument(
        "--no-check", action="store_true",
        help="skip the per-scheme ledger-identity check",
    )

    trace = sub.add_parser(
        "trace", help="profile one stack-model run; write Chrome-trace JSON"
    )
    trace.add_argument(
        "--out", default="trace.json",
        help="Chrome-trace output path (default: trace.json; open in "
        "chrome://tracing or ui.perfetto.dev)",
    )
    trace.add_argument("--scheme", default="GP-DK")
    trace.add_argument("--work", type=int, default=50_000, help="W, total nodes")
    trace.add_argument("--pes", type=int, default=256, help="P, processors")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--backend", default="arena", choices=["list", "arena"],
        help="stack-model storage backend to profile (default: arena)",
    )
    trace.add_argument(
        "--kernel-backend", default="numpy",
        choices=["auto", "numpy", "fused", "jit"],
        help="expand-cycle kernel tier for the arena backend "
        "(default: numpy; the list backend is the oracle and only "
        "accepts numpy)",
    )

    iso = sub.add_parser(
        "isoeff", help="extract an isoefficiency curve from a saved grid"
    )
    iso.add_argument("store", help="JSON path written by 'grid'")
    iso.add_argument("--target", type=float, default=0.7, help="efficiency level")
    iso.add_argument(
        "--scheme", default=None, help="restrict to one scheme (default: all)"
    )

    report = sub.add_parser(
        "report", help="consolidate results/ artifacts into one report"
    )
    report.add_argument("--results", default="results", help="artifacts directory")
    report.add_argument("--out", default=None, help="write the report here")

    lint = sub.add_parser(
        "lint",
        help="SIMD-discipline static checks (R001-R005; --strict adds "
        "the R100-R103 dataflow rules)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    lint.add_argument(
        "--format", dest="fmt", choices=["text", "json", "sarif"],
        default="text",
    )
    lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule subset, e.g. R001,R103 (default: "
        "R001-R005, plus R100-R103 under --strict)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="run the dataflow rule family (R100-R103) too: call-graph "
        "RNG provenance, kernel purity, mask-guarded writes",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="drop findings fingerprinted in this baseline file; only "
        "non-baselined findings fail the run (the ratchet)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline (default .lint-baseline.json) with the "
        "current findings and exit 0",
    )
    lint.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the formatted report here (a text summary still "
        "prints to stdout)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )

    serve = sub.add_parser(
        "serve",
        help="run the content-addressed experiment service (POST /solve, "
        "POST /grid, GET /jobs, GET /records; identical re-submissions "
        "are served from the shared record store)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8642,
        help="bind port; 0 picks a free one (default: 8642)",
    )
    serve.add_argument(
        "--store", default="serve-data",
        help="service root: record store + per-job artifacts (default: "
        "serve-data/)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker threads (default: 2)"
    )
    serve.add_argument(
        "--max-pending", type=int, default=32,
        help="queued-plus-running job bound; beyond it submissions get "
        "429 (default: 32)",
    )
    serve.add_argument(
        "--backend", choices=["auto", "stdlib", "fastapi"], default="auto",
        help="HTTP backend; 'auto' uses fastapi when importable, else "
        "the stdlib server (default: auto)",
    )

    return parser


def _cmd_schemes() -> int:
    from repro.core.config import PAPER_SCHEMES, make_scheme

    print("Table 1 load-balancing schemes (spec -> transfers per LB phase):")
    for spec in PAPER_SCHEMES:
        scheme = make_scheme(spec)
        kind = "multiple" if scheme.multiple_transfers else "single"
        print(f"  {scheme.name:11s} {kind}")
    print("\nstatic thresholds are free: any 'GP-S<x>' or 'nGP-S<x>' works.")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_divisible
    from repro.faults import CheckpointConfig, FaultPlan, resume_run
    from repro.simd.cost import CostModel

    registry = None
    obs = None
    if args.stats:
        from repro.obs import MetricsRegistry, Observability

        registry = MetricsRegistry()
        obs = Observability(metrics=registry)
    checkpoint = (
        CheckpointConfig(args.checkpoint, every=args.checkpoint_every)
        if args.checkpoint
        else None
    )
    if args.resume:
        metrics = resume_run(args.resume, checkpoint=checkpoint)
        if registry is not None:
            # resume_run rebuilds the scheduler itself; fold the finished
            # run into the registry here instead of threading obs through.
            from repro.obs import record_run

            record_run(registry, metrics)
    else:
        if args.scheme is None:
            print(
                "repro run: error: a scheme is required unless --resume is given",
                file=sys.stderr,
            )
            return 2
        faults = (
            FaultPlan.from_spec(args.faults, args.pes) if args.faults else None
        )
        cost = CostModel().with_lb_multiplier(args.lb_mult)
        init = args.init if args.init is not None else "auto"
        metrics = run_divisible(
            args.scheme,
            args.work,
            args.pes,
            cost_model=cost,
            seed=args.seed,
            init_threshold=init,
            faults=faults,
            checkpoint=checkpoint,
            sanitize=args.sanitize,
            obs=obs,
        )
    print(
        f"{metrics.scheme}: W={metrics.total_work}  P={metrics.n_pes}\n"
        f"  Nexpand={metrics.n_expand}  Nlb={metrics.n_lb}  "
        f"transfers={metrics.n_transfers}\n"
        f"  efficiency={metrics.efficiency:.4f}  speedup={metrics.speedup:.1f}"
    )
    _print_fault_report(metrics)
    if registry is not None:
        path = registry.save_json(args.stats)
        print(f"  metrics snapshot written to {path}")
    return 0


def _print_fault_report(metrics: object) -> None:
    report = getattr(metrics, "faults", None)
    if report is None or not report.any_faults:
        return
    inner = getattr(metrics, "ledger", None)
    recovery = f"  T_recovery={inner.t_recovery:.3f}" if inner is not None else ""
    print(
        f"  faults: deaths={report.pe_deaths}  "
        f"quarantined={report.nodes_quarantined}  "
        f"recovered={report.nodes_recovered}  "
        f"dropped={report.transfers_dropped}  "
        f"duplicated={report.transfers_duplicated}{recovery}"
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.kernels.dispatch import jit_note, resolve_backend
    from repro.search.branch_and_bound import ParallelDFBB
    from repro.search.parallel import ParallelIDAStar

    faults = None
    if args.faults:
        if args.problem in ("knapsack", "tsp"):
            print(
                "repro solve: error: --faults supports the IDA* problems "
                "(puzzle, queens, coloring) only",
                file=sys.stderr,
            )
            return 2
        from repro.faults import FaultPlan

        faults = FaultPlan.from_spec(args.faults, args.pes)
    kernel_backend = resolve_backend(args.kernel_backend)
    if kernel_backend != "numpy" and args.problem != "puzzle":
        print(
            "repro solve: error: a non-numpy --kernel-backend needs the "
            "arena-backed search, which only the puzzle problem supports",
            file=sys.stderr,
        )
        return 2
    if args.kernel_backend == "jit" and jit_note() is not None:
        print(f"note: {jit_note()}")
    # Non-numpy tiers run on the arena storage; numpy keeps the
    # historical list-backend default.
    search_kwargs = dict(
        kernel_backend=kernel_backend,
        backend="arena" if kernel_backend != "numpy" else "list",
    )
    init = 0.85 if args.scheme.endswith(("DK", "DP")) else None
    if args.problem == "puzzle":
        from repro.problems.fifteen_puzzle import scrambled_fifteen_puzzle

        puzzle = scrambled_fifteen_puzzle(args.size or 25, rng=args.seed)
        print("instance:", puzzle.tiles)
        result = ParallelIDAStar(
            puzzle, args.pes, args.scheme, init_threshold=init, faults=faults,
            **search_kwargs,
        ).run()
        print(
            f"optimal cost={result.solution_cost}  solutions={result.solutions}\n"
            f"W={result.total_expanded}  cycles={result.metrics.n_expand}  "
            f"Nlb={result.metrics.n_lb}  E={result.metrics.efficiency:.3f}"
        )
        _print_fault_report(result.metrics)
    elif args.problem == "queens":
        from repro.problems.nqueens import NQueensProblem

        problem = NQueensProblem(args.size or 8)
        result = ParallelIDAStar(
            problem, args.pes, args.scheme, init_threshold=init, faults=faults,
            **search_kwargs,
        ).run()
        print(
            f"{problem.n}-queens: solutions={result.solutions}  "
            f"W={result.total_expanded}  E={result.metrics.efficiency:.3f}"
        )
        _print_fault_report(result.metrics)
    elif args.problem == "knapsack":
        from repro.problems.knapsack import KnapsackProblem

        problem = KnapsackProblem.random(args.size or 20, rng=args.seed)
        result = ParallelDFBB(
            problem, args.pes, args.scheme, init_threshold=init
        ).run()
        print(
            f"knapsack n={problem.n_items} cap={problem.capacity}: "
            f"optimum={result.best_value:.0f} (DP check: {problem.solve_dp()})\n"
            f"W={result.total_expanded}  E={result.metrics.efficiency:.3f}"
        )
    elif args.problem == "tsp":
        from repro.problems.tsp import TSPProblem

        problem = TSPProblem.random_euclidean(args.size or 10, rng=args.seed)
        result = ParallelDFBB(
            problem, args.pes, args.scheme, init_threshold=init
        ).run()
        print(
            f"tsp n={problem.n}: optimum={result.best_value:.4f}\n"
            f"W={result.total_expanded}  E={result.metrics.efficiency:.3f}"
        )
    else:
        from repro.problems.coloring import GraphColoringProblem

        problem = GraphColoringProblem.random(args.size or 10, 3, rng=args.seed)
        result = ParallelIDAStar(
            problem, args.pes, args.scheme, init_threshold=init, faults=faults,
            **search_kwargs,
        ).run()
        print(
            f"3-coloring, {problem.n_vertices} vertices: "
            f"{result.solutions} proper colorings\n"
            f"W={result.total_expanded}  E={result.metrics.efficiency:.3f}"
        )
        _print_fault_report(result.metrics)
    return 0


def _cmd_xo(args: argparse.Namespace) -> int:
    from repro.analysis.optimal_trigger import (
        optimal_static_trigger,
        predicted_optimal_efficiency,
    )

    x_o = optimal_static_trigger(
        args.work, args.pes, u_calc=args.u_calc, t_lb=args.t_lb
    )
    e = predicted_optimal_efficiency(
        args.work, args.pes, u_calc=args.u_calc, t_lb=args.t_lb
    )
    print(f"x_o = {x_o:.4f}   predicted peak efficiency = {e:.4f}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import tables

    fn = getattr(tables, f"table{args.number}")
    if args.number == 6:
        result = fn()
    else:
        result = fn(scale=args.scale, seed=args.seed)
    print(result.render())
    if args.out:
        path = result.save(args.out)
        print(f"\nsaved to {path}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    fn = getattr(figures, f"fig{args.number}")
    if args.number in (4, 7):
        result = fn(seed=args.seed)
    elif args.number == 5:
        result = fn()
    else:
        result = fn(scale=args.scale, seed=args.seed)
    print(result.render())
    if args.out:
        path = result.save(args.out)
        print(f"\nsaved to {path}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError, GridCellError
    from repro.experiments.runner import run_grid
    from repro.experiments.store import save_records

    registry = None
    if args.stats:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    try:
        records = run_grid(
            args.schemes, args.works, args.pes, base_seed=args.seed,
            n_jobs=args.jobs, registry=registry, executor=args.executor,
            kernel_backend=args.kernel_backend,
            journal=args.journal, resume=args.resume,
        )
    except ConfigError as exc:
        print(f"repro grid: error: {exc}", file=sys.stderr)
        return 2
    except GridCellError as exc:
        report = exc.quarantine
        print(f"repro grid: error: {exc}", file=sys.stderr)
        if report is not None:
            hint = (
                f" (rerun with --journal {args.journal} --resume to retry "
                "only the quarantined cells)"
                if args.journal
                else ""
            )
            print(
                f"repro grid: quarantined {len(report.failures)} of "
                f"{report.n_cells} cell(s); {report.n_completed} "
                f"completed{hint}",
                file=sys.stderr,
            )
        return 1
    path = save_records(records, args.out)
    print(f"ran {len(records)} cells; saved to {path}")
    if registry is not None:
        stats_path = registry.save_json(args.stats)
        print(f"metrics snapshot written to {stats_path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        BENCH_PATH,
        BENCH_SEARCH_PATH,
        compare_bench,
        render_bench,
        render_compare,
        render_search_bench,
        run_bench,
    )

    if args.compare is not None:
        old_path, new_path = args.compare
        try:
            old = json.loads(Path(old_path).read_text())
            new = json.loads(Path(new_path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read bench report: {exc}", file=sys.stderr)
            return 2
        try:
            result = compare_bench(
                old, new, tolerance=args.tolerance, ratios_only=args.ratios_only
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_compare(result))
        return 0 if result["ok"] else 1

    out = args.out if args.out is not None else BENCH_PATH
    search_out = (
        None
        if args.no_search
        else (args.search_out if args.search_out is not None else BENCH_SEARCH_PATH)
    )
    report = run_bench(
        smoke=args.smoke,
        n_pes=args.pes,
        n_jobs=args.jobs,
        seed=args.seed,
        out=out,
        search_out=search_out,
    )
    print(render_bench(report))
    if search_out is not None:
        print(render_search_bench(report["search_report"]))
        print(f"\nreports written to {out} and {search_out}")
    else:
        print(f"\nreport written to {out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.errors import RecordStoreError
    from repro.obs import check_snapshot_identity, load_snapshot, render_snapshot

    try:
        snapshot = load_snapshot(args.snapshot)
        if not args.no_check:
            schemes = check_snapshot_identity(snapshot)
    except RecordStoreError as exc:
        print(f"repro stats: error: {exc}", file=sys.stderr)
        return 2
    print(render_snapshot(snapshot))
    if not args.no_check:
        if schemes:
            print(
                f"\nledger identity P*T_par == T_calc+T_idle+T_lb+T_recovery "
                f"holds for {len(schemes)} scheme(s): {', '.join(schemes)}"
            )
        else:
            print("\n(no per-scheme ledger lines to check)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.scheduler import Scheduler
    from repro.kernels.dispatch import resolve_backend
    from repro.obs import Profiler, profiled
    from repro.simd.machine import SimdMachine
    from repro.workmodel.stackmodel import StackWorkload

    if args.backend == "list" and resolve_backend(args.kernel_backend) != "numpy":
        print(
            "repro trace: error: --kernel-backend needs --backend arena "
            "(the list backend is the numpy-only oracle)",
            file=sys.stderr,
        )
        return 2
    workload = StackWorkload(
        args.work, args.pes, rng=args.seed, backend=args.backend,
        kernel_backend=args.kernel_backend,
    )
    machine = SimdMachine(args.pes)
    init = 0.85 if args.scheme.endswith(("DK", "DP", "D_K", "D_P")) else None
    profiler = Profiler()
    with profiled(profiler):
        metrics = Scheduler(
            workload, machine, args.scheme, init_threshold=init
        ).run()
    path = profiler.save_chrome_trace(args.out)
    print(profiler.render_totals())
    print(
        f"\n{metrics.scheme}: W={metrics.total_work}  P={metrics.n_pes}  "
        f"Nexpand={metrics.n_expand}  E={metrics.efficiency:.4f}"
    )
    print(f"chrome trace ({profiler.n_spans} spans) written to {path}")
    return 0


def _cmd_isoeff(args: argparse.Namespace) -> int:
    from repro.analysis.isoefficiency import growth_exponent, isoefficiency_points
    from repro.experiments.store import load_records, to_triples

    records = load_records(args.store)
    schemes = sorted({r.scheme for r in records})
    if args.scheme is not None:
        if args.scheme not in schemes:
            raise ValueError(
                f"scheme {args.scheme!r} not in store (has: {schemes})"
            )
        schemes = [args.scheme]
    for scheme in schemes:
        triples = to_triples([r for r in records if r.scheme == scheme])
        points = isoefficiency_points(triples, args.target)
        if len(points) < 2:
            print(f"{scheme}: target E={args.target} not bracketed by the grid")
            continue
        b = growth_exponent(points)
        print(f"{scheme}: W for E={args.target} grows as (P log P)^{b:.2f}")
        for p, w in points:
            print(f"  P={p:<6d} W={w:,.0f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.consolidate import consolidate_report

    text = consolidate_report(args.results, out_path=args.out)
    if args.out:
        print(f"report written to {args.out}")
        print(text.splitlines()[4])  # the present/total manifest line
    else:
        print(text)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        Baseline,
        all_rules,
        exit_code,
        load_config,
        render_json,
        render_sarif,
        render_text,
        run_lint,
    )

    if args.list_rules:
        for rule in all_rules(include_dataflow=True):
            gate = "" if rule.family == "basic" else "  (--strict)"
            print(f"{rule.rule_id}  {rule.title}{gate}")
        return 0
    subset = (
        [token.strip() for token in args.rules.split(",") if token.strip()]
        if args.rules
        else None
    )
    baseline_path = args.baseline
    if args.update_baseline and baseline_path is None:
        baseline_path = ".lint-baseline.json"
    try:
        baseline = (
            Baseline.load(baseline_path)
            if baseline_path and not args.update_baseline
            else None
        )
        result = run_lint(
            args.paths,
            rules=subset,
            strict=args.strict,
            config=load_config(),
            baseline=baseline,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        path = Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"baseline with {len(result.findings)} finding(s) written to "
            f"{path}"
        )
        return 0
    renderers = {"text": render_text, "json": render_json, "sarif": render_sarif}
    report = renderers[args.fmt](result)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report + "\n", encoding="utf-8")
        print(render_text(result))
        print(f"{args.fmt} report written to {args.out}")
    else:
        print(report)
    return exit_code(result)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ExperimentService, create_server, have_fastapi
    from repro.serve.app import serve_forever

    backend = args.backend
    if backend == "auto":
        backend = "fastapi" if have_fastapi() else "stdlib"
    if backend == "fastapi" and not have_fastapi():
        print(
            "repro serve: error: --backend fastapi, but fastapi is not "
            "installed (use --backend stdlib)",
            file=sys.stderr,
        )
        return 2
    service = ExperimentService(
        args.store, workers=args.workers, max_pending=args.max_pending
    )
    if backend == "fastapi":  # pragma: no cover - optional dependency
        import uvicorn

        from repro.serve import create_fastapi_app

        app = create_fastapi_app(service)
        print(f"repro serve [fastapi] on http://{args.host}:{args.port}")
        print(f"store: {service.store.root}  ({len(service.store)} records)")
        try:
            uvicorn.run(app, host=args.host, port=args.port, log_level="warning")
        finally:
            service.close()
        return 0
    server = create_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"repro serve [stdlib] on http://{host}:{port}")
    print(f"store: {service.store.root}  ({len(service.store)} records)")
    serve_forever(server)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "schemes": lambda: _cmd_schemes(),
        "run": lambda: _cmd_run(args),
        "solve": lambda: _cmd_solve(args),
        "xo": lambda: _cmd_xo(args),
        "table": lambda: _cmd_table(args),
        "figure": lambda: _cmd_figure(args),
        "grid": lambda: _cmd_grid(args),
        "bench": lambda: _cmd_bench(args),
        "stats": lambda: _cmd_stats(args),
        "trace": lambda: _cmd_trace(args),
        "isoeff": lambda: _cmd_isoeff(args),
        "report": lambda: _cmd_report(args),
        "lint": lambda: _cmd_lint(args),
        "serve": lambda: _cmd_serve(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
