"""Runtime sanitizer: lock-step invariants asserted during execution.

The static rules (R001-R004) catch discipline violations in the source;
this module catches them in the *execution*.  Enable with
``ParallelVM(..., sanitize=True)``, ``SimdMachine(..., sanitize=True)``
and ``Scheduler(..., sanitize=True)``; each then asserts the paper's
invariants on every cycle:

- busy and idle masks are disjoint, and together with the expanding
  mask cover every PE (Section 2's busy / idle / singleton taxonomy);
- every LB transfer round strictly decreases the idle count, by exactly
  the number of performed transfers;
- the GP global pointer stays in ``[0, P)`` whenever it is set;
- at a D_K trigger firing, accumulated idle exceeds ``L*P`` by at most
  one cycle's worth of idle time (Equation 4 fires at first crossing);
- ``where`` context push/pop balance on the VM;
- the ledger identity ``P * T_par == T_calc + T_idle + T_lb +
  T_recovery`` holds.

Fault-injected runs (``Scheduler(faults=...)``) add the fault taxonomy:
dead PEs must hold no work and stay out of the busy/expanding masks, and
the fault conservation ledger must balance — every node quarantined off
a dead PE is either already recovered or still parked, never lost.

The observability layer (:mod:`repro.obs`) adds one more runtime
contract — *observation purity*: attaching event sinks, a metrics
registry, or the profiler must never change what a run computes.
:func:`check_observation_purity` asserts it by comparing two run
outcomes (duck-typed, so any metrics-like pair works).

Violations raise :class:`SanitizerError` (an ``AssertionError``
subclass, so plain ``pytest.raises(AssertionError)`` also catches it).
This module deliberately imports nothing from ``repro.core`` or
``repro.simd`` so both layers can depend on it without cycles.
"""

from __future__ import annotations

__all__ = [
    "SanitizerError",
    "require",
    "SchedulerSanitizer",
    "check_observation_purity",
]


class SanitizerError(AssertionError):
    """A lock-step invariant was violated at runtime.

    ``invariant`` names the violated invariant (e.g.
    ``"gp-pointer-range"``) for programmatic triage.
    """

    def __init__(self, invariant: str, message: str) -> None:
        self.invariant = invariant
        super().__init__(f"[{invariant}] {message}")


def require(condition: bool, invariant: str, message: str) -> None:
    """Raise :class:`SanitizerError` unless ``condition`` holds."""
    if not condition:
        raise SanitizerError(invariant, message)


class SchedulerSanitizer:
    """Per-cycle invariant checks driven by ``Scheduler(sanitize=True)``."""

    def __init__(self, n_pes: int) -> None:
        self.n_pes = int(n_pes)

    def check_masks(self, busy, idle, expanding, dead=None) -> None:
        """Busy/idle disjoint; busy expands; idle|expanding exhaustive.

        With a ``dead`` mask (fault-injected runs), additionally require
        that no dead PE holds work: its frontier must have been
        quarantined, leaving it empty (hence in the idle mask) — a dead
        PE appearing busy or expanding means the fault layer missed it.
        """
        require(
            not bool((busy & idle).any()),
            "masks-disjoint",
            "a PE is both busy (>=2 nodes) and idle (0 nodes)",
        )
        require(
            bool((idle | expanding).all()),
            "masks-exhaustive",
            "a PE is neither idle nor able to expand — it fell out of the "
            "busy/idle/singleton taxonomy",
        )
        require(
            not bool((busy & ~expanding).any()),
            "busy-expands",
            "a busy PE (>=2 nodes) is not expanding",
        )
        if dead is not None:
            require(
                not bool((dead & (busy | expanding)).any()),
                "dead-pe-empty",
                "a fail-stopped PE still holds work — its frontier was "
                "never quarantined",
            )

    def check_fault_conservation(self, faults) -> None:
        """Quarantined work is either recovered or still parked — never
        lost (``faults`` is a ``repro.faults.runtime.FaultRuntime``)."""
        parked = faults.quarantined_entries
        require(
            faults.nodes_quarantined == faults.nodes_recovered + parked,
            "fault-conservation",
            f"fault ledger out of balance: quarantined "
            f"{faults.nodes_quarantined} != recovered "
            f"{faults.nodes_recovered} + parked {parked}",
        )

    def check_pointer(self, matcher) -> None:
        """The GP global pointer, when set, addresses a real PE."""
        pointer = getattr(matcher, "pointer", None)
        if pointer is None:
            return
        require(
            0 <= int(pointer) < self.n_pes,
            "gp-pointer-range",
            f"GP pointer {pointer} outside [0, {self.n_pes})",
        )

    def check_round_progress(
        self, idle_before: int, idle_after: int, performed: int
    ) -> None:
        """Each transfer round retires exactly ``performed`` idle PEs."""
        if performed <= 0:
            return
        require(
            idle_after < idle_before,
            "lb-round-progress",
            f"LB transfer round performed {performed} transfer(s) but the "
            f"idle count did not decrease ({idle_before} -> {idle_after})",
        )
        require(
            idle_before - idle_after == performed,
            "lb-round-progress",
            f"idle count moved {idle_before} -> {idle_after} but "
            f"{performed} transfer(s) were performed",
        )

    def check_dk_fire(self, trigger, state) -> None:
        """At a D_K firing, idle exceeds L*P by at most one cycle's idle."""
        slack = state.n_pes * state.dt
        require(
            trigger.last_r1 <= trigger.last_r2 + slack + 1e-9,
            "dk-idle-bound",
            f"D_K fired with accumulated idle {trigger.last_r1:.6f} more "
            f"than one cycle beyond L*P={trigger.last_r2:.6f}",
        )

    def check_time_identity(self, machine) -> None:
        """The Section 3.1 ledger identity holds exactly."""
        require(
            machine.check_time_identity(),
            "time-identity",
            "P * T_par != T_calc + T_idle + T_lb + T_recovery on the "
            "machine ledger",
        )


#: RunMetrics fields compared by :func:`check_observation_purity`; the
#: ledger is compared line by line so a drift names the exact term.
_PURITY_FIELDS = (
    "scheme",
    "n_pes",
    "total_work",
    "n_expand",
    "n_lb",
    "n_transfers",
    "n_init_lb",
    "n_recovery",
)
_PURITY_LEDGER_FIELDS = ("t_calc", "t_idle", "t_lb", "t_recovery", "elapsed")


def check_observation_purity(bare, observed) -> None:
    """Assert two runs' metrics are bit-identical — the obs contract.

    ``bare`` is the metrics of an instrumentation-off run, ``observed``
    the metrics of the same run with tracing/metrics/profiling attached;
    any mismatch means observation leaked into the simulation.  Both
    arguments are duck-typed ``RunMetrics``-likes (this module must not
    import ``repro.core``); ledger lines are compared with ``==`` —
    exact float equality, not approximate — because a pure observer
    cannot perturb a single ULP.
    """
    for name in _PURITY_FIELDS:
        a, b = getattr(bare, name), getattr(observed, name)
        require(
            a == b,
            "observation-purity",
            f"RunMetrics.{name} differs with instrumentation attached: "
            f"{a!r} (bare) != {b!r} (observed)",
        )
    bare_ledger = getattr(bare, "ledger", None)
    observed_ledger = getattr(observed, "ledger", None)
    for name in _PURITY_LEDGER_FIELDS:
        a = getattr(bare_ledger, name)
        b = getattr(observed_ledger, name)
        require(
            a == b,
            "observation-purity",
            f"ledger.{name} differs with instrumentation attached: "
            f"{a!r} (bare) != {b!r} (observed)",
        )
    bare_trace = getattr(bare, "trace", None)
    observed_trace = getattr(observed, "trace", None)
    if bare_trace is not None and observed_trace is not None:
        require(
            bare_trace == observed_trace,
            "observation-purity",
            "recorded Trace series differ with instrumentation attached",
        )
