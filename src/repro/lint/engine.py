"""File discovery, suppression handling, and the lint driver.

Suppression syntax (mirrors the usual ``# noqa`` conventions):

- ``# repro-lint: disable=R001`` on a line suppresses those rules *on
  that line* (comma-separate multiple ids; ``all`` suppresses every
  rule).
- ``# repro-lint: disable-file=R004 -- justification`` anywhere in a
  file suppresses those rules for the whole file.  Put the reason after
  ``--`` so reviewers can audit it.

The driver runs in two phases.  Phase one parses every file; when a
project-aware rule (R100-R103) is active it also builds the
cross-module :class:`~repro.lint.graph.ProjectIndex` and the
:mod:`~repro.lint.dataflow` provenance facts.  Phase two runs the rules
per module with that shared context, applies suppressions, per-path
config, severity overrides, and finally the baseline ratchet.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.rules import LintContext, Rule, all_rules

__all__ = [
    "LintResult",
    "run_lint",
    "iter_python_files",
    "logical_path",
    "parse_suppressions",
]

_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
}

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)=(?P<rules>[A-Za-z0-9_,\s]+)"
)
_RULE_TOKEN_RE = re.compile(r"^(ALL|R\d{3})$")


@dataclass
class LintResult:
    """Outcome of one lint run: surviving findings plus counters."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding survived suppression.

        Warning findings (severity downgraded via config) are reported
        but never fail the run.
        """
        return not any(f.severity is Severity.ERROR for f in self.findings)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield the ``.py`` files named by ``paths`` (dirs walk recursively)."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def logical_path(path: Path) -> str:
    """The package-relative posix path used for rule scoping.

    The suffix starting at the innermost ``repro`` directory — so
    ``src/repro/core/scheduler.py`` and a test fixture at
    ``tests/lint/fixtures/repro/core/bad.py`` both scope as
    ``repro/core/...``.  Files outside any ``repro`` directory scope as
    their bare filename.
    """
    parts = path.resolve().parts
    indices = [i for i, part in enumerate(parts[:-1]) if part == "repro"]
    if indices:
        return "/".join(parts[indices[-1]:])
    return parts[-1]


def parse_suppressions(source: str) -> tuple[set[str], dict[int, set[str]]]:
    """Extract (file-level, per-line) suppression sets from a module."""
    file_level: set[str] = set()
    per_line: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {
            token.strip().upper()
            for token in match.group("rules").split(",")
        }
        rules = {t for t in rules if _RULE_TOKEN_RE.match(t)}
        if not rules:
            continue
        if match.group("kind") == "disable-file":
            file_level |= rules
        else:
            per_line.setdefault(lineno, set()).update(rules)
    return file_level, per_line


def _annotate(finding: Finding, logical: str, lines: list[str]) -> Finding:
    """Fill the logical path and source snippet used by baseline/SARIF."""
    snippet = ""
    if 1 <= finding.line <= len(lines):
        snippet = lines[finding.line - 1].strip()
    return dataclasses.replace(finding, logical=logical, snippet=snippet)


def run_lint(
    paths: Sequence[str | Path],
    rules: Iterable[str] | None = None,
    *,
    strict: bool = False,
    config: LintConfig | None = None,
    baseline=None,
) -> LintResult:
    """Lint the given files/directories and return surviving findings.

    ``rules`` optionally restricts the run to a subset of rule ids.
    ``strict=True`` adds the dataflow family (R100-R103) to the default
    set and builds the project index/call graph they need.  ``config``
    carries ``[tool.repro.lint]`` settings (excludes, kernel modules,
    severity overrides, per-path disables); ``baseline`` is a
    :class:`~repro.lint.baseline.Baseline` whose fingerprints are
    dropped from the result (counted in ``result.baselined``).
    Unparseable files produce an ``R000`` parse-error finding instead of
    aborting the run.
    """
    cfg = config if config is not None else LintConfig()
    rule_objs: list[Rule] = all_rules(rules, include_dataflow=strict)
    result = LintResult()

    # Phase 1: parse everything (project-aware rules need the full set).
    entries: list[tuple[Path, str, str, ast.Module]] = []
    for path in iter_python_files(paths):
        if cfg.excluded(path):
            continue
        result.files_checked += 1
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            logical = logical_path(path)
            result.findings.append(
                _annotate(
                    Finding(
                        rule="R000",
                        path=str(path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}",
                        severity=Severity.ERROR,
                    ),
                    logical,
                    source.splitlines(),
                )
            )
            continue
        entries.append((path, logical_path(path), source, tree))

    project = None
    facts = None
    if any(rule.requires_project for rule in rule_objs):
        from repro.lint.dataflow import compute_project_facts
        from repro.lint.graph import build_project

        project = build_project(
            entries, kernel_modules=cfg.all_kernel_modules()
        )
        facts = compute_project_facts(project)

    # Phase 2: per-module rule runs with the shared project context.
    for path, logical, source, tree in entries:
        ctx = LintContext(
            path=path,
            logical=logical,
            source=source,
            tree=tree,
            project=project,
            dataflow=facts,
        )
        file_level, per_line = parse_suppressions(source)
        disabled = cfg.disabled_for(logical)
        lines = source.splitlines()
        for rule in rule_objs:
            if rule.rule_id in disabled:
                continue
            for finding in rule.check(ctx):
                active = file_level | per_line.get(finding.line, set())
                if "ALL" in active or finding.rule in active:
                    result.suppressed += 1
                    continue
                finding = _annotate(finding, logical, lines)
                override = cfg.severity.get(finding.rule)
                if override is not None:
                    finding = dataclasses.replace(
                        finding, severity=Severity(override)
                    )
                result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    if baseline is not None:
        from repro.lint.baseline import apply_baseline

        result.findings, result.baselined = apply_baseline(
            result.findings, baseline
        )
    return result
