"""Provenance dataflow for the R100-R103 rule family.

A deliberately small abstract interpretation: every expression gets a
*provenance set* over four tags, computed per function in statement
order (flow-insensitive joins — rebinding unions rather than kills, the
conservative polarity for a linter):

- ``RNG_OK`` — value traces to :func:`repro.util.rng.spawn_child` /
  :func:`~repro.util.rng.as_generator`, the sanctioned RNG roots;
- ``RNG_BAD`` — value traces to ``numpy.random.default_rng`` /
  ``numpy.random.Generator`` / stdlib ``random``, i.e. a stream outside
  the seed tree;
- ``MASK`` — a boolean PE-selection expression (array comparison,
  ``&``/``|``/``~`` algebra over masks);
- ``MASK_INDEX`` — PE indices *derived from* a mask
  (``np.flatnonzero(mask)``, ``mask.nonzero()``, ``np.where(mask)``,
  or fancy-indexed views of such indices like ``pes[live]``).

Interprocedural propagation runs the intraprocedural pass to fixpoint
over the project call graph (bounded iterations — the lattice is four
monotone bits per variable, so convergence is fast):

- **return provenance**: a project-local call contributes its callee's
  return tags, so ``gen = make_rng()`` is RNG_BAD when ``make_rng``
  returns ``default_rng(...)`` — even across modules;
- **parameter provenance**: a parameter inherits the union of the
  provenance its resolved call sites pass, so ``donate(self, donors)``
  sees MASK_INDEX when every caller passes ``np.flatnonzero(alive)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.graph import FunctionInfo, ProjectIndex
from repro.lint.rules import resolve_call

__all__ = [
    "RNG_OK",
    "RNG_BAD",
    "MASK",
    "MASK_INDEX",
    "FunctionFacts",
    "analyze_function",
    "compute_project_facts",
    "expression_provenance",
]

RNG_OK = "rng-ok"
RNG_BAD = "rng-bad"
MASK = "mask"
MASK_INDEX = "mask-index"

#: Sanctioned RNG roots (R100's "traces back to spawn_child" set).
_RNG_OK_CALLS = frozenset(
    {
        "repro.util.rng.spawn_child",
        "repro.util.rng.as_generator",
    }
)
#: Unsanctioned stream constructors.
_RNG_BAD_CALLS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "random.Random",
        "random.SystemRandom",
    }
)
#: numpy calls that turn a mask into PE indices.
_MASK_INDEX_CALLS = frozenset(
    {
        "numpy.flatnonzero",
        "numpy.nonzero",
        "numpy.where",
        "numpy.argwhere",
    }
)
#: method names with the same effect on a mask receiver.
_MASK_INDEX_METHODS = frozenset({"nonzero"})
#: numpy reshaping/ordering calls whose result keeps its inputs' tags —
#: ``np.repeat(pes, lens)`` is still a mask-derived index set.
_PASSTHROUGH_CALLS = frozenset(
    {
        "numpy.repeat",
        "numpy.tile",
        "numpy.concatenate",
        "numpy.unique",
        "numpy.sort",
        "numpy.flip",
        "numpy.asarray",
        "numpy.array",
        "numpy.ascontiguousarray",
        "numpy.copy",
        "numpy.minimum",
        "numpy.maximum",
    }
)


@dataclass
class FunctionFacts:
    """Interprocedural summary of one function."""

    returns: set[str] = field(default_factory=set)
    #: parameter name -> union of provenance passed by resolved call sites.
    params: dict[str, set[str]] = field(default_factory=dict)
    #: variable name -> provenance at end of the (flow-insensitive) pass.
    env: dict[str, set[str]] = field(default_factory=dict)


def _assign_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_assign_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _assign_names(target.value)
    return []


def expression_provenance(
    expr: ast.expr,
    env: dict[str, set[str]],
    bindings: dict[str, str],
    *,
    fn: FunctionInfo | None = None,
    project: ProjectIndex | None = None,
    facts: dict[str, FunctionFacts] | None = None,
) -> set[str]:
    """Provenance tags of one expression under the variable environment."""
    if isinstance(expr, ast.Name):
        return set(env.get(expr.id, ()))
    if isinstance(expr, ast.Call):
        dotted = resolve_call(expr.func, bindings)
        if dotted is not None:
            if dotted in _RNG_OK_CALLS:
                return {RNG_OK}
            if dotted in _RNG_BAD_CALLS or dotted.startswith(
                ("numpy.random.", "random.")
            ):
                return {RNG_BAD}
            if dotted in _MASK_INDEX_CALLS:
                # Three-argument np.where is an elementwise select, not a
                # mask-to-indices conversion — pass tags through instead.
                if dotted == "numpy.where" and len(expr.args) == 3:
                    out: set[str] = set()
                    for arg in expr.args:
                        out |= expression_provenance(
                            arg, env, bindings,
                            fn=fn, project=project, facts=facts,
                        )
                    return out - {MASK}
                return {MASK_INDEX}
            if dotted in _PASSTHROUGH_CALLS:
                out = set()
                for arg in expr.args:
                    out |= expression_provenance(
                        arg, env, bindings, fn=fn, project=project, facts=facts
                    )
                return out
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _MASK_INDEX_METHODS
        ):
            return {MASK_INDEX}
        # Project-local call: use the callee's return summary.
        if fn is not None and project is not None and facts is not None:
            callee = project.resolve_callee(fn, expr)
            if callee is not None and callee.qualname in facts:
                return set(facts[callee.qualname].returns)
        return set()
    if isinstance(expr, ast.Compare):
        return {MASK}
    if isinstance(expr, ast.UnaryOp):
        inner = expression_provenance(
            expr.operand, env, bindings, fn=fn, project=project, facts=facts
        )
        if isinstance(expr.op, ast.Invert):
            return inner | {MASK} if MASK in inner or not inner else inner
        return inner
    if isinstance(expr, ast.BinOp):
        left = expression_provenance(
            expr.left, env, bindings, fn=fn, project=project, facts=facts
        )
        right = expression_provenance(
            expr.right, env, bindings, fn=fn, project=project, facts=facts
        )
        merged = left | right
        if isinstance(expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            # mask algebra: a & b keeps maskness if either side is a mask.
            return merged
        # arithmetic on mask indices (e.g. pes + offset) keeps index-ness.
        return merged
    if isinstance(expr, ast.BoolOp):
        out: set[str] = set()
        for value in expr.values:
            out |= expression_provenance(
                value, env, bindings, fn=fn, project=project, facts=facts
            )
        return out
    if isinstance(expr, ast.Subscript):
        # pes[live], idx[:k] — a view of mask-derived indices stays
        # derived; selecting *by* a mask (donors[valid]) yields a
        # mask-compressed set even when the base carries no tags.
        base = expression_provenance(
            expr.value, env, bindings, fn=fn, project=project, facts=facts
        )
        index = expression_provenance(
            expr.slice, env, bindings, fn=fn, project=project, facts=facts
        )
        if {MASK, MASK_INDEX} & index:
            return (base | {MASK_INDEX}) - {MASK}
        return base
    if isinstance(expr, ast.Attribute):
        # conservative: attribute loads carry no provenance of their own,
        # but self-attribute masks named alive/active are runtime state
        # the fault runtime maintains — treat them as masks.
        if expr.attr in ("alive", "active", "alive_mask", "active_mask"):
            return {MASK}
        return set()
    if isinstance(expr, (ast.Tuple, ast.List)):
        out = set()
        for elt in expr.elts:
            out |= expression_provenance(
                elt, env, bindings, fn=fn, project=project, facts=facts
            )
        return out
    if isinstance(expr, ast.IfExp):
        return expression_provenance(
            expr.body, env, bindings, fn=fn, project=project, facts=facts
        ) | expression_provenance(
            expr.orelse, env, bindings, fn=fn, project=project, facts=facts
        )
    if isinstance(expr, ast.NamedExpr):
        return expression_provenance(
            expr.value, env, bindings, fn=fn, project=project, facts=facts
        )
    return set()


def _walk_own(root: ast.AST):
    """``ast.walk`` that does not descend into nested def/class bodies.

    Nested functions are indexed and analyzed as functions in their own
    right, so mixing their statements into the parent's environment would
    double-count provenance.  Yields in source order (preorder) — the
    flow-insensitive pass binds in statement order, so a reversed walk
    would miss every definition-before-use chain.
    """
    stack = list(ast.iter_child_nodes(root))[::-1]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(list(ast.iter_child_nodes(node))[::-1])


def analyze_function(
    fn: FunctionInfo,
    bindings: dict[str, str],
    *,
    project: ProjectIndex | None = None,
    facts: dict[str, FunctionFacts] | None = None,
    param_seed: dict[str, set[str]] | None = None,
) -> FunctionFacts:
    """One intraprocedural pass: variable env + return provenance.

    ``param_seed`` injects interprocedural parameter provenance from the
    previous fixpoint iteration.
    """
    out = FunctionFacts()
    env: dict[str, set[str]] = {}
    if param_seed:
        for name, tags in param_seed.items():
            env[name] = set(tags)

    def prov(expr: ast.expr) -> set[str]:
        return expression_provenance(
            expr, env, bindings, fn=fn, project=project, facts=facts
        )

    def bind(target: ast.expr, tags: set[str]) -> None:
        for name in _assign_names(target):
            env.setdefault(name, set()).update(tags)

    for node in _walk_own(fn.node):
        if isinstance(node, ast.Assign):
            tags = prov(node.value)
            if tags:
                for target in node.targets:
                    bind(target, tags)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            tags = prov(node.value)
            if tags:
                bind(node.target, tags)
        elif isinstance(node, ast.AugAssign):
            tags = prov(node.value)
            if tags:
                bind(node.target, tags)
        elif isinstance(node, ast.For):
            tags = prov(node.iter)
            if tags:
                bind(node.target, tags)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            tags = prov(node.context_expr)
            if tags:
                bind(node.optional_vars, tags)
        elif isinstance(node, ast.Return) and node.value is not None:
            out.returns |= prov(node.value)
    out.env = env
    return out


def compute_project_facts(
    project: ProjectIndex, *, max_iterations: int = 4
) -> dict[str, FunctionFacts]:
    """Fixpoint of the per-function pass over the whole call graph."""
    facts: dict[str, FunctionFacts] = {
        qn: FunctionFacts() for qn in project.functions
    }
    param_prov: dict[str, dict[str, set[str]]] = {
        qn: {} for qn in project.functions
    }
    for _ in range(max_iterations):
        changed = False
        for qn, fn in project.functions.items():
            module = project.modules.get(fn.module)
            bindings = module.bindings if module is not None else {}
            new = analyze_function(
                fn,
                bindings,
                project=project,
                facts=facts,
                param_seed=param_prov[qn],
            )
            if new.returns != facts[qn].returns or new.env != facts[qn].env:
                changed = True
            new.params = {k: set(v) for k, v in param_prov[qn].items()}
            facts[qn] = new
        # Propagate argument provenance into callee parameters.
        for qn, fn in project.functions.items():
            module = project.modules.get(fn.module)
            bindings = module.bindings if module is not None else {}
            env = facts[qn].env
            for node in _walk_own(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = project.resolve_callee(fn, node)
                if callee is None:
                    continue
                params = callee.params
                # skip the bound receiver for method calls
                offset = 1 if params and params[0] in ("self", "cls") else 0
                positional = params[offset:]
                for i, arg in enumerate(node.args):
                    if i >= len(positional):
                        break
                    tags = expression_provenance(
                        arg, env, bindings, fn=fn, project=project, facts=facts
                    )
                    if not tags:
                        continue
                    slot = param_prov[callee.qualname].setdefault(
                        positional[i], set()
                    )
                    if not tags <= slot:
                        slot |= tags
                        changed = True
                for kw in node.keywords:
                    if kw.arg is None or kw.arg not in params:
                        continue
                    tags = expression_provenance(
                        kw.value, env, bindings, fn=fn, project=project,
                        facts=facts,
                    )
                    if not tags:
                        continue
                    slot = param_prov[callee.qualname].setdefault(kw.arg, set())
                    if not tags <= slot:
                        slot |= tags
                        changed = True
        if not changed:
            break
    for qn in facts:
        facts[qn].params = {k: set(v) for k, v in param_prov[qn].items()}
    return facts
