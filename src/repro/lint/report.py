"""Render lint results as text or JSON and map them to exit codes."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

__all__ = ["render_text", "render_json", "exit_code"]


def render_text(result: LintResult) -> str:
    """One ``path:line:col: RULE message`` line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    baselined = (
        f", {result.baselined} baselined" if result.baselined else ""
    )
    lines.append(
        f"{len(result.findings)} {noun} in {result.files_checked} file(s) "
        f"checked ({result.suppressed} suppressed{baselined})"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report for CI consumers."""
    payload = {
        "findings": [finding.to_dict() for finding in result.findings],
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def exit_code(result: LintResult) -> int:
    """``0`` when clean, ``1`` when any error finding survived suppression."""
    return 0 if result.ok else 1
