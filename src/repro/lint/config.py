"""Lint configuration: the kernel-module registry and ``pyproject.toml``.

``[tool.repro.lint]`` supports:

- ``exclude`` — list of path substrings; matching files are skipped
  entirely (used for the seeded lint fixtures under ``tests/lint``);
- ``kernel_modules`` — extra logical paths (or ``dir/`` prefixes) to
  treat as kernel code for R101-R103, merged with
  :data:`KERNEL_MODULES` and in-file ``# repro: kernel`` pragmas;
- ``severity`` — per-rule overrides, e.g. ``R102 = "warning"``
  (warnings are reported but never fail the run);
- ``per_path`` — rules disabled under a path prefix, e.g.
  ``"repro/baselines/" = ["R102", "R103"]``.

Parsing uses :mod:`tomllib` when available (Python >= 3.11) and falls
back to a minimal TOML-subset reader on 3.10 — enough for the flat
strings/lists/tables this section uses, so the linter needs no
third-party dependency anywhere.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["KERNEL_MODULES", "LintConfig", "load_config"]

#: Logical paths whose code is *kernel* by construction: full-width numpy
#: kernels whose discipline the arenas' bit-identity gates depend on.
#: ``# repro: kernel`` pragmas extend this set file-locally (and mark
#: individual functions inside mixed modules like search/parallel.py).
KERNEL_MODULES: frozenset[str] = frozenset(
    {
        "repro/simd/scan.py",
        "repro/simd/reduce.py",
        "repro/simd/router.py",
        "repro/workmodel/arena.py",
        "repro/workmodel/mega.py",
        "repro/search/arena.py",
        # The extracted kernel tier: every dispatchable implementation
        # module is kernel-scoped wholesale.  The support files around
        # them (dispatch.py registry, workspace.py storage, jit.py's
        # numba gate) are deliberately NOT — they hold no full-width
        # array code for the dataflow rules to check.
        "repro/kernels/scans.py",
        "repro/kernels/stack.py",
        "repro/kernels/search.py",
        "repro/kernels/mega.py",
        "repro/kernels/matching.py",
    }
)


@dataclass
class LintConfig:
    """Parsed ``[tool.repro.lint]`` settings (defaults when absent)."""

    exclude: list[str] = field(default_factory=list)
    kernel_modules: set[str] = field(default_factory=set)
    severity: dict[str, str] = field(default_factory=dict)
    per_path: dict[str, list[str]] = field(default_factory=dict)

    def all_kernel_modules(self) -> frozenset[str]:
        return KERNEL_MODULES | frozenset(self.kernel_modules)

    def excluded(self, path: Path | str) -> bool:
        posix = Path(path).as_posix()
        return any(pat in posix for pat in self.exclude)

    def disabled_for(self, logical: str) -> set[str]:
        """Rules disabled for a logical path by ``per_path`` prefixes."""
        out: set[str] = set()
        for prefix, rules in self.per_path.items():
            if logical.startswith(prefix):
                out.update(r.upper() for r in rules)
        return out


def _parse_toml(text: str) -> dict:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10 fallback
        return _parse_toml_subset(text)
    return tomllib.loads(text)


_SECTION_RE = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_KV_RE = re.compile(r"^\s*(?P<key>[A-Za-z0-9_.\"'-]+)\s*=\s*(?P<value>.+?)\s*$")


def _parse_scalar(raw: str) -> object:
    raw = raw.strip()
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(tok) for tok in _split_list(inner)]
    if (raw.startswith('"') and raw.endswith('"')) or (
        raw.startswith("'") and raw.endswith("'")
    ):
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def _split_list(inner: str) -> list[str]:
    toks, depth, quote, cur = [], 0, "", []
    for ch in inner:
        if quote:
            cur.append(ch)
            if ch == quote:
                quote = ""
            continue
        if ch in "\"'":
            quote = ch
            cur.append(ch)
        elif ch == "[":
            depth += 1
            cur.append(ch)
        elif ch == "]":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            toks.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        toks.append("".join(cur))
    return [t.strip() for t in toks if t.strip()]


def _parse_toml_subset(text: str) -> dict:  # pragma: no cover - 3.10 only
    """Flat-section TOML subset: enough for ``[tool.repro.lint]``."""
    root: dict = {}
    section = root
    buffer = ""
    for line in text.splitlines():
        stripped = line.split("#", 1)[0] if '"' not in line else line
        if not stripped.strip():
            continue
        if buffer:
            buffer += " " + stripped.strip()
            if buffer.count("[") > buffer.count("]"):
                continue
            match = _KV_RE.match(buffer)
            buffer = ""
            if match:
                key = match.group("key").strip("\"'")
                section[key] = _parse_scalar(match.group("value"))
            continue
        sec = _SECTION_RE.match(stripped)
        if sec:
            section = root
            for part in sec.group("name").split("."):
                section = section.setdefault(part.strip().strip("\"'"), {})
            continue
        match = _KV_RE.match(stripped)
        if match:
            value = match.group("value")
            if value.count("[") > value.count("]"):
                buffer = stripped.strip()
                continue
            key = match.group("key").strip("\"'")
            section[key] = _parse_scalar(value)
    return root


def load_config(start: Path | str | None = None) -> LintConfig:
    """Load ``[tool.repro.lint]`` from the nearest ``pyproject.toml``.

    Searches ``start`` (default: cwd) and its parents; returns defaults
    when no file or section exists, so the linter runs config-free.
    """
    base = Path(start) if start is not None else Path.cwd()
    if base.is_file() and base.name != "pyproject.toml":
        base = base.parent
    candidates = (
        [base] if base.name == "pyproject.toml"
        else [p / "pyproject.toml" for p in [base, *base.parents]]
    )
    for candidate in candidates:
        if not candidate.is_file():
            continue
        try:
            data = _parse_toml(candidate.read_text(encoding="utf-8"))
        except Exception:
            return LintConfig()
        section = data.get("tool", {}).get("repro", {}).get("lint", {})
        if not isinstance(section, dict):
            return LintConfig()
        return LintConfig(
            exclude=[str(x) for x in section.get("exclude", [])],
            kernel_modules={str(x) for x in section.get("kernel_modules", [])},
            severity={
                str(k).upper(): str(v)
                for k, v in section.get("severity", {}).items()
            },
            per_path={
                str(k): [str(r) for r in v]
                for k, v in section.get("per_path", {}).items()
            },
        )
    return LintConfig()
