"""Project-wide module index, symbol table and call graph for lint v2.

The dataflow rule family (R100-R103) needs to see *across* files: an RNG
created by a helper in one module and consumed by a kernel in another is
exactly the hazard R100 exists to catch.  :func:`build_project` parses
every linted module once into a :class:`ProjectIndex`:

- a **module index** mapping dotted module names to parsed ASTs, import
  bindings and kernel markings;
- a **symbol table** of every function/method, keyed by qualified name
  (``repro.search.arena.SearchArena.pop_tops``);
- a **call graph** whose edges are statically resolvable calls (import-
  derived names, module-level locals, ``self.``/``cls.`` methods of the
  enclosing class, and ``alias.method(...)`` where the alias' class is
  known — from a constructor call, an instance-attribute binding, or a
  parameter annotation naming a project class).

Kernel marking — which code the discipline rules police — comes from
three sources, in increasing locality:

1. the :data:`~repro.lint.config.KERNEL_MODULES` registry (plus any
   ``kernel_modules`` entries in ``[tool.repro.lint]``);
2. a module-level ``# repro: kernel`` pragma anywhere in the file;
3. a per-function/per-class pragma: ``# repro: kernel`` trailing the
   ``def``/``class`` line or on the line directly above it (above the
   first decorator for decorated definitions).

Dynamic dispatch, ``getattr`` and star-imports are out of scope: the
call graph is an under-approximation, which is the right polarity for a
linter — unresolvable calls simply contribute no provenance.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.rules import collect_imports, resolve_call

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_project",
    "module_name_for",
    "parse_kernel_pragmas",
]

_PRAGMA_RE = re.compile(r"^#\s*repro:\s*kernel\b")
_DEF_RE = re.compile(r"^\s*(async\s+def|def|class)\s")


def _pragma_comment_lines(source: str) -> list[int]:
    """Line numbers of real ``# repro: kernel`` comment tokens.

    Tokenizing (rather than grepping lines) keeps pragma *mentions*
    inside docstrings — like the ones in this package — from marking
    their module as kernel code.
    """
    out: list[int] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT and _PRAGMA_RE.match(tok.string):
                out.append(tok.start[0])
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass
    return out


@dataclass
class FunctionInfo:
    """One function or method in the symbol table."""

    qualname: str
    module: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str] = field(default_factory=list)
    kernel: bool = False

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def docstring(self) -> str:
        return ast.get_docstring(self.node) or ""


@dataclass
class ModuleInfo:
    """One parsed module: bindings, functions and kernel marking."""

    name: str
    logical: str
    path: Path
    source: str
    tree: ast.Module
    bindings: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: set[str] = field(default_factory=set)
    kernel: bool = False


def module_name_for(logical: str) -> str:
    """Dotted module name for a logical path.

    ``repro/core/scheduler.py`` -> ``repro.core.scheduler``;
    ``repro/core/__init__.py`` -> ``repro.core``; files outside the
    package keep their bare stem so test modules stay addressable.
    """
    stem = logical[: -len(".py")] if logical.endswith(".py") else logical
    parts = [p for p in stem.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def parse_kernel_pragmas(
    source: str, tree: ast.Module
) -> tuple[bool, set[int]]:
    """Locate ``# repro: kernel`` pragmas in a module.

    Returns ``(module_level, def_lines)`` where ``def_lines`` holds the
    ``lineno`` of every ``def``/``class`` the pragma attaches to (the
    pragma trails the definition line or sits on the line directly above
    its first decorator).  Pragmas attached to no definition mark the
    whole module.
    """
    lines = source.splitlines()
    pragma_lines = _pragma_comment_lines(source)
    if not pragma_lines:
        return False, set()
    # Map each definition to the line range a leading pragma may occupy:
    # the line above the first decorator (or the def itself).
    def_start: dict[int, int] = {}  # def lineno -> earliest attach line
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            first = min(
                [node.lineno] + [d.lineno for d in node.decorator_list]
            )
            def_start[node.lineno] = first
    module_level = False
    attached: set[int] = set()
    for pl in pragma_lines:
        target = None
        for def_line, first in def_start.items():
            on_def_line = pl == def_line and _DEF_RE.match(lines[pl - 1] or "")
            if on_def_line or pl == first - 1:
                target = def_line
                break
        if target is None:
            module_level = True
        else:
            attached.add(target)
    return module_level, attached


def _index_functions(info: ModuleInfo, kernel_defs: set[int]) -> None:
    """Fill ``info.functions`` with qualified names and kernel marks."""

    def visit(node: ast.AST, prefix: str, cls: str | None, kernel: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                info.classes.add(f"{prefix}.{child.name}")
                marked = kernel or child.lineno in kernel_defs
                visit(child, f"{prefix}.{child.name}", child.name, marked)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}"
                args = child.args
                params = [
                    a.arg
                    for a in (
                        args.posonlyargs + args.args + args.kwonlyargs
                    )
                ]
                info.functions[qual] = FunctionInfo(
                    qualname=qual,
                    module=info.name,
                    cls=cls,
                    node=child,
                    params=params,
                    kernel=info.kernel or kernel or child.lineno in kernel_defs,
                )
                visit(child, qual, cls, kernel or child.lineno in kernel_defs)

    visit(info.tree, info.name, None, False)


@dataclass
class ProjectIndex:
    """The cross-module view handed to dataflow rules."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: caller qualname -> set of statically resolved callee qualnames.
    call_graph: dict[str, set[str]] = field(default_factory=dict)
    #: every class qualname seen while indexing.
    classes: set[str] = field(default_factory=set)
    #: ``module.Cls.attr`` -> class qualname, from ``self.attr = Cls(...)``.
    attr_types: dict[str, str] = field(default_factory=dict)
    _local_types_cache: dict[str, dict[str, str]] = field(
        default_factory=dict, repr=False
    )

    def module_for(self, logical: str) -> ModuleInfo | None:
        return self.modules.get(module_name_for(logical))

    def _class_of_call(self, call: ast.Call, module: ModuleInfo) -> str | None:
        """Class qualname a constructor call instantiates, if resolvable."""
        dotted = resolve_call(call.func, module.bindings)
        if dotted is not None and dotted in self.classes:
            return dotted
        if (
            isinstance(call.func, ast.Name)
            and f"{module.name}.{call.func.id}" in self.classes
        ):
            return f"{module.name}.{call.func.id}"
        return None

    def _class_of_annotation(
        self, ann: ast.expr, module: ModuleInfo
    ) -> str | None:
        """Class qualname a type annotation names, if resolvable.

        Handles plain names and dotted paths (through the module's
        import bindings), ``X | None`` unions, and string annotations.
        ``Optional[...]``/generic forms stay unresolved — the call graph
        is an under-approximation.
        """
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            left = self._class_of_annotation(ann.left, module)
            if left is not None:
                return left
            return self._class_of_annotation(ann.right, module)
        if isinstance(ann, (ast.Name, ast.Attribute)):
            dotted = resolve_call(ann, module.bindings)
            if dotted is not None and dotted in self.classes:
                return dotted
            if (
                isinstance(ann, ast.Name)
                and f"{module.name}.{ann.id}" in self.classes
            ):
                return f"{module.name}.{ann.id}"
        return None

    def _local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Local-variable class types from annotations and simple aliases.

        Parameters annotated with a project class seed the map
        (``def kernel(arena: StackArena, ...)``); the assignment walk
        then recognizes ``arena = self._arena`` and ``wl._arena`` reads
        through :attr:`attr_types` (the receiver being ``self``/``cls``
        or any already-typed local) and ``arena = SearchArena(...)`` —
        enough to resolve the ``alias.method(...)`` call style the
        kernels use.
        """
        cached = self._local_types_cache.get(fn.qualname)
        if cached is not None:
            return cached
        module = self.modules.get(fn.module)
        types: dict[str, str] = {}
        if module is not None:
            args = fn.node.args
            for a in args.posonlyargs + args.args + args.kwonlyargs:
                if a.annotation is None:
                    continue
                annotated = self._class_of_annotation(a.annotation, module)
                if annotated is not None:
                    types[a.arg] = annotated
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                if len(node.targets) != 1 or not isinstance(
                    node.targets[0], ast.Name
                ):
                    continue
                value = node.value
                resolved: str | None = None
                if isinstance(value, ast.Attribute) and isinstance(
                    value.value, ast.Name
                ):
                    owner: str | None = None
                    if value.value.id in ("self", "cls") and fn.cls is not None:
                        owner = f"{fn.module}.{fn.cls}"
                    else:
                        owner = types.get(value.value.id)
                    if owner is not None:
                        resolved = self.attr_types.get(f"{owner}.{value.attr}")
                elif isinstance(value, ast.Call):
                    resolved = self._class_of_call(value, module)
                if resolved is not None:
                    types[node.targets[0].id] = resolved
        self._local_types_cache[fn.qualname] = types
        return types

    def resolve_callee(
        self, fn: FunctionInfo, call: ast.Call
    ) -> FunctionInfo | None:
        """Resolve one call inside ``fn`` to a project function, if possible.

        Handles import-derived dotted names, module-level locals, and
        ``self.``/``cls.`` method calls on the enclosing class.
        """
        module = self.modules.get(fn.module)
        if module is None:
            return None
        func = call.func
        # self.method(...) / cls.method(...) inside a class body.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and fn.cls is not None
        ):
            return self.functions.get(f"{fn.module}.{fn.cls}.{func.attr}")
        # self.attr.method(...) where self.attr was bound to a project class.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("self", "cls")
            and fn.cls is not None
        ):
            bound = self.attr_types.get(
                f"{fn.module}.{fn.cls}.{func.value.attr}"
            )
            if bound is not None:
                return self.functions.get(f"{bound}.{func.attr}")
        # alias.method(...) where the alias' class was inferred locally.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            bound = self._local_types(fn).get(func.value.id)
            if bound is not None:
                return self.functions.get(f"{bound}.{func.attr}")
        dotted = resolve_call(func, module.bindings)
        if dotted is not None and dotted in self.functions:
            return self.functions[dotted]
        # Bare local name -> module-level function of the same module.
        if isinstance(func, ast.Name) and func.id not in module.bindings:
            return self.functions.get(f"{fn.module}.{func.id}")
        return None

    def callers_of(self, qualname: str) -> list[str]:
        return sorted(
            caller
            for caller, callees in self.call_graph.items()
            if qualname in callees
        )


def build_project(
    entries: list[tuple[Path, str, str, ast.Module]],
    *,
    kernel_modules: frozenset[str] | set[str] = frozenset(),
) -> ProjectIndex:
    """Index ``(path, logical, source, tree)`` entries into a project.

    ``kernel_modules`` holds logical paths (or path prefixes ending in
    ``/``) marked kernel by registry/config, merged with in-file pragmas.
    """
    project = ProjectIndex()
    for path, logical, source, tree in entries:
        name = module_name_for(logical)
        module_pragma, kernel_defs = parse_kernel_pragmas(source, tree)
        registry_kernel = logical in kernel_modules or any(
            k.endswith("/") and logical.startswith(k) for k in kernel_modules
        )
        info = ModuleInfo(
            name=name,
            logical=logical,
            path=path,
            source=source,
            tree=tree,
            bindings=collect_imports(tree),
            kernel=module_pragma or registry_kernel,
        )
        _index_functions(info, kernel_defs)
        # Last writer wins on (unlikely) duplicate module names; fixture
        # trees use distinct names to keep real modules authoritative.
        project.modules[name] = info
        project.functions.update(info.functions)
        project.classes |= info.classes
    # Bind self-attribute types (``self._arena = SearchArena(...)``) so
    # resolve_callee can follow method calls through instance attributes.
    for fn in project.functions.values():
        if fn.cls is None:
            continue
        module = project.modules.get(fn.module)
        if module is None:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            bound = project._class_of_call(node.value, module)
            if bound is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    project.attr_types[
                        f"{fn.module}.{fn.cls}.{target.attr}"
                    ] = bound
    for fn in project.functions.values():
        edges: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callee = project.resolve_callee(fn, node)
                if callee is not None and callee.qualname != fn.qualname:
                    edges.add(callee.qualname)
        project.call_graph[fn.qualname] = edges
    return project
