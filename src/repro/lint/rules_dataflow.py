"""The dataflow rule family (R100-R103) — lint v2's kernel discipline.

These rules consume the :mod:`repro.lint.graph` project index and the
:mod:`repro.lint.dataflow` provenance facts, so they see *across* files
(helper-returned RNG streams, mask indices passed through parameters).
They run under ``repro lint --strict`` and police the invariants every
bit-identity gate in this repo rests on:

- **R100** — RNG provenance: any generator reachable in scheduler /
  kernel / fault code must trace back to ``rng.spawn_child`` /
  ``as_generator``; a stray ``default_rng()`` (even laundered through a
  local helper) forks the seed tree and silently breaks oracle identity.
- **R101** — nondeterminism sources in kernel-marked code: wall-clock,
  ``os.environ``, set/dict-order iteration, ``id()``-keyed maps.
- **R102** — kernel purity: no Python-level loops over the PE axis, no
  object-dtype arrays, no float dtype drift in the int64 arenas, no
  file/console I/O, and no per-state Python-level memoization (the
  pattern that made ``list-memo`` *slower* than the plain list backend
  in BENCH_search.json).
- **R103** — mask provenance: writes to PE-indexed arena storage must be
  dominated by an alive/active mask guard — the static twin of the
  runtime sanitizer's mask taxonomy and ``FaultRuntime``'s dead-PE
  masking.  Functions documented ``full-width`` (the R003 convention)
  are exempt.

Kernel scope = the :data:`~repro.lint.config.KERNEL_MODULES` registry,
``kernel_modules`` config entries, and ``# repro: kernel`` pragmas
(module-, class- or function-level).  R100 additionally covers
``repro/core/scheduler.py`` and everything under ``repro/faults/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import (
    MASK,
    MASK_INDEX,
    RNG_BAD,
    expression_provenance,
)
from repro.lint.findings import Finding
from repro.lint.rules import LintContext, Rule, register, resolve_call

__all__ = [
    "RngProvenance",
    "NondeterminismSource",
    "KernelPurity",
    "MaskProvenance",
]

#: Generator methods whose call is a draw from the stream.
_RNG_DRAW_METHODS = frozenset(
    {
        "integers",
        "random",
        "choice",
        "permutation",
        "permuted",
        "shuffle",
        "normal",
        "uniform",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "spawn",
    }
)


def _walk_own(root: ast.AST):
    """Walk one function body in source order, skipping nested defs."""
    stack = list(ast.iter_child_nodes(root))[::-1]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(list(ast.iter_child_nodes(node))[::-1])


class DataflowRule(Rule):
    """Base for project-aware rules; engine supplies ``ctx.project``."""

    family = "dataflow"
    requires_project = True

    def module_info(self, ctx: LintContext):
        if ctx.project is None:
            return None
        return ctx.project.module_for(ctx.logical)

    def functions_of(self, ctx: LintContext):
        info = self.module_info(ctx)
        if info is None:
            return []
        return [fn for fn in info.functions.values() if fn.module == info.name]

    def env_of(self, ctx: LintContext, fn) -> dict[str, set[str]]:
        if ctx.dataflow is None:
            return {}
        facts = ctx.dataflow.get(fn.qualname)
        return facts.env if facts is not None else {}

    def prov(self, ctx: LintContext, fn, expr: ast.expr) -> set[str]:
        info = self.module_info(ctx)
        bindings = info.bindings if info is not None else {}
        return expression_provenance(
            expr,
            self.env_of(ctx, fn),
            bindings,
            fn=fn,
            project=ctx.project,
            facts=ctx.dataflow,
        )


@register
class RngProvenance(DataflowRule):
    """R100: scheduler/kernel/fault RNG must trace to ``rng.spawn_child``."""

    rule_id = "R100"
    title = "RNG stream without spawn_child/as_generator provenance"

    _EXTRA_SCOPES = ("repro/faults/",)
    _EXTRA_FILES = ("repro/core/scheduler.py",)
    _HINT = (
        "derive the stream from repro.util.rng.spawn_child / as_generator "
        "so it stays inside the run's seed tree"
    )

    def _in_scope(self, ctx: LintContext, fn) -> bool:
        return (
            fn.kernel
            or ctx.logical.startswith(self._EXTRA_SCOPES)
            or ctx.logical in self._EXTRA_FILES
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for fn in self.functions_of(ctx):
            if not self._in_scope(ctx, fn):
                continue
            env = self.env_of(ctx, fn)
            for node in _walk_own(fn.node):
                if isinstance(node, ast.Assign):
                    tags = self.prov(ctx, fn, node.value)
                    if RNG_BAD in tags:
                        yield self.finding(
                            ctx, node,
                            f"'{fn.name}' binds an RNG stream that does not "
                            f"trace back to the seed tree; {self._HINT}",
                        )
                elif isinstance(node, ast.Return) and node.value is not None:
                    tags = self.prov(ctx, fn, node.value)
                    if RNG_BAD in tags:
                        yield self.finding(
                            ctx, node,
                            f"'{fn.name}' returns an RNG stream that does not "
                            f"trace back to the seed tree; {self._HINT}",
                        )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _RNG_DRAW_METHODS
                        and isinstance(func.value, ast.Name)
                        and RNG_BAD in env.get(func.value.id, ())
                    ):
                        yield self.finding(
                            ctx, node,
                            f"draw '.{func.attr}()' from an unsanctioned RNG "
                            f"stream '{func.value.id}'; {self._HINT}",
                        )


@register
class NondeterminismSource(DataflowRule):
    """R101: no host-environment nondeterminism in kernel-marked code."""

    rule_id = "R101"
    title = "nondeterminism source in kernel-marked code"

    _BANNED_CALLS = {
        "time.time": "wall-clock read",
        "time.time_ns": "wall-clock read",
        "time.perf_counter": "wall-clock read",
        "time.perf_counter_ns": "wall-clock read",
        "time.monotonic": "wall-clock read",
        "time.monotonic_ns": "wall-clock read",
        "os.urandom": "OS entropy",
        "os.getrandom": "OS entropy",
        "os.getenv": "environment read",
        "uuid.uuid1": "entropy-derived identifier",
        "uuid.uuid4": "entropy-derived identifier",
        "datetime.datetime.now": "wall-clock read",
        "datetime.datetime.utcnow": "wall-clock read",
    }

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        info = self.module_info(ctx)
        if info is None:
            return
        if info.kernel:
            regions = [(None, info.tree)]
        else:
            regions = [
                (fn, fn.node)
                for fn in self.functions_of(ctx)
                if fn.kernel
            ]
        for _fn, root in regions:
            for node in ast.walk(root):
                yield from self._check_node(ctx, info, node)

    def _check_node(self, ctx, info, node) -> Iterator[Finding]:
        where = "in kernel-marked code"
        if isinstance(node, ast.Call):
            dotted = resolve_call(node.func, info.bindings)
            if dotted is not None:
                why = self._BANNED_CALLS.get(dotted)
                if why is None and dotted.startswith("secrets."):
                    why = "OS entropy"
                if why is not None:
                    yield self.finding(
                        ctx, node,
                        f"call to {dotted} ({why}) {where}; kernel results "
                        "must be a pure function of the seed and inputs",
                    )
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
                and any(
                    kw.arg == "key"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id == "id"
                    for kw in node.keywords
                )
            ):
                yield self.finding(
                    ctx, node,
                    f"sorted(key=id) {where}: object addresses vary run to "
                    "run; sort on a value key instead",
                )
        elif isinstance(node, ast.Attribute):
            if (
                node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and info.bindings.get(node.value.id) == "os"
            ):
                yield self.finding(
                    ctx, node,
                    f"os.environ access {where}; thread configuration in "
                    "explicitly so runs do not depend on the host shell",
                )
        elif isinstance(node, (ast.For, ast.comprehension)):
            if self._is_unordered(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    f"iteration over a set {where}: ordering depends on hash "
                    "seeding; iterate a sorted() or list view instead",
                )
        elif isinstance(node, ast.Subscript):
            if self._is_id_call(node.slice):
                yield self.finding(
                    ctx, node,
                    f"id()-keyed map access {where}: object addresses are "
                    "not stable across runs; key on a value identity",
                )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and self._is_id_call(key):
                    yield self.finding(
                        ctx, key,
                        f"id()-keyed map literal {where}: object addresses "
                        "are not stable across runs; key on a value identity",
                    )
        elif isinstance(node, ast.DictComp):
            if self._is_id_call(node.key):
                yield self.finding(
                    ctx, node.key,
                    f"id()-keyed map literal {where}: object addresses "
                    "are not stable across runs; key on a value identity",
                )

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    @staticmethod
    def _is_unordered(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )


@register
class KernelPurity(DataflowRule):
    """R102: kernel functions stay vectorized, typed and I/O-free."""

    rule_id = "R102"
    title = "kernel purity violation (PE loop / dtype drift / I/O / memo)"

    _PE_AXIS_NAMES = frozenset({"n_pes", "num_pes", "n_processors"})
    _FLOAT_DTYPES = frozenset(
        {"float", "float16", "float32", "float64", "half", "single", "double"}
    )
    _IO_CALLS = ("json.dump", "json.dumps", "pickle.dump", "pickle.dumps")
    _IO_METHODS = frozenset(
        {"write_text", "write_bytes", "read_text", "read_bytes", "save",
         "savetxt", "tofile"}
    )
    _MEMO_CALLS = frozenset({"repro.search.memo.HeuristicMemo"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        info = self.module_info(ctx)
        if info is None:
            return
        for fn in self.functions_of(ctx):
            if not fn.kernel:
                continue
            for node in _walk_own(fn.node):
                yield from self._check_node(ctx, info, fn, node)

    def _check_node(self, ctx, info, fn, node) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.comprehension)):
            if self._is_pe_axis_range(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    f"'{fn.name}' loops over the PE axis in Python; kernel "
                    "code advances all PEs in one vectorized numpy call "
                    "(hoist the loop into a full-width kernel or move this "
                    "out of kernel scope)",
                )
        elif isinstance(node, ast.keyword) and node.arg == "dtype":
            label = self._dtype_label(node.value, info.bindings)
            if label == "object":
                yield self.finding(
                    ctx, node.value,
                    f"object-dtype array in kernel '{fn.name}': boxes every "
                    "element and defeats vectorized expansion; use a fixed-"
                    "width integer dtype",
                )
            elif label in self._FLOAT_DTYPES:
                yield self.finding(
                    ctx, node.value,
                    f"float dtype '{label}' in kernel '{fn.name}': the arena "
                    "contract is integer (int64) storage — float drift "
                    "breaks bit-identity with the list oracle",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                for arg in node.args:
                    label = self._dtype_label(arg, info.bindings)
                    if label in self._FLOAT_DTYPES or label == "object":
                        yield self.finding(
                            ctx, node,
                            f"astype({label}) in kernel '{fn.name}': dtype "
                            "drift away from the int64 arena contract",
                        )
            if isinstance(func, ast.Name) and func.id in ("open", "print"):
                yield self.finding(
                    ctx, node,
                    f"{func.id}() in kernel '{fn.name}': kernels must not do "
                    "I/O; report through the ledger / repro.obs instead",
                )
            if isinstance(func, ast.Attribute) and func.attr in self._IO_METHODS:
                yield self.finding(
                    ctx, node,
                    f".{func.attr}() in kernel '{fn.name}': kernels must not "
                    "do I/O; report through the ledger / repro.obs instead",
                )
            dotted = resolve_call(func, info.bindings)
            if dotted is not None:
                if dotted.startswith(self._IO_CALLS):
                    yield self.finding(
                        ctx, node,
                        f"call to {dotted} in kernel '{fn.name}': kernels "
                        "must not do I/O",
                    )
                if dotted in self._MEMO_CALLS:
                    yield self.finding(
                        ctx, node,
                        f"per-state Python-level memoization in kernel "
                        f"'{fn.name}': hashing whole-state keys per node "
                        "costs more than recomputing h (BENCH_search.json's "
                        "list-memo regression); use the arena's incremental "
                        "delta tables instead",
                    )

    def _is_pe_axis_range(self, it: ast.expr) -> bool:
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            return False
        for arg in it.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name) and sub.id in self._PE_AXIS_NAMES:
                    return True
                if isinstance(sub, ast.Attribute) and sub.attr in self._PE_AXIS_NAMES:
                    return True
        return False

    @staticmethod
    def _dtype_label(node: ast.expr, bindings: dict[str, str]) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in ("object", "float"):
                return node.id
            return None
        if isinstance(node, ast.Attribute):
            dotted = resolve_call(node, bindings)  # reuse attr-chain walker
            if dotted is not None and dotted.startswith("numpy."):
                return dotted.split(".", 1)[1]
            return node.attr
        return None


@register
class MaskProvenance(DataflowRule):
    """R103: PE-indexed storage writes are dominated by a mask guard."""

    rule_id = "R103"
    title = "unmasked write to PE-indexed storage"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for fn in self.functions_of(ctx):
            if not fn.kernel:
                continue
            doc = fn.docstring.lower()
            if "full-width" in doc or "unmasked" in doc:
                continue
            yield from self._check_function(ctx, fn)

    def _check_function(self, ctx: LintContext, fn) -> Iterator[Finding]:
        # Walk with a guard stack: a write dominated by an `if`/`while`
        # whose test is mask-derived is properly guarded.
        def visit(node: ast.AST, guarded: bool) -> Iterator[Finding]:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node is not fn.node:
                return
            if isinstance(node, (ast.If, ast.While)):
                test_tags = self.prov(ctx, fn, node.test)
                body_guarded = guarded or bool(
                    test_tags & {MASK, MASK_INDEX}
                )
                for child in node.body:
                    yield from visit(child, body_guarded)
                for child in node.orelse:
                    yield from visit(child, guarded)
                return
            if isinstance(node, (ast.Assign, ast.AugAssign)) and not guarded:
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    finding = self._check_write(ctx, fn, target)
                    if finding is not None:
                        yield finding
            for child in ast.iter_child_nodes(node):
                yield from visit(child, guarded)

        for child in ast.iter_child_nodes(fn.node):
            yield from visit(child, False)

    def _check_write(self, ctx: LintContext, fn, target: ast.expr):
        if not isinstance(target, ast.Subscript):
            return None
        # Only attribute-rooted storage counts (self.tiles, arena.meta);
        # local temporaries are scratch space, not arena state.
        if not isinstance(target.value, ast.Attribute):
            return None
        index = target.slice
        # A pure-slice index (self.top[:] = ..., buf[:, :k] = ...) writes
        # every PE explicitly — full-width by construction, not a masked
        # subset gone wrong.
        if isinstance(index, ast.Slice) or (
            isinstance(index, ast.Tuple)
            and all(isinstance(e, ast.Slice) for e in index.elts)
        ):
            return None
        tags = self.prov(ctx, fn, index)
        if tags & {MASK, MASK_INDEX}:
            return None
        storage = ast.unparse(target.value)
        return self.finding(
            ctx, target,
            f"write to PE-indexed storage '{storage}' in kernel "
            f"'{fn.name}' is not dominated by an alive/active mask guard; "
            "index through np.flatnonzero(mask) (or guard the statement "
            "with the mask), or document the function as full-width",
        )
