"""Finding and severity types shared by the lint rules and reporters."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Severity", "Finding"]


class Severity(str, Enum):
    """How bad a finding is; ERROR findings fail the lint run."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location.

    Attributes
    ----------
    rule:
        Rule identifier (``R001`` .. ``R004``; ``R000`` for parse errors).
    path:
        The file as given on the command line.
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable explanation with the sanctioned alternative.
    severity:
        :class:`Severity`; every built-in rule emits ``ERROR`` unless a
        ``[tool.repro.lint] severity`` override downgrades it.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    #: package-relative posix path (``repro/core/scheduler.py``) — filled
    #: by the engine; used by the baseline fingerprint so baselines stay
    #: valid when the checkout moves.
    logical: str = ""
    #: stripped source text of the flagged line — the line-insensitive
    #: half of the baseline fingerprint.
    snippet: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity.value,
            "logical": self.logical,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )
