"""The SIMD-discipline rule set (R001-R005) and the rule registry.

Each rule inspects one parsed module (:class:`LintContext`) and yields
:class:`~repro.lint.findings.Finding` objects.  The rules encode the
paper's lock-step contract:

- **R001** — all randomness flows through ``repro.util.rng``; no direct
  ``random`` / ``numpy.random`` use anywhere else, so every run is a
  pure function of its integer seed.
- **R002** — no wall-clock, entropy, or unordered-collection iteration
  in ``core/``, ``simd/`` or ``search/``: scheme behaviour (trigger
  decisions, GP rotation, D_K accounting) must not depend on when or
  where the host Python runs.
- **R003** — public modules declare ``__all__``; functions that build
  ``pvar`` parallel variables either select PEs with an explicit
  ``where`` context or document themselves as full-width.
- **R004** — scan/reduce/route collectives are only reached through
  ``ParallelVM`` / ``SimdMachine`` so their cost can't silently escape
  the time ledger.
- **R005** — trace series are recorded through ``Trace.record_cycle`` /
  ``record_lb`` (or typed ``repro.obs`` events), never by appending to
  the series attributes directly: the series are bounded ring buffers
  whose accessors return list *copies*, so a direct append silently
  mutates a throwaway.

Rules are module-scoped by *logical path* — the path suffix starting at
the ``repro`` package directory — so fixtures placed under a
``repro/core/`` directory in a test tree are linted exactly like the
real package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.findings import Finding, Severity

__all__ = [
    "LintContext",
    "Rule",
    "register",
    "all_rules",
    "rule_ids",
    "collect_imports",
    "resolve_call",
]


@dataclass(frozen=True)
class LintContext:
    """One parsed module handed to every rule.

    ``logical`` is the package-relative posix path (e.g.
    ``repro/core/scheduler.py``) used for scoping and exemptions;
    ``path`` is the on-disk path used in findings.  ``project`` and
    ``dataflow`` are filled by the engine when a project-aware rule
    (R100-R103) is active: the cross-module index/call graph and the
    per-function provenance facts.
    """

    path: Path
    logical: str
    source: str
    tree: ast.Module
    project: object | None = None
    dataflow: dict | None = None


def collect_imports(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted path they were imported as.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    time`` binds ``time -> time.time``; ``from repro.simd.scan import
    rendezvous as rv`` binds ``rv -> repro.simd.scan.rendezvous``.
    """
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    bindings[head] = head
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings[local] = f"{node.module}.{alias.name}"
    return bindings


def resolve_call(func: ast.expr, bindings: dict[str, str]) -> str | None:
    """Resolve a call's function expression to a dotted import path.

    Returns ``None`` when the callee is local (not import-derived) or
    too dynamic to resolve statically.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = bindings.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


class Rule:
    """Base lint rule; subclasses register themselves with :func:`register`."""

    rule_id: str = "R000"
    title: str = "abstract"
    severity: Severity = Severity.ERROR
    #: ``"basic"`` rules (R001-R005) run always; ``"dataflow"`` rules
    #: (R100-R103) run under ``--strict`` or when named explicitly.
    family: str = "basic"
    #: True when the rule consumes ``ctx.project`` / ``ctx.dataflow``.
    requires_project: bool = False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry."""
    _REGISTRY[cls.rule_id] = cls
    return cls


def _ensure_registered() -> None:
    """Import the dataflow rule module so its rules join the registry.

    Lazy to avoid a cycle: ``rules_dataflow`` imports this module's base
    classes at load time.
    """
    from repro.lint import rules_dataflow  # noqa: F401


def rule_ids(*, include_dataflow: bool = True) -> list[str]:
    """All registered rule identifiers, sorted."""
    _ensure_registered()
    return sorted(
        rid
        for rid, cls in _REGISTRY.items()
        if include_dataflow or cls.family == "basic"
    )


def all_rules(
    subset: Iterable[str] | None = None, *, include_dataflow: bool = False
) -> list[Rule]:
    """Instantiate the registered rules (optionally a named subset).

    With no ``subset``, the basic family (R001-R005) is returned;
    ``include_dataflow=True`` (the ``--strict`` path) adds R100-R103.
    An explicit ``subset`` may name rules from either family.
    """
    _ensure_registered()
    if subset is None:
        ids = rule_ids(include_dataflow=include_dataflow)
    else:
        ids = list(dict.fromkeys(s.upper() for s in subset))
        unknown = [i for i in ids if i not in _REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; known: {rule_ids()}"
            )
    return [_REGISTRY[i]() for i in ids]


# --------------------------------------------------------------------------- #


@register
class UnsanctionedRNG(Rule):
    """R001: all randomness must flow through ``repro.util.rng``."""

    rule_id = "R001"
    title = "unsanctioned RNG use outside repro/util/rng.py"

    _EXEMPT = ("repro/util/rng.py",)
    _HINT = (
        "derive streams through repro.util.rng.as_generator / spawn_child "
        "so runs stay a pure function of the seed"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.logical in self._EXEMPT:
            return
        bindings = collect_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    head = alias.name.split(".")[0]
                    if head == "random":
                        yield self.finding(
                            ctx, node,
                            f"import of the stdlib 'random' module; {self._HINT}",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                mod = node.module or ""
                if mod == "random" or mod.startswith("random."):
                    yield self.finding(
                        ctx, node,
                        f"import from the stdlib 'random' module; {self._HINT}",
                    )
                elif mod == "numpy.random" or mod.startswith("numpy.random."):
                    yield self.finding(
                        ctx, node,
                        f"import from numpy.random; {self._HINT}",
                    )
                elif mod == "numpy" and any(a.name == "random" for a in node.names):
                    yield self.finding(
                        ctx, node,
                        f"import of numpy.random; {self._HINT}",
                    )
            elif isinstance(node, ast.Call):
                dotted = resolve_call(node.func, bindings)
                if dotted is None:
                    continue
                if dotted.startswith("numpy.random.") or dotted == "random" or \
                        dotted.startswith("random."):
                    yield self.finding(
                        ctx, node, f"direct call to {dotted}; {self._HINT}"
                    )


@register
class Nondeterminism(Rule):
    """R002: no wall-clock / entropy / unordered iteration in hot subsystems."""

    rule_id = "R002"
    title = "nondeterminism in core/, simd/ or search/"

    _SCOPES = ("repro/core/", "repro/simd/", "repro/search/")
    _BANNED_CALLS = {
        "time.time": "wall-clock read",
        "time.time_ns": "wall-clock read",
        "time.perf_counter": "wall-clock read",
        "time.perf_counter_ns": "wall-clock read",
        "time.monotonic": "wall-clock read",
        "time.monotonic_ns": "wall-clock read",
        "time.clock_gettime": "wall-clock read",
        "os.urandom": "OS entropy",
        "os.getrandom": "OS entropy",
        "uuid.uuid1": "entropy-derived identifier",
        "uuid.uuid4": "entropy-derived identifier",
        "datetime.datetime.now": "wall-clock read",
        "datetime.datetime.utcnow": "wall-clock read",
        "datetime.datetime.today": "wall-clock read",
        "datetime.date.today": "wall-clock read",
    }
    _BANNED_PREFIXES = ("secrets.",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.logical.startswith(self._SCOPES):
            return
        bindings = collect_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = resolve_call(node.func, bindings)
                if dotted is None:
                    continue
                why = self._BANNED_CALLS.get(dotted)
                if why is None and dotted.startswith(self._BANNED_PREFIXES):
                    why = "OS entropy"
                if why is not None:
                    yield self.finding(
                        ctx, node,
                        f"call to {dotted} ({why}) in a lock-step subsystem; "
                        "simulated time lives on the SimdMachine ledger and "
                        "randomness comes from repro.util.rng",
                    )
            elif isinstance(node, ast.For):
                if self._is_unordered(node.iter):
                    yield self.finding(ctx, node.iter, self._ITER_MSG)
            elif isinstance(node, ast.comprehension):
                if self._is_unordered(node.iter):
                    yield self.finding(ctx, node.iter, self._ITER_MSG)

    _ITER_MSG = (
        "iteration over a set in a lock-step subsystem: ordering depends on "
        "hash seeding and can leak into scheduling decisions; iterate a "
        "sorted() or list view instead"
    )

    @staticmethod
    def _is_unordered(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )


@register
class ModuleDiscipline(Rule):
    """R003: public modules declare ``__all__``; pvar builders use ``where``."""

    rule_id = "R003"
    title = "missing __all__ / pvar built outside a where context"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        basename = Path(ctx.logical).name
        # The __all__ requirement is a *package-surface* contract: it only
        # applies to modules inside the repro package (logical path under
        # ``repro/``).  Test modules are never imported as an API, so
        # demanding __all__ there would be pure noise.
        in_package = ctx.logical.startswith("repro/")
        if (
            in_package
            and not basename.startswith("_")
            and not self._defines_all(ctx.tree)
        ):
            yield Finding(
                rule=self.rule_id,
                path=str(ctx.path),
                line=1,
                col=0,
                message="public module defines no __all__; declare its "
                "exported surface explicitly",
                severity=self.severity,
            )
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._calls_pvar(fn):
                continue
            doc = (ast.get_docstring(fn) or "").lower()
            if "full-width" in doc or self._has_where(fn):
                continue
            yield self.finding(
                ctx, fn,
                f"function '{fn.name}' builds pvar parallel variables but "
                "never opens a where() context; select PEs explicitly or "
                "document the function as full-width in its docstring",
            )

    @staticmethod
    def _defines_all(tree: ast.Module) -> bool:
        for node in tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return True
        return False

    @staticmethod
    def _calls_pvar(fn: ast.AST) -> bool:
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pvar"
            for node in ast.walk(fn)
        )

    @staticmethod
    def _has_where(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "where"
                ):
                    return True
        return False


@register
class RawCollective(Rule):
    """R004: collectives only through ``ParallelVM`` / ``SimdMachine``."""

    rule_id = "R004"
    title = "raw scan/reduce/route collective bypasses cost accounting"

    _EXEMPT_PREFIXES = ("repro/simd/", "repro/lint/")
    _MODULE_PREFIXES = (
        "repro.simd.scan.",
        "repro.simd.reduce.",
        "repro.simd.router.",
    )
    _COLLECTIVE_NAMES = {
        "sum_scan",
        "segmented_sum_scan",
        "enumerate_mask",
        "rendezvous",
        "reduce_array",
        "route_permutation",
        "ecube_path",
    }

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.logical.startswith(self._EXEMPT_PREFIXES):
            return
        bindings = collect_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_call(node.func, bindings)
            if dotted is None:
                continue
            is_raw = dotted.startswith(self._MODULE_PREFIXES) or (
                dotted.startswith("repro.simd.")
                and dotted.rsplit(".", 1)[-1] in self._COLLECTIVE_NAMES
            )
            if is_raw:
                yield self.finding(
                    ctx, node,
                    f"raw collective call {dotted} bypasses ParallelVM/"
                    "SimdMachine cost accounting; invoke it through the VM "
                    "or charge the machine explicitly",
                )


@register
class DirectTraceAppend(Rule):
    """R005: trace series are written via ``record_*``, never appended to."""

    rule_id = "R005"
    title = "direct append to a Trace series outside repro.obs"

    _EXEMPT_PREFIXES = ("repro/obs/",)
    _EXEMPT_FILES = ("repro/core/metrics.py",)
    _SERIES = frozenset(
        {
            "busy_per_cycle",
            "expanding_per_cycle",
            "lb_cycle_indices",
            "trigger_r1",
            "trigger_r2",
        }
    )
    _MUTATORS = frozenset({"append", "extend", "insert"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.logical.startswith(self._EXEMPT_PREFIXES):
            return
        if ctx.logical in self._EXEMPT_FILES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._MUTATORS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in self._SERIES
            ):
                continue
            yield self.finding(
                ctx, node,
                f"direct .{func.attr}() on trace series "
                f"'{func.value.attr}': the series accessors return list "
                "copies of a bounded ring buffer, so this mutates a "
                "throwaway; record through Trace.record_cycle/record_lb "
                "or a typed repro.obs event sink",
            )
