"""Static SIMD-discipline checks plus the runtime lock-step sanitizer.

``python -m repro lint src/`` (or :func:`run_lint` from code) enforces
the determinism contract the paper's analysis rests on:

- **R001** randomness only through ``repro.util.rng``;
- **R002** no wall-clock / entropy / set-iteration nondeterminism in
  ``core/``, ``simd/`` or ``search/``;
- **R003** ``repro`` package modules declare ``__all__``; ``pvar``
  builders use an explicit ``where`` context or document themselves
  full-width;
- **R004** scan/reduce/route collectives only via ``ParallelVM`` /
  ``SimdMachine`` so the time ledger sees them;
- **R005** trace series written via ``record_*``, never appended to.

``--strict`` adds the project-wide **dataflow family** — built on a
module index, call graph (:mod:`repro.lint.graph`) and provenance
dataflow (:mod:`repro.lint.dataflow`):

- **R100** RNG in scheduler/kernel/fault code traces to
  ``rng.spawn_child`` / ``as_generator``;
- **R101** no wall-clock / ``os.environ`` / set-order / ``id()``-keyed
  nondeterminism in kernel-marked code;
- **R102** kernel purity: no Python PE-axis loops, object dtypes, float
  dtype drift, I/O, or per-state memoization;
- **R103** writes to PE-indexed storage are dominated by an
  alive/active mask guard.

Kernel scope comes from :data:`~repro.lint.config.KERNEL_MODULES`,
``[tool.repro.lint] kernel_modules`` and ``# repro: kernel`` pragmas.
Suppress a finding inline with ``# repro-lint: disable=R001``, for a
whole file with ``# repro-lint: disable-file=R004 -- justification``,
or accept it durably in a committed baseline
(:mod:`repro.lint.baseline`) that ``--baseline`` ratchets against.
``--format sarif`` (:mod:`repro.lint.sarif`) emits SARIF 2.1.0 for PR
annotation.

The sibling :mod:`repro.lint.runtime` module checks the same discipline
dynamically — see ``Scheduler(sanitize=True)``.
"""

from repro.lint.baseline import Baseline, apply_baseline, fingerprint
from repro.lint.config import KERNEL_MODULES, LintConfig, load_config
from repro.lint.dataflow import (
    FunctionFacts,
    analyze_function,
    compute_project_facts,
    expression_provenance,
)
from repro.lint.engine import (
    LintResult,
    iter_python_files,
    logical_path,
    parse_suppressions,
    run_lint,
)
from repro.lint.findings import Finding, Severity
from repro.lint.graph import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    build_project,
    module_name_for,
    parse_kernel_pragmas,
)
from repro.lint.report import exit_code, render_json, render_text
from repro.lint.rules import (
    LintContext,
    Rule,
    all_rules,
    collect_imports,
    register,
    resolve_call,
    rule_ids,
)
from repro.lint.runtime import SanitizerError, SchedulerSanitizer, require
from repro.lint.sarif import render_sarif, to_sarif

__all__ = [
    "Baseline",
    "Finding",
    "FunctionFacts",
    "FunctionInfo",
    "KERNEL_MODULES",
    "LintConfig",
    "LintContext",
    "LintResult",
    "ModuleInfo",
    "ProjectIndex",
    "Rule",
    "SanitizerError",
    "SchedulerSanitizer",
    "all_rules",
    "analyze_function",
    "apply_baseline",
    "build_project",
    "collect_imports",
    "compute_project_facts",
    "exit_code",
    "expression_provenance",
    "fingerprint",
    "iter_python_files",
    "load_config",
    "logical_path",
    "module_name_for",
    "parse_kernel_pragmas",
    "parse_suppressions",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "require",
    "resolve_call",
    "rule_ids",
    "run_lint",
    "to_sarif",
]
