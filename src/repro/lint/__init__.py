"""Static SIMD-discipline checks plus the runtime lock-step sanitizer.

``python -m repro lint src/`` (or :func:`run_lint` from code) enforces
the determinism contract the paper's analysis rests on:

- **R001** randomness only through ``repro.util.rng``;
- **R002** no wall-clock / entropy / set-iteration nondeterminism in
  ``core/``, ``simd/`` or ``search/``;
- **R003** public modules declare ``__all__``; ``pvar`` builders use an
  explicit ``where`` context or document themselves full-width;
- **R004** scan/reduce/route collectives only via ``ParallelVM`` /
  ``SimdMachine`` so the time ledger sees them.

Suppress a finding inline with ``# repro-lint: disable=R001`` or for a
whole file with ``# repro-lint: disable-file=R004 -- justification``.

The sibling :mod:`repro.lint.runtime` module checks the same discipline
dynamically — see ``Scheduler(sanitize=True)``.
"""

from repro.lint.engine import (
    LintResult,
    iter_python_files,
    logical_path,
    parse_suppressions,
    run_lint,
)
from repro.lint.findings import Finding, Severity
from repro.lint.report import exit_code, render_json, render_text
from repro.lint.rules import (
    LintContext,
    Rule,
    all_rules,
    collect_imports,
    register,
    resolve_call,
    rule_ids,
)
from repro.lint.runtime import SanitizerError, SchedulerSanitizer, require

__all__ = [
    "Finding",
    "Severity",
    "LintContext",
    "LintResult",
    "Rule",
    "register",
    "all_rules",
    "rule_ids",
    "collect_imports",
    "resolve_call",
    "run_lint",
    "iter_python_files",
    "logical_path",
    "parse_suppressions",
    "render_text",
    "render_json",
    "exit_code",
    "SanitizerError",
    "SchedulerSanitizer",
    "require",
]
