"""Suppression baseline — the lint ratchet.

A baseline file records fingerprints of *accepted* findings (either
intentional — seeded fixtures, oracle code — or pre-existing debt).
``repro lint --baseline .lint-baseline.json`` drops baselined findings,
so CI fails only on findings **not** in the file: existing debt never
blocks a PR, new debt always does, and deleting entries is the only way
the count moves — a one-way ratchet.

Fingerprints are line-number-*insensitive*: ``sha1(rule | logical path |
stripped source line | occurrence)`` — so unrelated edits that shift a
file do not invalidate the baseline, while changing the flagged line
itself (or adding a second identical violation) surfaces as new.

Regenerate after intentional changes with ``repro lint --strict
--update-baseline .lint-baseline.json`` and commit the diff; the review
of that diff *is* the audit of the accepted findings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

__all__ = ["Baseline", "fingerprint", "apply_baseline"]

_SCHEMA = 1


def fingerprint(finding: Finding, occurrence: int = 0) -> str:
    """Stable identity of one finding (line-number-insensitive)."""
    key = "|".join(
        (
            finding.rule,
            finding.logical or finding.path,
            finding.snippet.strip(),
            str(occurrence),
        )
    )
    return hashlib.sha1(key.encode("utf-8")).hexdigest()


def _fingerprints(findings: list[Finding]) -> list[tuple[Finding, str]]:
    """Fingerprint a finding list, disambiguating identical lines."""
    seen: dict[str, int] = {}
    out: list[tuple[Finding, str]] = []
    for finding in findings:
        base = f"{finding.rule}|{finding.logical or finding.path}|{finding.snippet.strip()}"
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        out.append((finding, fingerprint(finding, occurrence)))
    return out


@dataclass
class Baseline:
    """A set of accepted finding fingerprints plus human-readable context."""

    entries: dict[str, dict] = field(default_factory=dict)

    def __contains__(self, fp: str) -> bool:
        return fp in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(
                f"{path}: not a lint baseline file (missing 'entries')"
            )
        return cls(entries={e["fingerprint"]: e for e in data["entries"]})

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries = {}
        for finding, fp in _fingerprints(findings):
            entries[fp] = {
                "fingerprint": fp,
                "rule": finding.rule,
                "path": finding.logical or finding.path,
                "line": finding.line,
                "message": finding.message,
            }
        return cls(entries=entries)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        payload = {
            "schema": _SCHEMA,
            "tool": "repro-lint",
            "entries": sorted(
                self.entries.values(),
                key=lambda e: (e["path"], e["rule"], e.get("line", 0)),
            ),
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def apply_baseline(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], int]:
    """Split findings into (surviving, baselined-count)."""
    surviving: list[Finding] = []
    dropped = 0
    for finding, fp in _fingerprints(findings):
        if fp in baseline:
            dropped += 1
        else:
            surviving.append(finding)
    return surviving, dropped
