"""SARIF 2.1.0 output — findings as PR annotations.

``repro lint --format sarif`` emits one SARIF run per invocation so CI
can upload the report (``github/codeql-action/upload-sarif``) and GitHub
renders every finding inline on the pull request diff.  The emitted
shape sticks to the stable core of the spec: ``tool.driver`` with the
full rule catalog, one ``result`` per finding with a physical location,
and a ``partialFingerprints`` entry carrying the same line-insensitive
hash the baseline ratchet uses, so GitHub's alert dedup and our
baseline agree on identity.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.baseline import _fingerprints
from repro.lint.engine import LintResult
from repro.lint.findings import Severity
from repro.lint.rules import all_rules

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://github.com/repro/repro/blob/main/docs/lint.md"


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _uri(path: str) -> str:
    """Repo-relative posix URI when possible, else the absolute path."""
    p = Path(path)
    try:
        return p.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return p.as_posix()


def to_sarif(result: LintResult, *, rule_ids: list[str] | None = None) -> dict:
    """Build the SARIF 2.1.0 log object for one lint run."""
    rules = all_rules(rule_ids) if rule_ids else all_rules(include_dataflow=True)
    catalog = []
    index_of: dict[str, int] = {}
    for i, rule in enumerate(rules):
        index_of[rule.rule_id] = i
        catalog.append(
            {
                "id": rule.rule_id,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.title},
                "helpUri": _INFO_URI,
                "defaultConfiguration": {"level": _level(rule.severity)},
            }
        )
    results = []
    for finding, fp in _fingerprints(result.findings):
        entry = {
            "ruleId": finding.rule,
            "level": _level(finding.severity),
            "message": {"text": finding.message},
            "partialFingerprints": {"reproLint/v1": fp},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(finding.path)},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in index_of:
            entry["ruleIndex"] = index_of[finding.rule]
        results.append(entry)
    return {
        "$schema": _SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _INFO_URI,
                        "version": "2.0.0",
                        "rules": catalog,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    """The SARIF log as pretty-printed JSON."""
    return json.dumps(to_sarif(result), indent=2, sort_keys=True)
