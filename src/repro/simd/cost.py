"""The machine cost model (Section 3.1 terminology).

Couples the node-expansion cycle time ``U_calc`` with a
:class:`~repro.simd.topology.Topology` to price load-balancing phases.  A
phase consists of a *setup step* (a small fixed number of sum-scans that
enumerate idle/busy processors and, for GP, maintain the global pointer)
plus one or more *work-transfer rounds* (general permutations).

``lb_cost_multiplier`` reproduces the Table 5 experiment, where the authors
inflated message sizes to simulate 12x and 16x more expensive transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.simd.topology import CM2Topology, Topology
from repro.util.validation import check_positive, check_positive_int

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Time accounting parameters of the simulated SIMD machine.

    Parameters
    ----------
    u_calc:
        Seconds per lock-step node-expansion cycle (paper: ~30 ms on CM-2).
    topology:
        Interconnect model supplying scan and transfer times.
    setup_scans:
        Number of sum-scans in the setup step of one LB phase.
    lb_cost_multiplier:
        Scales the transfer cost only (Table 5's inflated messages).
    """

    u_calc: float = 0.030
    topology: Topology = field(default_factory=CM2Topology)
    setup_scans: int = 3
    lb_cost_multiplier: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.u_calc, "u_calc")
        check_positive_int(self.setup_scans, "setup_scans")
        check_positive(self.lb_cost_multiplier, "lb_cost_multiplier")

    def scan_time(self, n_pes: int) -> float:
        """Time of one sum-scan on ``n_pes`` processors."""
        return self.topology.scan_time(n_pes)

    def transfer_time(self, n_pes: int) -> float:
        """Time of one work-transfer round (inflated by the multiplier)."""
        return self.topology.transfer_time(n_pes) * self.lb_cost_multiplier

    def lb_phase_time(
        self,
        n_pes: int,
        *,
        transfer_rounds: int = 1,
        setup_scans: int | None = None,
    ) -> float:
        """Total elapsed time of one load-balancing phase, ``t_lb``.

        Multiple-transfer schemes (D_P, FEGS) pay the setup scans once and
        the permutation cost per round.  ``setup_scans`` overrides the
        model default — GP needs one extra bookkeeping scan for the global
        pointer (Section 3.3).
        """
        if transfer_rounds < 0:
            raise ValueError(f"transfer_rounds must be >= 0, got {transfer_rounds}")
        scans = self.setup_scans if setup_scans is None else setup_scans
        if scans < 0:
            raise ValueError(f"setup_scans must be >= 0, got {scans}")
        return scans * self.scan_time(n_pes) + transfer_rounds * self.transfer_time(
            n_pes
        )

    def recovery_phase_time(
        self,
        n_pes: int,
        *,
        transfer_rounds: int = 1,
        setup_scans: int | None = None,
    ) -> float:
        """Total elapsed time of one fault-recovery phase.

        Recovery reuses the LB machinery — a scan-based setup step that
        locates quarantined frontiers and idle survivors, then permutation
        rounds that re-donate the work — so it is priced exactly like an
        LB phase.  Kept as a separate method so alternative machines can
        price recovery differently (e.g. frontier replay from a log).
        """
        return self.lb_phase_time(
            n_pes, transfer_rounds=transfer_rounds, setup_scans=setup_scans
        )

    def with_lb_multiplier(self, multiplier: float) -> "CostModel":
        """Return a copy with the transfer cost scaled by ``multiplier``."""
        return replace(self, lb_cost_multiplier=multiplier)

    def lb_ratio(self, n_pes: int) -> float:
        """``t_lb / U_calc`` for a single-transfer phase — the knob that
        drives the optimal static trigger (Equation 18)."""
        return self.lb_phase_time(n_pes) / self.u_calc
