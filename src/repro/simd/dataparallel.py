"""A CM-2-style data-parallel programming layer.

The machine the paper programs is not an array library — it is a
*data-parallel VM*: every instruction executes on all processors, gated
by a stack of context flags (the Paris "where/elsewhere" discipline),
with scans, reductions and router sends as the only communication.

``ParallelVM`` provides exactly that vocabulary:

- ``pvar(...)`` — one value per PE;
- ``where(mask): ...`` — nested context selection (inactive PEs keep
  their old values);
- ``scan_add``, ``enumerate_active``, ``reduce`` — collectives over the
  *active* set;
- ``send`` — route values to destination PEs (a general permutation).

``gp_match_on_vm`` re-derives the paper's GP matching step purely in
this vocabulary; the test suite proves it equivalent to the direct
``GPMatcher`` implementation for arbitrary busy/idle masks — i.e. the
scheme really is expressible in the machine's native operations, which
is the paper's implicit implementation claim.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.lint.runtime import SanitizerError, require
from repro.util.validation import check_positive_int

__all__ = ["ParallelVM", "gp_match_on_vm"]


class ParallelVM:
    """A lock-step array machine with a context-flag stack.

    All operations are full-width; the context stack decides which PEs
    observe writes.  One VM instance models one SIMD program's
    execution; collectives count invocations so cost models can charge
    them.

    With ``sanitize=True`` every ``where`` block verifies on exit that
    the context it pushed is still on top of the stack — push/pop
    imbalance (manual stack surgery inside a block) raises
    :class:`~repro.lint.runtime.SanitizerError` instead of silently
    corrupting the selection of every later write.
    """

    def __init__(self, n_pes: int, *, sanitize: bool = False) -> None:
        self.n_pes = check_positive_int(n_pes, "n_pes")
        self.sanitize = bool(sanitize)
        self._context: list[np.ndarray] = [np.ones(n_pes, dtype=bool)]
        self.scan_count = 0
        self.reduce_count = 0
        self.send_count = 0

    # -- context ------------------------------------------------------------

    @property
    def active(self) -> np.ndarray:
        """The current context: PEs that observe writes."""
        return self._context[-1]

    @property
    def context_depth(self) -> int:
        """Number of ``where`` frames currently open (0 at top level)."""
        return len(self._context) - 1

    def assert_balanced(self) -> None:
        """Sanitizer hook: verify every ``where`` frame has been exited."""
        require(
            len(self._context) == 1,
            "context-balance",
            f"{len(self._context) - 1} where() frame(s) left on the context "
            "stack at a point that should be top level",
        )

    @contextmanager
    def where(self, mask: np.ndarray):
        """Nested context selection (Paris ``where``).

        The new context is the AND of ``mask`` with the enclosing one.
        """
        mask = self._as_mask(mask)
        frame = self.active & mask
        self._context.append(frame)
        try:
            yield self
        finally:
            if self.sanitize and self._context[-1] is not frame:
                raise SanitizerError(
                    "context-balance",
                    "where() exited with a different context on top of the "
                    "stack — push/pop imbalance inside the block",
                )
            self._context.pop()

    def _as_mask(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_pes,):
            raise ValueError(
                f"mask must have shape ({self.n_pes},), got {mask.shape}"
            )
        return mask

    # -- pvar construction and assignment -------------------------------------

    def pvar(self, fill: object = 0, dtype=np.int64) -> np.ndarray:
        """A fresh parallel variable (one slot per PE)."""
        return np.full(self.n_pes, fill, dtype=dtype)

    def iota(self) -> np.ndarray:
        """Each PE's self-address (0..P-1)."""
        return np.arange(self.n_pes, dtype=np.int64)

    def assign(self, target: np.ndarray, value) -> None:
        """Masked store: only active PEs take the new value."""
        np.copyto(target, value, where=self.active, casting="unsafe")

    # -- collectives (over the active set) ------------------------------------

    def scan_add(self, values: np.ndarray) -> np.ndarray:
        """Exclusive plus-scan of the active PEs' values.

        Inactive PEs contribute zero and receive an undefined (zero)
        result, matching the machine's segmented behaviour.
        """
        self.scan_count += 1
        contrib = np.where(self.active, values, 0)
        out = np.zeros_like(contrib)
        out[1:] = np.cumsum(contrib)[:-1]
        return np.where(self.active, out, 0)

    def enumerate_active(self) -> np.ndarray:
        """Rank of each active PE among the active set (-1 if inactive).

        Runs full-width by design: the caller's enclosing context decides
        the active set, and inactive PEs receive the -1 sentinel.
        """
        ranks = self.scan_add(self.pvar(1))
        return np.where(self.active, ranks, -1)

    def reduce_add(self, values: np.ndarray) -> int:
        """Sum of active PEs' values, broadcast to the front end."""
        self.reduce_count += 1
        return int(np.where(self.active, values, 0).sum())

    def reduce_max(self, values: np.ndarray, *, identity: int) -> int:
        """Max over the active set (``identity`` if none active)."""
        self.reduce_count += 1
        masked = np.where(self.active, values, identity)
        return int(masked.max()) if self.n_pes else identity

    # -- communication ---------------------------------------------------------

    def send(
        self,
        values: np.ndarray,
        destinations: np.ndarray,
        *,
        default: object = 0,
        dtype=None,
    ) -> np.ndarray:
        """Route each active PE's value to PE ``destinations[i]``.

        Destinations of active senders must be unique (a partial
        permutation — the LB phase's transfer pattern).  Non-receiving
        PEs get ``default``.
        """
        self.send_count += 1
        destinations = np.asarray(destinations, dtype=np.int64)
        if destinations.shape != (self.n_pes,):
            raise ValueError("destinations must have one entry per PE")
        senders = np.flatnonzero(self.active)
        dests = destinations[senders]
        if np.any((dests < 0) | (dests >= self.n_pes)):
            raise ValueError("destination out of range")
        if len(np.unique(dests)) != len(dests):
            raise ValueError("send collision: two active PEs share a destination")
        out = np.full(self.n_pes, default, dtype=dtype or np.asarray(values).dtype)
        out[dests] = np.asarray(values)[senders]
        return out


def gp_match_on_vm(
    busy: np.ndarray,
    idle: np.ndarray,
    pointer: int | None,
) -> tuple[np.ndarray, np.ndarray, int | None]:
    """The GP matching step written in pure data-parallel vocabulary.

    Returns ``(donors, receivers, new_pointer)`` — bit-for-bit the same
    pairing as :class:`repro.core.matching.GPMatcher` (asserted by the
    equivalence tests).  The implementation uses only ``where`` blocks,
    scans, reductions and a router send, i.e. it would run on the
    machine as written.
    """
    busy = np.asarray(busy, dtype=bool)
    idle = np.asarray(idle, dtype=bool)
    vm = ParallelVM(len(busy))
    self_addr = vm.iota()

    # Rotate the busy enumeration: PEs after the pointer come first.
    # rank = (enumeration among busy) shifted by the count of busy PEs
    # at or before the pointer, modulo the busy count.
    with vm.where(busy):
        base_rank = vm.enumerate_active()
        n_busy = vm.reduce_add(vm.pvar(1))
    if n_busy == 0 or not idle.any():
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64), pointer

    if pointer is None:
        shift = 0
    else:
        with vm.where(busy & (self_addr <= pointer)):
            shift = vm.reduce_add(vm.pvar(1))
        shift %= n_busy
    rot_rank = np.where(busy, (base_rank - shift) % n_busy, -1)

    with vm.where(idle):
        idle_rank = vm.enumerate_active()
        n_idle = vm.reduce_add(vm.pvar(1))

    k = min(n_busy, n_idle)

    # Rendezvous through rank space: donor rank r announces its address
    # into slot r; receiver rank r announces its address into slot r.
    donor_slot = vm.pvar(-1)
    with vm.where(busy & (rot_rank < k)):
        donor_slot = vm.send(self_addr, np.maximum(rot_rank, 0), default=-1)
    recv_slot = vm.pvar(-1)
    with vm.where(idle & (idle_rank < k)):
        recv_slot = vm.send(self_addr, np.maximum(idle_rank, 0), default=-1)

    donors = donor_slot[:k].copy()
    receivers = recv_slot[:k].copy()
    new_pointer = int(donors[-1]) if k > 0 else pointer
    return donors, receivers, new_pointer
