"""Hypercube permutation routing (the substrate behind footnote 4).

The paper prices a work-transfer round as a *general permutation*:
``O(log^2 P)`` on a hypercube with dimension-ordered (e-cube) routing,
possibly ``O(log P)`` for favourable permutations/networks.  This
module simulates that router so the constant isn't folklore:

- messages travel dimension by dimension (correct bit 0 first);
- each directed link carries one message per step; conflicting messages
  queue (FIFO per link);
- :func:`route_permutation` reports the number of steps a full
  permutation needs.

Tests confirm the analytic envelope: identity = 0 steps, single
far-corner message = log P steps, random permutations land between
log P and O(log^2 P), and the known-bad bit-reversal permutation is
worse than random — the classical router behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["RouteResult", "route_permutation", "ecube_path"]


def _check_power_of_two(n_pes: int) -> int:
    check_positive_int(n_pes, "n_pes")
    if n_pes & (n_pes - 1):
        raise ValueError(f"hypercube size must be a power of two, got {n_pes}")
    return n_pes


def ecube_path(src: int, dst: int, n_pes: int) -> list[int]:
    """Nodes visited by dimension-ordered routing from ``src`` to ``dst``.

    Corrects differing address bits lowest dimension first; the path
    length is the Hamming distance.
    """
    _check_power_of_two(n_pes)
    if not (0 <= src < n_pes and 0 <= dst < n_pes):
        raise ValueError(f"src/dst must be in [0, {n_pes}), got {src}, {dst}")
    path = [src]
    current = src
    diff = src ^ dst
    dim = 0
    while diff:
        if diff & 1:
            current ^= 1 << dim
            path.append(current)
        diff >>= 1
        dim += 1
    return path


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing one permutation.

    Attributes
    ----------
    steps:
        Machine cycles until the last message arrived (0 for identity).
    total_hops:
        Sum of Hamming distances — the congestion-free lower bound on
        link usage.
    max_link_load:
        Most messages that crossed any single directed link; > 1 means
        the permutation had conflicts.
    """

    steps: int
    total_hops: int
    max_link_load: int


def route_permutation(destinations: np.ndarray, *, max_steps: int | None = None) -> RouteResult:
    """Deliver one message per PE to ``destinations`` by e-cube routing.

    ``destinations`` must be a permutation of ``0..P-1`` (P a power of
    two).  One message per directed link per step; blocked messages wait
    in FIFO order.  Returns the step count and congestion statistics.
    """
    destinations = np.asarray(destinations, dtype=np.int64)
    n_pes = _check_power_of_two(len(destinations))
    if not np.array_equal(np.sort(destinations), np.arange(n_pes)):
        raise ValueError("destinations must be a permutation of 0..P-1")
    if max_steps is None:
        # Worst-case e-cube on a permutation is O(sqrt P) steps for
        # adversarial patterns; this cap only guards against bugs.
        max_steps = 16 * n_pes

    # Precompute each message's remaining path (list of next-hop nodes).
    paths = {
        src: deque(ecube_path(src, int(dst), n_pes)[1:])
        for src, dst in enumerate(destinations)
        if src != dst
    }
    total_hops = sum(len(p) for p in paths.values())
    if not paths:
        return RouteResult(steps=0, total_hops=0, max_link_load=0)

    # position of each in-flight message.
    position = {msg: msg for msg in paths}
    # FIFO arbitration state: messages maintain their id order per link.
    link_use: dict[tuple[int, int], int] = {}
    steps = 0
    while paths:
        steps += 1
        if steps > max_steps:
            raise RuntimeError(f"router exceeded max_steps={max_steps}")
        requested: dict[tuple[int, int], int] = {}
        # Older messages (smaller id) win ties — any fixed arbitration
        # works; FIFO per link emerges from re-requesting next step.
        for msg in sorted(paths):
            here = position[msg]
            nxt = paths[msg][0]
            link = (here, nxt)
            if link not in requested:
                requested[link] = msg
        for (here, nxt), msg in requested.items():
            link_use[(here, nxt)] = link_use.get((here, nxt), 0) + 1
            position[msg] = nxt
            paths[msg].popleft()
            if not paths[msg]:
                del paths[msg]
                del position[msg]

    max_load = max(link_use.values(), default=0)
    return RouteResult(steps=steps, total_hops=total_hops, max_link_load=max_load)
