"""Interconnect cost models (Section 3.3 of the paper).

The paper analyzes three architectures:

- **CM-2**: hardware-assisted scans and a router whose permutation cost is,
  in practice, a large constant independent of P (up to the 64K-PE maximum
  configuration) — so ``t_lb = O(1)``.
- **Hypercube**: sum-scan ``O(log P)``; a general fixed-size permutation
  ``O(log^2 P)``.
- **Mesh**: both ``O(sqrt P)``.

A topology converts a processor count into *scan time* and *transfer time*
in seconds, given per-hop constants.  The defaults are calibrated so that a
CM-2 load-balancing phase costs 13 ms against a 30 ms node-expansion cycle,
the measured ratio of Section 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive, check_positive_int

__all__ = ["Topology", "CM2Topology", "HypercubeTopology", "MeshTopology"]


@dataclass(frozen=True)
class Topology:
    """Base interconnect model.

    Subclasses override :meth:`scan_time` and :meth:`transfer_time`; both
    return seconds for a machine of ``n_pes`` processors.
    """

    name: str = "abstract"

    def scan_time(self, n_pes: int) -> float:
        """Time for one sum-scan across ``n_pes`` processors."""
        raise NotImplementedError

    def transfer_time(self, n_pes: int) -> float:
        """Time for one fixed-size permutation (work-transfer round)."""
        raise NotImplementedError

    @staticmethod
    def _check(n_pes: int) -> int:
        return check_positive_int(n_pes, "n_pes")


@dataclass(frozen=True)
class CM2Topology(Topology):
    """CM-2 model: constant scan and transfer costs (Section 3.3).

    ``scan_cost`` is "a lot smaller" than ``transfer_cost`` on the real
    machine; defaults make the full LB phase (3 scans + 1 transfer) 13 ms.
    """

    name: str = "cm2"
    scan_cost: float = 0.001
    transfer_cost: float = 0.010

    def __post_init__(self) -> None:
        check_positive(self.scan_cost, "scan_cost")
        check_positive(self.transfer_cost, "transfer_cost")

    def scan_time(self, n_pes: int) -> float:
        self._check(n_pes)
        return self.scan_cost

    def transfer_time(self, n_pes: int) -> float:
        self._check(n_pes)
        return self.transfer_cost


@dataclass(frozen=True)
class HypercubeTopology(Topology):
    """Hypercube model: scan ``O(log P)``, permutation ``O(log^2 P)``."""

    name: str = "hypercube"
    scan_hop_cost: float = 1.0e-4
    transfer_hop_cost: float = 1.0e-4

    def __post_init__(self) -> None:
        check_positive(self.scan_hop_cost, "scan_hop_cost")
        check_positive(self.transfer_hop_cost, "transfer_hop_cost")

    def scan_time(self, n_pes: int) -> float:
        self._check(n_pes)
        return self.scan_hop_cost * max(1.0, math.log2(n_pes))

    def transfer_time(self, n_pes: int) -> float:
        self._check(n_pes)
        return self.transfer_hop_cost * max(1.0, math.log2(n_pes)) ** 2


@dataclass(frozen=True)
class MeshTopology(Topology):
    """2-D mesh model: scan and permutation both ``O(sqrt P)``."""

    name: str = "mesh"
    scan_hop_cost: float = 1.0e-4
    transfer_hop_cost: float = 1.0e-4

    def __post_init__(self) -> None:
        check_positive(self.scan_hop_cost, "scan_hop_cost")
        check_positive(self.transfer_hop_cost, "transfer_hop_cost")

    def scan_time(self, n_pes: int) -> float:
        self._check(n_pes)
        return self.scan_hop_cost * math.sqrt(n_pes)

    def transfer_time(self, n_pes: int) -> float:
        self._check(n_pes)
        return self.transfer_hop_cost * math.sqrt(n_pes)
