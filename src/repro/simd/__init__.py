"""SIMD machine substrate.

Simulates the lock-step data-parallel machine the paper runs on (a CM-2):

- :mod:`repro.simd.scan` — Blelloch sum-scans, mask enumeration and the
  rendezvous allocation used to pair idle with busy processors.
- :mod:`repro.simd.topology` — interconnect cost models (CM-2 constant-cost,
  hypercube, mesh) from Section 3.3 of the paper.
- :mod:`repro.simd.cost` — the machine cost model: node-expansion cycle time
  ``U_calc`` and load-balancing phase time ``t_lb``.
- :mod:`repro.simd.machine` — the time ledger of a lock-step run: every
  expansion cycle and load-balancing phase is charged here, yielding
  ``T_calc``, ``T_idle`` and ``T_lb`` exactly as defined in Section 3.1.
"""

from repro.simd.scan import (
    sum_scan,
    segmented_sum_scan,
    enumerate_mask,
    rendezvous,
)
from repro.simd.reduce import reduce_array, REDUCE_OPS
from repro.simd.router import RouteResult, route_permutation, ecube_path
from repro.simd.dataparallel import ParallelVM, gp_match_on_vm
from repro.simd.topology import (
    Topology,
    CM2Topology,
    HypercubeTopology,
    MeshTopology,
)
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine, TimeLedger

__all__ = [
    "sum_scan",
    "segmented_sum_scan",
    "enumerate_mask",
    "rendezvous",
    "reduce_array",
    "REDUCE_OPS",
    "RouteResult",
    "route_permutation",
    "ecube_path",
    "ParallelVM",
    "gp_match_on_vm",
    "Topology",
    "CM2Topology",
    "HypercubeTopology",
    "MeshTopology",
    "CostModel",
    "SimdMachine",
    "TimeLedger",
]
