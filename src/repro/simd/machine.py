"""The lock-step machine's time ledger.

Every observable of the paper's analysis — ``T_calc``, ``T_idle``,
``T_lb``, running time ``T_par``, speedup and efficiency (Section 3.1) —
is an exact *count* over simulated cycles and phases, never a wall-clock
measurement of the host Python.  The ledger enforces the identity

    P * T_par == T_calc + T_idle + T_lb + T_recovery

at all times, which the test suite asserts.  ``T_recovery`` is zero on
fault-free runs; fault-injected runs charge the re-donation of dead PEs'
quarantined frontiers (and retries of dropped transfers) there, so the
price of surviving a fault is a separate, inspectable ledger line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.runtime import require
from repro.simd.cost import CostModel
from repro.util.validation import check_positive_int

__all__ = ["TimeLedger", "SimdMachine"]


@dataclass
class TimeLedger:
    """Accumulated simulated time, split per Section 3.1.

    Attributes
    ----------
    t_calc:
        Processor-seconds of useful computation (``W * U_calc`` when the
        parallel search expands the same nodes as the serial one).
    t_idle:
        Processor-seconds spent idling during node-expansion cycles.
    t_lb:
        Processor-seconds spent in load-balancing phases (all P processors
        are engaged during a phase, busy or not).
    t_recovery:
        Processor-seconds spent in fault-recovery phases (re-donating
        quarantined frontiers of dead PEs, retrying dropped transfers).
        Always zero on fault-free runs.
    elapsed:
        Elapsed (single-machine) seconds, ``T_par``.
    """

    t_calc: float = 0.0
    t_idle: float = 0.0
    t_lb: float = 0.0
    elapsed: float = 0.0
    t_recovery: float = 0.0

    def efficiency(self) -> float:
        """``E = T_calc / (T_calc + T_idle + T_lb + T_recovery)``."""
        denom = self.t_calc + self.t_idle + self.t_lb + self.t_recovery
        if denom == 0.0:
            return 1.0
        return self.t_calc / denom

    def speedup(self, n_pes: int) -> float:
        """``S = T_calc / T_par``."""
        if self.elapsed == 0.0:
            return float(n_pes)
        return self.t_calc / self.elapsed

    def as_dict(self) -> dict[str, float]:
        """The five ledger lines as a plain JSON-ready dict."""
        return {
            "t_calc": self.t_calc,
            "t_idle": self.t_idle,
            "t_lb": self.t_lb,
            "t_recovery": self.t_recovery,
            "t_par": self.elapsed,
        }


@dataclass
class SimdMachine:
    """A P-processor lock-step machine that charges time to a ledger.

    The search/load-balance scheduler calls :meth:`charge_expansion_cycle`
    once per lock-step node-expansion cycle and :meth:`charge_lb_phase`
    once per load-balancing phase; the machine does the bookkeeping.

    With ``sanitize=True`` the ledger identity is re-verified after every
    charge, so any future accounting path that forgets a term fails at
    the first charge rather than in an end-of-run assertion.
    """

    n_pes: int
    cost: CostModel = field(default_factory=CostModel)
    ledger: TimeLedger = field(default_factory=TimeLedger)
    n_cycles: int = 0
    n_lb_phases: int = 0
    n_transfers: int = 0
    sanitize: bool = False
    n_recovery_phases: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.n_pes, "n_pes")

    def _sanitize_check(self) -> None:
        if self.sanitize:
            require(
                self.check_time_identity(),
                "time-identity",
                "P * T_par != T_calc + T_idle + T_lb + T_recovery after a charge",
            )

    def charge_expansion_cycle(self, n_expanding: int, *, slowdown: float = 1.0) -> float:
        """Account one node-expansion cycle with ``n_expanding`` active PEs.

        Returns the cycle's elapsed time (``U_calc``, stretched by
        ``slowdown`` when a straggler PE holds the lock-step machine
        back).  Idle processors are charged idle time — the SIMD-specific
        overhead the paper's triggering schemes try to bound.  Under a
        slowdown the useful work stays ``n_expanding * U_calc`` (the same
        nodes get expanded); the stretch is pure waiting and lands in
        ``t_idle``, so ``T_calc`` of a faulty run still equals the
        fault-free ``W * U_calc``.
        """
        if not 0 <= n_expanding <= self.n_pes:
            raise ValueError(
                f"n_expanding={n_expanding} out of range [0, {self.n_pes}]"
            )
        if slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {slowdown}")
        dt = self.cost.u_calc * slowdown
        self.ledger.elapsed += dt
        self.ledger.t_calc += n_expanding * self.cost.u_calc
        self.ledger.t_idle += self.n_pes * dt - n_expanding * self.cost.u_calc
        self.n_cycles += 1
        self._sanitize_check()
        return dt

    def charge_lb_phase(
        self,
        *,
        transfer_rounds: int = 1,
        n_transfers: int = 0,
        setup_scans: int | None = None,
    ) -> float:
        """Account one load-balancing phase; returns its elapsed time.

        All ``P`` processors participate in a phase (lock-step), so the
        phase contributes ``P * t_phase`` processor-seconds to ``T_lb``
        (Section 3.1: ``T_lb = t_lb * #phases * P``).
        """
        dt = self.cost.lb_phase_time(
            self.n_pes, transfer_rounds=transfer_rounds, setup_scans=setup_scans
        )
        self.ledger.elapsed += dt
        self.ledger.t_lb += self.n_pes * dt
        self.n_lb_phases += 1
        self.n_transfers += n_transfers
        self._sanitize_check()
        return dt

    def charge_recovery_phase(
        self,
        *,
        transfer_rounds: int = 1,
        n_transfers: int = 0,
        setup_scans: int | None = None,
    ) -> float:
        """Account one fault-recovery phase; returns its elapsed time.

        Recovery runs on the same scan+permute machinery as an LB phase
        but its processor-seconds go to ``T_recovery``, keeping the cost
        of surviving faults out of the paper's ``T_lb`` observable.
        """
        dt = self.cost.recovery_phase_time(
            self.n_pes, transfer_rounds=transfer_rounds, setup_scans=setup_scans
        )
        self.ledger.elapsed += dt
        self.ledger.t_recovery += self.n_pes * dt
        self.n_recovery_phases += 1
        self.n_transfers += n_transfers
        self._sanitize_check()
        return dt

    def charge_collective(self, dt: float) -> float:
        """Account one per-cycle collective (e.g. the trigger's global
        busy-count reduction) of duration ``dt``.

        Unlike :meth:`charge_lb_phase`, this does not count as a
        load-balancing phase; the processor-seconds go to ``T_lb`` as
        communication overhead.
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        self.ledger.elapsed += dt
        self.ledger.t_lb += self.n_pes * dt
        self._sanitize_check()
        return dt

    def charge_custom_phase(self, dt: float, *, n_transfers: int = 0) -> float:
        """Account a communication phase of explicit duration ``dt``.

        Used by baselines whose communication pattern does not fit the
        scan+permute LB phase (e.g. nearest-neighbour transfers).  Charged
        to ``T_lb`` like any balancing phase.
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        self.ledger.elapsed += dt
        self.ledger.t_lb += self.n_pes * dt
        self.n_lb_phases += 1
        self.n_transfers += n_transfers
        self._sanitize_check()
        return dt

    def efficiency(self) -> float:
        """Efficiency of the run so far."""
        return self.ledger.efficiency()

    def check_time_identity(self, *, rel_tol: float = 1e-9) -> bool:
        """Verify ``P * T_par == T_calc + T_idle + T_lb + T_recovery``."""
        lhs = self.n_pes * self.ledger.elapsed
        rhs = (
            self.ledger.t_calc
            + self.ledger.t_idle
            + self.ledger.t_lb
            + self.ledger.t_recovery
        )
        scale = max(abs(lhs), abs(rhs), 1.0)
        return abs(lhs - rhs) <= rel_tol * scale
