"""Global reduction primitives of the SIMD machine.

The machine's other collective: combine one value per PE into a single
result broadcast everywhere.  Tree search uses reductions constantly —
the busy count feeding the triggers, the OR of goal flags ending a
first-solution search, the MIN of pruned ``f`` values that becomes
IDA*'s next bound, and the MAX/MIN incumbent merge of branch-and-bound.

As with scans, two implementations: the production numpy shortcut and a
faithful ``log P``-level binary-tree simulation (``method="tree"``)
that tests verify against it.  Reductions cost one
:meth:`~repro.simd.cost.CostModel.scan_time` on the machine; the
scheduler folds that into the cycle cost exactly as the paper folds
trigger evaluation into its 30 ms node-expansion cycle.
"""

from __future__ import annotations

import numpy as np

__all__ = ["reduce_array", "REDUCE_OPS"]

#: Supported operations: name -> (numpy ufunc, identity).
REDUCE_OPS: dict[str, tuple[np.ufunc, float]] = {
    "sum": (np.add, 0),
    "min": (np.minimum, np.inf),
    "max": (np.maximum, -np.inf),
    "any": (np.logical_or, False),
    "all": (np.logical_and, True),
}


def _tree_reduce(values: np.ndarray, op: np.ufunc) -> np.ndarray:
    """Binary-tree combine: ``ceil(log2 P)`` vectorized levels."""
    current = values
    while len(current) > 1:
        half = (len(current) + 1) // 2
        left = current[:half]
        right = current[half:]
        combined = left.copy()
        combined[: len(right)] = op(left[: len(right)], right)
        current = combined
    return current


def reduce_array(
    values: np.ndarray,
    op: str,
    *,
    method: str = "numpy",
):
    """Reduce one value per PE to a single broadcast result.

    Parameters
    ----------
    values:
        1-D array, one element per processor (non-empty).
    op:
        One of ``"sum"``, ``"min"``, ``"max"``, ``"any"``, ``"all"``.
    method:
        ``"numpy"`` (shortcut) or ``"tree"`` (hardware simulation).

    Returns
    -------
    The scalar reduction, as a python ``int``/``float``/``bool``.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError(f"reduce_array expects a 1-D array, got shape {values.shape}")
    if len(values) == 0:
        raise ValueError("reduce_array requires at least one element")
    if op not in REDUCE_OPS:
        raise ValueError(f"op must be one of {sorted(REDUCE_OPS)}, got {op!r}")
    ufunc, _ = REDUCE_OPS[op]

    if op in ("any", "all"):
        values = values.astype(bool)

    if method == "numpy":
        result = ufunc.reduce(values)
    elif method == "tree":
        result = _tree_reduce(values.copy(), ufunc)[0]
    else:
        raise ValueError(f"unknown reduce method {method!r}")

    if op in ("any", "all"):
        return bool(result)
    if np.issubdtype(np.asarray(result).dtype, np.integer):
        return int(result)
    return float(result)
