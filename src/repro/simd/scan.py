"""Parallel-prefix (scan) primitives of the SIMD machine.

The matching schemes of the paper are built from *sum-scans* (Blelloch
[3]): enumerating the idle processors, enumerating the busy processors, and
the *rendezvous allocation* (Hillis [12]) that pairs rank ``r`` of one set
with rank ``r`` of the other.

Two implementations of the exclusive sum-scan are provided:

``method="cumsum"``
    The production path — a numpy cumulative sum (O(P) work on the host,
    standing in for the machine's O(log P) scan hardware).
``method="blelloch"``
    A faithful up-sweep/down-sweep simulation of the tree-based scan that
    the machine would execute.  Each of the ``2 log P`` sweeps is a
    vectorized step, so this path is also fast; it exists so tests can
    confirm the hardware algorithm and the shortcut agree bit-for-bit.

Scans *cost* time on the simulated machine; the cost is charged by
:class:`repro.simd.cost.CostModel`, not here — these functions are pure.
"""

from __future__ import annotations

import numpy as np

from repro.obs.profile import span

__all__ = ["sum_scan", "segmented_sum_scan", "enumerate_mask", "rendezvous"]


def _blelloch_exclusive(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum via the Blelloch up-sweep/down-sweep algorithm."""
    n = len(values)
    if n == 0:
        return values.copy()
    size = 1 << (n - 1).bit_length()
    tree = np.zeros(size, dtype=values.dtype)
    tree[:n] = values

    # Up-sweep (reduce): at each level, combine pairs of partial sums.
    stride = 1
    while stride < size:
        right = np.arange(2 * stride - 1, size, 2 * stride)
        tree[right] += tree[right - stride]
        stride *= 2

    # Down-sweep: clear the root, then push prefix sums back down the tree.
    tree[size - 1] = 0
    stride = size // 2
    while stride >= 1:
        right = np.arange(2 * stride - 1, size, 2 * stride)
        left = right - stride
        left_vals = tree[left].copy()
        tree[left] = tree[right]
        tree[right] += left_vals
        stride //= 2

    return tree[:n]


def sum_scan(
    values: np.ndarray,
    *,
    inclusive: bool = False,
    method: str = "cumsum",
) -> np.ndarray:
    """Prefix sum of ``values`` (exclusive by default, as in Blelloch [3]).

    Parameters
    ----------
    values:
        1-D integer or float array — one element per processor.
    inclusive:
        If true, element ``i`` of the result includes ``values[i]``.
    method:
        ``"cumsum"`` (numpy shortcut) or ``"blelloch"`` (tree simulation).
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError(f"sum_scan expects a 1-D array, got shape {values.shape}")
    if values.dtype == bool:
        values = values.astype(np.int64)
    if len(values) == 0:
        return values.copy()

    with span("scan.sum_scan", cat="scan"):
        if method == "cumsum":
            inc = np.cumsum(values)
            if inclusive:
                return inc
            exc = np.empty_like(inc)
            exc[0] = 0
            exc[1:] = inc[:-1]
            return exc
        if method == "blelloch":
            exc = _blelloch_exclusive(values)
            if inclusive:
                return exc + values
            return exc
    raise ValueError(f"unknown scan method {method!r}")


def segmented_sum_scan(values: np.ndarray, segment_heads: np.ndarray) -> np.ndarray:
    """Exclusive sum-scan restarted at every ``True`` in ``segment_heads``.

    Used by the FEGS-style equalizing redistribution, which scans node
    counts within donor segments.  Element 0 is always a segment head.
    """
    values = np.asarray(values)
    heads = np.asarray(segment_heads, dtype=bool)
    if values.shape != heads.shape or values.ndim != 1:
        raise ValueError("values and segment_heads must be equal-length 1-D arrays")
    if len(values) == 0:
        return values.copy()
    heads = heads.copy()
    heads[0] = True
    exc = sum_scan(values)
    seg_id = np.cumsum(heads) - 1
    # Subtract, from each element, the running total at its segment's start.
    seg_start_exc = exc[np.flatnonzero(heads)]
    return exc - seg_start_exc[seg_id]


def enumerate_mask(mask: np.ndarray, *, method: str = "cumsum") -> np.ndarray:
    """Rank each ``True`` processor among the ``True`` set (0-based).

    Returns an int64 array where position ``i`` holds the rank of processor
    ``i`` if ``mask[i]``, and ``-1`` otherwise.  This is the enumeration
    step of both matching schemes (Figure 2 of the paper).
    """
    mask = np.asarray(mask, dtype=bool)
    ranks = sum_scan(mask.astype(np.int64), method=method)
    out = np.where(mask, ranks, -1)
    return out.astype(np.int64)


def rendezvous(
    requesters: np.ndarray,
    grantors: np.ndarray,
    *,
    grantor_order: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pair requesters with grantors by enumeration rank (Hillis [12]).

    Parameters
    ----------
    requesters:
        Boolean mask of processors asking for work (idle).
    grantors:
        Boolean mask of processors able to give work (busy).
    grantor_order:
        Optional explicit ordering of grantor indices (e.g. the rotated
        order produced by the GP global pointer).  When given, it must be a
        permutation of ``np.flatnonzero(grantors)``.

    Returns
    -------
    (donor_indices, receiver_indices):
        Equal-length arrays; pair ``r`` matches the rank-``r`` grantor to
        the rank-``r`` requester.  Length is ``min(#grantors, #requesters)``
        — when there are more idle than busy processors, the surplus idle
        processors receive nothing (Section 2.1).
    """
    requesters = np.asarray(requesters, dtype=bool)
    grantors = np.asarray(grantors, dtype=bool)
    if requesters.shape != grantors.shape:
        raise ValueError("requesters and grantors must have the same shape")
    if np.any(requesters & grantors):
        raise ValueError("a processor cannot be both requester and grantor")

    receiver_indices = np.flatnonzero(requesters)
    if grantor_order is not None:
        donor_indices = np.asarray(grantor_order, dtype=np.int64)
        expected = np.flatnonzero(grantors)
        if len(donor_indices) != len(expected) or not np.array_equal(
            np.sort(donor_indices), expected
        ):
            raise ValueError("grantor_order must be a permutation of the grantor set")
    else:
        donor_indices = np.flatnonzero(grantors)

    k = min(len(donor_indices), len(receiver_indices))
    return donor_indices[:k].copy(), receiver_indices[:k].copy()
