"""Compiled kernel tier: registry-dispatched hot loops in three backends.

``repro.kernels`` extracts the repo's hot kernels — stack and search
``expand_cycle``, the segmented sum-scans, the matcher rendezvous and
the :class:`~repro.workmodel.mega.MegaArena` grid kernels — behind one
``(name, backend)`` registry:

- ``backend="numpy"`` — the reference tier (the exact historical code);
- ``backend="fused"`` — zero-allocation pure numpy over a per-workload
  :class:`KernelWorkspace`;
- ``backend="jit"`` — numba ``@njit`` row loops when numba is
  importable, graceful fallback to ``"fused"`` when not;
- ``backend="auto"`` — the best available tier.

See ``docs/performance.md`` ("Kernel tiers") for dispatch rules,
workspace lifetime and the bit-identity gating story.
"""

from repro.kernels.dispatch import (
    BACKENDS,
    HAVE_NUMBA,
    available_backends,
    get_kernel,
    jit_note,
    register,
    registered_kernels,
    resolve_backend,
)
from repro.kernels.workspace import KernelWorkspace

__all__ = [
    "BACKENDS",
    "HAVE_NUMBA",
    "KernelWorkspace",
    "available_backends",
    "get_kernel",
    "jit_note",
    "register",
    "registered_kernels",
    "resolve_backend",
]
