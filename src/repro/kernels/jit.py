"""Numba JIT tier: compiled row loops, registered only when numba imports.

The jit tier does not invent new kernels — it compiles the *same* scalar
row loop (:func:`repro.kernels.search._expand_search_rows`) the fused
tier already runs as its sparse-frontier fast path, so the code the JIT
executes is the code the cross-tier identity suite exercises on every
interpreter, numba or not.  The stack workload's cycle is dominated by
``Generator`` draws (dirichlet/multinomial) that numba cannot replay
stream-identically, so ``stack.expand_cycle`` deliberately has no jit
registration and falls through the dispatch chain to the fused tier.

When numba is absent this module is a no-op and
:func:`repro.kernels.dispatch.jit_note` explains the fallback.
"""

from __future__ import annotations

from repro.kernels.dispatch import HAVE_NUMBA, register
from repro.kernels.search import _expand_rows_driver, _expand_search_rows
from repro.kernels.workspace import KernelWorkspace

__all__ = ["HAVE_NUMBA"]

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    import numba
    import numpy as np

    _rows_compiled = numba.njit(cache=True)(_expand_search_rows)

    def search_expand_jit(wl, ws: KernelWorkspace) -> int:  # repro: kernel
        """JIT tier: the compiled row loop for every cycle, dense or sparse."""
        pes = np.flatnonzero(wl._counts() > 0)
        if len(pes) == 0:
            return 0
        wl._cached_counts = None
        return _expand_rows_driver(wl, pes, ws, _rows_compiled)

    register("search.expand_cycle", "jit", search_expand_jit)
