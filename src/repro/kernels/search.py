"""Search-workload expand-cycle kernels (numpy / fused / sparse rows).

One lock-step cycle of the real 15-puzzle search = pop every non-empty
PE's top entry, goal-test it, generate its table-driven moves with the
incremental Manhattan delta, prune against the cost bound (recording the
next-iteration bound) and push the surviving children in reversed
generation order.  Three implementations share that contract:

- :func:`search_expand_numpy` — the reference tier: the exact
  pre-dispatch body of ``SearchWorkload._expand_cycle_arena_inner``.
- :func:`search_expand_fused` — the zero-allocation tier: every
  temporary (popped rows, masks, move tables, scatter indices) comes
  from a :class:`~repro.kernels.workspace.KernelWorkspace`; gathers use
  ``np.take(..., out=)`` into source-dtype buffers, arithmetic runs
  through ufunc ``out=``.  Below :data:`SPARSE_THRESHOLD` busy PEs it
  drops to the scalar row loop — at a nearly-idle frontier (the P=256
  full-IDA* tail) full-width numpy dispatch costs more than the work.
- :func:`_expand_search_rows` — the scalar row loop itself, written in
  numba-compatible style (plain loops, preallocated buffers, int
  sentinels).  The jit tier (:mod:`repro.kernels.jit`) compiles this
  very function with ``@njit``, so the code path the JIT runs is the
  one the sparse path already exercises under the identity suite.

All tiers are bit-identical to the list oracle across the six paper
schemes with the sanitizer on (the cross-tier identity suite gates it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.kernels.dispatch import register
from repro.kernels.stack import fused_reset_windows, segment_slots
from repro.kernels.workspace import KernelWorkspace
from repro.search.arena import BLANK_COL, G_COL, H_COL, PREV_COL

if TYPE_CHECKING:
    from repro.search.parallel import SearchWorkload

__all__ = ["search_expand_numpy", "search_expand_fused", "SPARSE_THRESHOLD"]

#: Busy-PE count at or below which the fused tier uses the scalar row
#: loop instead of full-width numpy ops (the sparse-frontier fast path:
#: at a near-idle frontier the ~40 us of fixed numpy-call overhead per
#: cycle dwarfs the work, and the row loop halves it).
SPARSE_THRESHOLD = 3

#: Busy-PE count below which the fused tier delegates mid-width cycles
#: to the reference kernel: the scratch-backed dense path makes more
#: (smaller) numpy calls than the reference, which only pays off once
#: per-element work dominates per-call overhead (measured crossover
#: ~700 busy PEs on the 15-puzzle tables).
DENSE_THRESHOLD = 512


def search_expand_numpy(wl: SearchWorkload, ws=None) -> int:  # repro: kernel
    """Reference tier: the historical arena expand-cycle, verbatim."""
    arena = wl._arena
    assert arena is not None
    pes = np.flatnonzero(wl._counts() > 0)
    n = len(pes)
    if n == 0:
        return 0
    wl._cached_counts = None
    tiles, meta = arena.pop_tops(pes)
    wl.expanded += n

    goal = (tiles == wl._goal_row).all(axis=1)
    if goal.any():
        wl.solutions += int(goal.sum())
        wl.goal_depths.extend(int(d) for d in meta[goal, G_COL])
        live = ~goal
        if not live.any():
            arena.reset_empty_windows()
            return n
        pes_l = pes[live]
        tiles_l = tiles[live]
        g_l = meta[live, G_COL]
        h_l = meta[live, H_COL]
        blank_l = meta[live, BLANK_COL]
        prev_l = meta[live, PREV_COL]
    else:
        # No goal popped this cycle (the overwhelmingly common case):
        # every row is live, so column *views* replace six fancy-index
        # copies — same values, zero copies, bit-identical downstream.
        pes_l = pes
        tiles_l = tiles
        g_l = meta[:, G_COL]
        h_l = meta[:, H_COL]
        blank_l = meta[:, BLANK_COL]
        prev_l = meta[:, PREV_COL]
    m = len(pes_l)

    # Candidate moves: columns of the move table are the problem's
    # generation order; -1 pads positions with fewer than 4 moves and
    # the move undoing the parent's is forbidden (2-cycle pruning).
    dests = wl._move_table[blank_l]  # (m, 4)
    valid = (dests >= 0) & (dests != prev_l[:, None])
    safe = np.where(valid, dests, 0)
    if m > len(wl._iota):
        wl._iota = np.arange(m, dtype=np.int64)
    rows = wl._iota[:m]
    moved = tiles_l[rows[:, None], safe]  # (m, 4) moved-tile values
    # Incremental Manhattan: tile `moved` slides from `safe` into the
    # blank, so h changes by D[moved, blank] - D[moved, safe].
    dist = wl._dist_table
    child_h = h_l[:, None] + dist[moved, blank_l[:, None]] - dist[moved, safe]
    child_f = g_l[:, None] + 1 + child_h
    keep = valid & (child_f <= wl.bound)
    pruned = valid & ~keep
    if pruned.any():
        smallest = int(child_f[pruned].min())
        if wl.next_bound is None or smallest < wl.next_bound:
            wl.next_bound = smallest

    # Push in *reversed* generation order (walk the move columns
    # right-to-left), so popping the flat tail visits children in
    # generation order — same as the list backend's level reversal.
    keep_r = keep[:, ::-1]
    lens = keep_r.sum(axis=1, dtype=np.int64)
    total = int(lens.sum())
    if total:
        ii, jj = np.nonzero(keep_r)  # row-major: per-parent reversed order
        dest_sel = dests[:, ::-1][ii, jj]
        if total > len(wl._iota):
            wl._iota = np.arange(total, dtype=np.int64)
        flat = wl._iota[:total]
        flat_tiles = tiles_l[ii]  # fancy indexing copies
        flat_tiles[flat, blank_l[ii]] = flat_tiles[flat, dest_sel]
        flat_tiles[flat, dest_sel] = 0
        flat_meta = np.empty((total, 4), dtype=np.int32)
        flat_meta[:, G_COL] = g_l[ii] + 1
        flat_meta[:, H_COL] = child_h[:, ::-1][ii, jj]
        flat_meta[:, BLANK_COL] = dest_sel
        flat_meta[:, PREV_COL] = blank_l[ii]
        arena.push_segments(pes_l, lens, flat_tiles, flat_meta)
    arena.reset_empty_windows()
    return n


def _expand_search_rows(
    tiles, meta, top, pes, move_table, dist, goal_row, bound, next_bound, goal_depths, parent
):
    """Scalar row loop: pop + goal test + moves + push, one PE at a time.

    Numba-compatible by construction (plain loops over the caller's
    index set, preallocated ``parent`` row buffer, ``-1`` sentinel for
    an unset next bound, results written into ``goal_depths``).  The
    caller has already ensured per-PE capacity for the worst case (+3
    net entries) and owns all bookkeeping.  Returns
    ``(n_goals, next_bound)``.

    Unmasked by construction: ``pes`` is the non-empty selection, so
    every write lands in an expanding PE's own window.
    """
    width = tiles.shape[2]
    nmoves = move_table.shape[1]
    n_goals = 0
    for k in range(pes.shape[0]):
        pe = pes[k]
        t = top[pe] - 1
        g = meta[pe, t, 0]
        h = meta[pe, t, 1]
        blank = meta[pe, t, 2]
        prev = meta[pe, t, 3]
        is_goal = True
        for c in range(width):
            parent[c] = tiles[pe, t, c]
            if parent[c] != goal_row[c]:
                is_goal = False
        if is_goal:
            goal_depths[n_goals] = g
            n_goals += 1
            top[pe] = t
            continue
        # Children overwrite slots starting at the popped parent's —
        # the parent row lives on in the scratch buffer.
        dst = t
        for j in range(nmoves - 1, -1, -1):
            d = move_table[blank, j]
            if d < 0 or d == prev:
                continue
            moved = parent[d]
            ch = h + dist[moved, blank] - dist[moved, d]
            cf = g + 1 + ch
            if cf > bound:
                if next_bound < 0 or cf < next_bound:
                    next_bound = cf
                continue
            for c in range(width):
                tiles[pe, dst, c] = parent[c]
            tiles[pe, dst, blank] = moved
            tiles[pe, dst, d] = 0
            meta[pe, dst, 0] = g + 1
            meta[pe, dst, 1] = ch
            meta[pe, dst, 2] = d
            meta[pe, dst, 3] = blank
            dst += 1
        top[pe] = dst
    return n_goals, next_bound


def _expand_rows_driver(
    wl: SearchWorkload, pes, ws: KernelWorkspace, rows_fn
) -> int:
    """Shared bookkeeping around a row-loop kernel (sparse and jit paths)."""
    arena = wl._arena
    n = len(pes)
    # Worst case net growth is +3 per PE (pop one, push <= 4); ensure
    # runs pre-pop, so top + 3 covers the deepest child slot.
    lens3 = ws.scratch("search.rows.lens", n)
    lens3.fill(3)
    arena._ensure_capacity(pes, lens3)
    goal_depths = ws.scratch("search.rows.goals", n)
    parent = ws.scratch("search.rows.parent", arena.state_width, dtype=np.uint8)
    nb = wl.next_bound if wl.next_bound is not None else -1
    n_goals, nb = rows_fn(
        arena.tiles,
        arena.meta,
        arena.top,
        pes,
        wl._move_table,
        wl._dist_table,
        wl._goal_row,
        wl.bound,
        nb,
        goal_depths,
        parent,
    )
    wl.expanded += n
    if n_goals:
        wl.solutions += int(n_goals)
        wl.goal_depths.extend(int(goal_depths[i]) for i in range(n_goals))
    if nb >= 0:
        wl.next_bound = int(nb)
    fused_reset_windows(arena.bottom, arena.top, ws, "search.reset")
    return n


def _search_expand_dense(wl: SearchWorkload, pes, ws: KernelWorkspace) -> int:
    """Fused full-width cycle: scratch-backed gathers, ufunc ``out=`` math."""
    arena = wl._arena
    n = len(pes)
    width = arena.state_width
    top = arena.top

    # -- pop: pointer update + two flat row gathers ------------------------
    tops = ws.scratch("search.tops", n)
    np.take(top, pes, out=tops)
    np.subtract(tops, 1, out=tops)
    top[pes] = tops
    slots = ws.scratch("search.slots", n)
    np.multiply(pes, arena.capacity, out=slots)
    np.add(slots, tops, out=slots)
    tiles = ws.scratch2d("search.tiles", n, width, dtype=np.uint8)
    np.take(arena.tiles.reshape(-1, width), slots, axis=0, out=tiles)
    meta = ws.scratch2d("search.meta", n, 4, dtype=np.int32)
    np.take(arena.meta.reshape(-1, 4), slots, axis=0, out=meta)
    wl.expanded += n

    # -- goal test ---------------------------------------------------------
    eq = ws.scratch2d("search.eq", n, width, dtype=bool)
    np.equal(tiles, wl._goal_row, out=eq)
    goal = ws.scratch("search.goal", n, dtype=bool)
    np.all(eq, axis=1, out=goal)
    if goal.any():
        # Rare branch — mirror the reference tier's allocating filter so
        # goal-cycle state stays bit-identical.
        wl.solutions += int(goal.sum())
        wl.goal_depths.extend(int(d) for d in meta[goal, G_COL])
        live = ~goal
        if not live.any():
            fused_reset_windows(arena.bottom, arena.top, ws, "search.reset")
            return n
        pes_l = pes[live]
        tiles_l = np.ascontiguousarray(tiles[live])
        meta_l = meta[live]
        g_l = meta_l[:, G_COL]
        h_l = meta_l[:, H_COL]
        blank_l = meta_l[:, BLANK_COL]
        prev_l = meta_l[:, PREV_COL]
    else:
        pes_l = pes
        tiles_l = tiles
        g_l = meta[:, G_COL]
        h_l = meta[:, H_COL]
        blank_l = meta[:, BLANK_COL]
        prev_l = meta[:, PREV_COL]
    m = len(pes_l)

    # -- moves: table gather + 2-cycle pruning mask ------------------------
    dests = ws.scratch2d("search.dests", m, 4, dtype=np.int32)
    np.take(wl._move_table, blank_l, axis=0, out=dests)
    valid = ws.scratch2d("search.valid", m, 4, dtype=bool)
    np.greater_equal(dests, 0, out=valid)
    notprev = ws.scratch2d("search.notprev", m, 4, dtype=bool)
    np.not_equal(dests, prev_l[:, None], out=notprev)
    np.logical_and(valid, notprev, out=valid)
    # dests * valid == where(valid, dests, 0): invalid slots (-1 pads and
    # the parent-undo move) zero out, exactly the reference `safe`.
    safe = ws.scratch2d("search.safe", m, 4, dtype=np.int32)
    np.multiply(dests, valid, out=safe)

    # -- incremental Manhattan: h' = h + D[moved, blank] - D[moved, dest] --
    gidx = ws.scratch2d("search.gidx", m, 4)
    np.multiply(ws.iota(m)[:, None], width, out=gidx)
    np.add(gidx, safe, out=gidx)
    moved = ws.scratch2d("search.moved", m, 4, dtype=np.uint8)
    np.take(tiles_l.reshape(-1), gidx, out=moved)
    moved64 = ws.scratch2d("search.moved64", m, 4)
    np.copyto(moved64, moved)
    dist_flat = wl._dist_table.reshape(-1)
    np.multiply(moved64, width, out=gidx)
    np.add(gidx, blank_l[:, None], out=gidx)
    gain = ws.scratch2d("search.gain", m, 4, dtype=np.int32)
    np.take(dist_flat, gidx, out=gain)
    np.multiply(moved64, width, out=gidx)
    np.add(gidx, safe, out=gidx)
    loss = ws.scratch2d("search.loss", m, 4, dtype=np.int32)
    np.take(dist_flat, gidx, out=loss)
    child_h = ws.scratch2d("search.child_h", m, 4, dtype=np.int32)
    np.add(h_l[:, None], gain, out=child_h)
    np.subtract(child_h, loss, out=child_h)
    child_f = ws.scratch2d("search.child_f", m, 4, dtype=np.int32)
    np.add(g_l[:, None], 1, out=child_f)
    np.add(child_f, child_h, out=child_f)

    # -- bound pruning + next-bound tracking -------------------------------
    keep = ws.scratch2d("search.keep", m, 4, dtype=bool)
    np.less_equal(child_f, wl.bound, out=keep)
    np.logical_and(keep, valid, out=keep)
    pruned = ws.scratch2d("search.pruned", m, 4, dtype=bool)
    np.logical_not(keep, out=pruned)
    np.logical_and(pruned, valid, out=pruned)
    if pruned.any():
        fmin = ws.scratch2d("search.fmin", m, 4, dtype=np.int32)
        fmin.fill(np.iinfo(np.int32).max)
        np.copyto(fmin, child_f, where=pruned)
        smallest = int(fmin.min())
        if wl.next_bound is None or smallest < wl.next_bound:
            wl.next_bound = smallest

    # -- pack children in reversed generation order ------------------------
    keep_r = ws.scratch2d("search.keep_r", m, 4, dtype=bool)
    np.copyto(keep_r, keep[:, ::-1])
    lens = ws.scratch("search.lens", m)
    np.sum(keep_r, axis=1, dtype=np.int64, out=lens)
    nz = np.flatnonzero(keep_r.ravel())
    total = len(nz)
    if total:
        # Flat index nz = i*4 + j in the reversed table maps back to
        # column (3 - j) of the unreversed tables.
        ii = ws.scratch("search.ii", total)
        np.floor_divide(nz, 4, out=ii)
        cidx = ws.scratch("search.cidx", total)
        np.remainder(nz, 4, out=cidx)
        np.subtract(3, cidx, out=cidx)
        base = ws.scratch("search.base", total)
        np.multiply(ii, 4, out=base)
        np.add(cidx, base, out=cidx)
        dest_sel = ws.scratch("search.dest_sel", total, dtype=np.int32)
        np.take(dests.reshape(-1), cidx, out=dest_sel)
        ch_sel = ws.scratch("search.ch_sel", total, dtype=np.int32)
        np.take(child_h.reshape(-1), cidx, out=ch_sel)
        blank_sel = ws.scratch("search.blank_sel", total, dtype=np.int32)
        np.take(blank_l, ii, out=blank_sel)
        g_sel = ws.scratch("search.g_sel", total, dtype=np.int32)
        np.take(g_l, ii, out=g_sel)

        flat_tiles = ws.scratch2d("search.flat_tiles", total, width, dtype=np.uint8)
        np.take(tiles_l, ii, axis=0, out=flat_tiles)
        ft = flat_tiles.reshape(-1)
        bidx = ws.scratch("search.bidx", total)
        np.multiply(ws.iota(total), width, out=bidx)
        didx = ws.scratch("search.didx", total)
        np.add(bidx, dest_sel, out=didx)
        np.add(bidx, blank_sel, out=bidx)
        vals = ws.scratch("search.vals", total, dtype=np.uint8)
        np.take(ft, didx, out=vals)
        ft[bidx] = vals
        ft[didx] = 0

        flat_meta = ws.scratch2d("search.flat_meta", total, 4, dtype=np.int32)
        np.add(g_sel, 1, out=flat_meta[:, G_COL])
        flat_meta[:, H_COL] = ch_sel
        flat_meta[:, BLANK_COL] = dest_sel
        flat_meta[:, PREV_COL] = blank_sel

        # -- push: segment-id scatter (capacity first — growth decisions
        # match the reference tier's push_segments ordering) --------------
        arena._ensure_capacity(pes_l, lens)
        tiles_plane = arena.tiles.reshape(-1, width)
        meta_plane = arena.meta.reshape(-1, 4)
        tops2 = ws.scratch("search.tops2", m)
        np.take(arena.top, pes_l, out=tops2)
        dest, _ = segment_slots(pes_l, tops2, lens, arena.capacity, ws, "search.push")
        tiles_plane[dest] = flat_tiles
        meta_plane[dest] = flat_meta
        np.add(tops2, lens, out=tops2)
        arena.top[pes_l] = tops2

    fused_reset_windows(arena.bottom, arena.top, ws, "search.reset")
    return n


def search_expand_fused(wl: SearchWorkload, ws: KernelWorkspace) -> int:  # repro: kernel
    """Fused tier: pick the cheapest implementation for the frontier width.

    Three bands, measured on the 15-puzzle tables: the scalar row loop
    at a near-idle frontier (<= :data:`SPARSE_THRESHOLD` busy PEs), the
    reference kernel for mid-width cycles, and the scratch-backed dense
    path once per-element work dominates numpy call overhead
    (>= :data:`DENSE_THRESHOLD`).  All three produce bit-identical
    workload state, so the bands are a pure performance decision.
    """
    pes = np.flatnonzero(wl._counts() > 0)
    n = len(pes)
    if n == 0:
        return 0
    if n <= SPARSE_THRESHOLD:
        wl._cached_counts = None
        return _expand_rows_driver(wl, pes, ws, _expand_search_rows)
    if n < DENSE_THRESHOLD:
        return search_expand_numpy(wl, ws)
    wl._cached_counts = None
    return _search_expand_dense(wl, pes, ws)


register("search.expand_cycle", "numpy", search_expand_numpy)
register("search.expand_cycle", "fused", search_expand_fused)
