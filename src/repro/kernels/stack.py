"""Stack-workload expand-cycle kernels (numpy reference + fused tiers).

One lock-step cycle of the synthetic stack workload = pop every
non-empty PE's top subtree size, draw the child partition for each
(batched stick-breaking, one fixed RNG call sequence), push the children
back and rewind exhausted windows.  Every tier presents the same
``(workload, workspace) -> expanded count`` contract the search kernels
use: the kernel selects the expanding PEs itself (``flatnonzero`` of
the non-empty mask) and owns the count-cache invalidation and expansion
bookkeeping.  The ``"numpy"`` tier below is the exact pre-dispatch code
path (arena method calls +
:func:`~repro.workmodel.arena.draw_children_batch`); the ``"fused"``
tier re-implements the same cycle writing into
:class:`~repro.kernels.workspace.KernelWorkspace` scratch:

- pop via one flat-index gather instead of two fancy-index passes;
- the sampler consumes the *identical* RNG stream (the draws themselves
  are irreducible — they are the bit-identity contract) but builds its
  ``parts`` table and CSR pack in reused buffers;
- the push computes its scatter indices with the segment-id trick
  (:func:`segment_slots`) — cumsum + takes into scratch — instead of
  three ``np.repeat`` allocations;
- the empty-window reset is two ``np.copyto(..., where=)`` stores with
  no index array.

Both tiers leave the arena in bit-identical logical state (windows,
pointers, RNG position); the cross-tier identity suite asserts it
against the list oracle across all six paper schemes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.kernels.dispatch import register
from repro.kernels.workspace import KernelWorkspace
from repro.workmodel.arena import draw_children_batch

if TYPE_CHECKING:
    from repro.workmodel.stackmodel import StackWorkload

__all__ = ["stack_expand_numpy", "stack_expand_fused", "segment_slots", "fused_reset_windows"]


def stack_expand_numpy(wl: StackWorkload, ws=None) -> int:  # repro: kernel
    """Reference tier: the historical arena expand-cycle, verbatim.

    Selects the expanding PEs itself (``flatnonzero`` of the non-empty
    mask); the arena methods it calls are themselves full-width kernels.
    """
    arena = wl._arena
    assert arena is not None
    pes = np.flatnonzero(wl._counts() > 0)
    n = len(pes)
    if n == 0:
        return 0
    wl._cached_counts = None
    wl._expanded += n
    sizes = arena.pop_tops(pes)
    lens, flat = draw_children_batch(
        wl.rng, sizes, wl.max_branching, wl.leaf_probability
    )
    arena.push_segments(pes, lens, flat)
    arena.reset_empty_windows()
    return n


def segment_slots(
    pes: np.ndarray,
    tops: np.ndarray,
    lens: np.ndarray,
    capacity: int,
    ws: KernelWorkspace,
    prefix: str,
) -> tuple[np.ndarray | None, int]:
    """Flat destination slot per CSR element for a segmented arena push.

    Element ``i`` of the returned array is ``row * capacity + slot`` for
    the ``i``-th value of the flat CSR payload — the scatter index
    :meth:`StackArena.push_segments` derives with three ``np.repeat``
    calls, computed here as cumsum + gathers into workspace scratch.
    Returns ``(None, 0)`` when every segment is empty.

    Unmasked by construction: ``pes`` is the caller's
    ``flatnonzero(active)`` selection, so every computed slot belongs to
    an expanding PE's own window.
    """
    m0 = len(lens)
    if m0 == 0:
        return None, 0
    if int(lens.min()) > 0:
        # Dense-segment fast path: every listed PE pushes, so the
        # empty-segment drop (flatnonzero + two gathers) is skipped.
        m = m0
        lens_nz = lens
        pes_nz = pes
        tops_nz = tops
    else:
        nzseg = np.flatnonzero(lens)
        m = len(nzseg)
        if m == 0:
            return None, 0
        lens_nz = ws.scratch(prefix + ".lens_nz", m)
        np.take(lens, nzseg, out=lens_nz)
        pes_nz = ws.scratch(prefix + ".pes_nz", m)
        np.take(pes, nzseg, out=pes_nz)
        tops_nz = ws.scratch(prefix + ".tops_nz", m)
        np.take(tops, nzseg, out=tops_nz)
    ends = ws.scratch(prefix + ".ends", m)
    np.cumsum(lens_nz, out=ends)
    total = int(ends[-1])
    marks = ws.scratch(prefix + ".marks", total)
    marks.fill(0)
    if m > 1:
        # Segment ends are strictly increasing, so these indices are
        # unique — plain scatter, no np.add.at needed.
        marks[ends[:-1]] = 1
    segid = ws.scratch(prefix + ".segid", total)
    np.cumsum(marks, out=segid)
    # Fold row, start slot and segment begin into one per-segment base —
    # base[s] = row*capacity + start - begin — so only a single gather
    # plus one iota add run at flat-payload length:
    # dest[i] = base[segid[i]] + i.
    base = ws.scratch(prefix + ".base", m)
    np.multiply(pes_nz, capacity, out=base)
    np.add(base, tops_nz, out=base)
    np.subtract(base, ends, out=base)
    np.add(base, lens_nz, out=base)
    dest = ws.scratch(prefix + ".dest", total)
    np.take(base, segid, out=dest)
    np.add(dest, ws.iota(total), out=dest)
    return dest, total


def fused_reset_windows(bottom: np.ndarray, top: np.ndarray, ws: KernelWorkspace, prefix: str) -> None:
    """Rewind exhausted windows to column 0 without an index array.

    Full-width over the unmasked PE axis — the two stores are
    ``where=``-guarded by the emptiness mask itself, exactly like
    ``reset_empty_windows``'s masked stores.
    """
    empty = ws.scratch(prefix + ".empty", len(top), dtype=bool)
    np.equal(top, bottom, out=empty)
    np.copyto(top, 0, where=empty)
    np.copyto(bottom, 0, where=empty)


def stack_expand_fused(wl: StackWorkload, ws: KernelWorkspace) -> int:  # repro: kernel
    """Fused tier: scratch-backed pop/sample/pack/push, identical stream.

    Selects the expanding PEs itself (``flatnonzero`` of the non-empty
    mask), so every write below lands in an expanding PE's own window.
    The RNG call sequence is byte-for-byte the one
    :func:`~repro.workmodel.arena.draw_children_batch` makes — the draws
    themselves are the irreducible ~43% of the cycle; everything around
    them reuses workspace buffers.
    """
    arena = wl._arena
    assert arena is not None
    pes = np.flatnonzero(wl._counts() > 0)
    n = len(pes)
    if n == 0:
        return 0
    wl._cached_counts = None
    wl._expanded += n
    rng = wl.rng
    max_branching = wl.max_branching
    leaf_probability = wl.leaf_probability
    data = arena.data
    top = arena.top
    # Every-PE-active cycles (the dense steady state) update the pointer
    # vectors in place — no gather/scatter through `pes` at all.
    dense = n == arena.n_pes

    # -- pop: one pointer update + one flat gather -------------------------
    if dense:
        np.subtract(top, 1, out=top)
        tops = top
    else:
        tops = ws.scratch("stack.tops", n)
        np.take(top, pes, out=tops)
        np.subtract(tops, 1, out=tops)
        top[pes] = tops
    slot = ws.scratch("stack.slot", n)
    np.multiply(pes, arena.capacity, out=slot)
    np.add(slot, tops, out=slot)
    sizes = ws.scratch("stack.sizes", n)
    np.take(data.ravel(), slot, out=sizes)

    # -- sampler: draw_children_batch's exact stream, scratch-backed -------
    rest = ws.scratch("stack.rest", n)
    np.subtract(sizes, 1, out=rest)
    parts = ws.scratch2d("stack.parts", n, max_branching)
    parts.fill(0)
    amask = ws.scratch("stack.amask", n, dtype=bool)
    np.greater(rest, 0, out=amask)
    active = np.flatnonzero(amask)
    if len(active):
        if leaf_probability:
            leaf = rng.random(len(active)) < leaf_probability
            chain = active[leaf]
            parts[chain, 0] = rest[chain]
            nonleaf = active[~leaf]
        else:
            # No leaf draw is consumed when leaf_probability == 0 — the
            # reference sampler skips the uniform batch entirely, so the
            # fused tier must too to stay stream-identical.
            nonleaf = active
        if len(nonleaf):
            # When every popped PE is a non-leaf splitter (the dense
            # steady state), `nonleaf` is all of 0..n-1 and the group
            # selections collapse to flatnonzero on a scratch mask.
            nl_all = len(nonleaf) == n
            b = rng.integers(1, max_branching + 1, size=len(nonleaf))
            if nl_all:
                np.minimum(b, rest, out=b)
            else:
                restnl = ws.scratch("stack.restnl", len(nonleaf))
                np.take(rest, nonleaf, out=restnl)
                np.minimum(b, restnl, out=b)
            gm = ws.scratch("stack.gmask", len(nonleaf), dtype=bool)
            pflat = parts.ravel()
            np.equal(b, 1, out=gm)
            single = np.flatnonzero(gm) if nl_all else nonleaf[gm]
            if len(single):
                # Flat scatters into the parts table — a 2-D fancy
                # assignment costs several times the flat equivalent.
                sidx = ws.scratch("stack.sidx", len(single))
                np.multiply(single, max_branching, out=sidx)
                sval = ws.scratch("stack.sval", len(single))
                np.take(rest, single, out=sval)
                pflat[sidx] = sval
            for bv in range(2, max_branching + 1):
                np.equal(b, bv, out=gm)
                idx = np.flatnonzero(gm) if nl_all else nonleaf[gm]
                if len(idx) == 0:
                    continue
                weights = rng.dirichlet(np.ones(bv), size=len(idx))
                drawn = rng.multinomial(rest[idx], weights)
                fidx = ws.scratch2d(f"stack.fidx{bv}", len(idx), bv)
                np.multiply(idx, max_branching, out=fidx[:, 0])
                for col in range(1, bv):
                    np.add(fidx[:, 0], col, out=fidx[:, col])
                pflat[fidx.ravel()] = drawn.ravel()

    # -- pack: CSR lens + flat values without boolean fancy indexing -------
    live = ws.scratch2d("stack.live", n, max_branching, dtype=bool)
    np.greater(parts, 0, out=live)
    lens = ws.scratch("stack.lens", n)
    # Column adds beat an axis-1 reduction at width <= a handful.
    np.copyto(lens, live[:, 0])
    for col in range(1, max_branching):
        np.add(lens, live[:, col], out=lens)
    nz = np.flatnonzero(live.ravel())
    total = len(nz)
    if total:
        flat = ws.scratch("stack.flat", total)
        np.take(parts.ravel(), nz, out=flat)

        # -- push: segment-id scatter; `tops` is already the post-pop
        # pointer vector, so the no-growth fast path (the steady state)
        # reuses it without another gather ---------------------------------
        grow = ws.scratch("stack.grow", n)
        np.add(tops, lens, out=grow)
        if int(grow.max()) > arena.capacity:
            # Same growth decision push_segments makes; compaction may
            # move windows, so re-read the pointers afterwards.
            arena._ensure_capacity(pes, lens)
            data = arena.data
            if dense:
                tops = top = arena.top
            else:
                np.take(arena.top, pes, out=tops)
        dest, _ = segment_slots(pes, tops, lens, arena.capacity, ws, "stack.push")
        data.ravel()[dest] = flat
        if dense:
            np.add(top, lens, out=top)
        else:
            np.add(tops, lens, out=tops)
            top[pes] = tops

    fused_reset_windows(arena.bottom, arena.top, ws, "stack.reset")
    return n


register("stack.expand_cycle", "numpy", stack_expand_numpy)
register("stack.expand_cycle", "fused", stack_expand_fused)
