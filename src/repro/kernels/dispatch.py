"""Backend registry and dispatch for the compiled kernel tier.

Every hot kernel in the repo — stack/search ``expand_cycle``, the mega
grid kernels, the sum-scans and the matcher rendezvous — is registered
here under a ``(name, backend)`` key:

- ``"numpy"`` — the reference tier: the exact code the workloads ran
  before this layer existed, one allocation-happy numpy call per step.
  Always present; every other tier is gated bit-identical to it (and
  through it to the list oracle).
- ``"fused"`` — the zero-allocation pure-numpy tier: ``out=``-based
  scans and wheres over a :class:`~repro.kernels.workspace.KernelWorkspace`
  of preallocated scratch, fused mask+count+scan passes, pooled arena
  growth, and a sparse-frontier scalar fast path for nearly-idle cycles.
- ``"jit"`` — numba ``@njit`` compiled row loops, registered only when
  numba imports (``HAVE_NUMBA``).  Tiers a kernel does not implement
  fall through the chain ``jit -> fused -> numpy``, so asking for
  ``"jit"`` always resolves to *something* runnable.

``backend="auto"`` resolves to the best available tier (``jit`` with
numba installed, else ``fused``); asking for ``"jit"`` without numba
falls back to ``"fused"`` gracefully, and :func:`jit_note` returns the
one-line explanation ``repro bench`` prints in that case.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable

from repro.errors import ConfigError

__all__ = [
    "BACKENDS",
    "HAVE_NUMBA",
    "available_backends",
    "resolve_backend",
    "register",
    "get_kernel",
    "registered_kernels",
    "jit_note",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - ImportError on the lean image
    HAVE_NUMBA = False

#: Dispatchable tiers, slowest to fastest.
BACKENDS: tuple[str, ...] = ("numpy", "fused", "jit")

#: Lookup order per requested tier — a kernel missing from a tier falls
#: through to the next one down.
_FALLBACK: dict[str, tuple[str, ...]] = {
    "numpy": ("numpy",),
    "fused": ("fused", "numpy"),
    "jit": ("jit", "fused", "numpy"),
}

#: Implementation modules; imported lazily on first lookup so importing
#: ``repro.kernels.dispatch`` alone stays cheap and cycle-free.
_IMPL_MODULES = (
    "repro.kernels.scans",
    "repro.kernels.stack",
    "repro.kernels.search",
    "repro.kernels.mega",
    "repro.kernels.matching",
    "repro.kernels.jit",
)

_REGISTRY: dict[tuple[str, str], Callable] = {}
_LOADED = False


def available_backends() -> tuple[str, ...]:
    """The tiers that can actually run on this interpreter."""
    return BACKENDS if HAVE_NUMBA else BACKENDS[:2]


def resolve_backend(backend: str) -> str:
    """Normalize a requested backend to a runnable tier.

    ``"auto"`` picks the best available; ``"jit"`` without numba degrades
    to ``"fused"`` (the documented graceful fallback).  Unknown names
    raise :class:`~repro.errors.ConfigError`.
    """
    if backend == "auto":
        return "jit" if HAVE_NUMBA else "fused"
    if backend not in BACKENDS:
        raise ConfigError(
            f"kernel backend must be one of {('auto',) + BACKENDS}, got {backend!r}"
        )
    if backend == "jit" and not HAVE_NUMBA:
        return "fused"
    return backend


def register(name: str, backend: str, fn: Callable) -> Callable:
    """Register ``fn`` as kernel ``name``'s ``backend`` tier (idempotent)."""
    if backend not in BACKENDS:
        raise ConfigError(f"cannot register unknown backend {backend!r}")
    _REGISTRY[(name, backend)] = fn
    return fn


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    for mod in _IMPL_MODULES:
        import_module(mod)


def get_kernel(name: str, backend: str = "auto") -> Callable:
    """The best registered implementation of ``name`` at ``backend``.

    Walks the fallback chain (``jit -> fused -> numpy``) so partially
    implemented kernels still dispatch; raises ``KeyError`` only when no
    tier of ``name`` exists at all.
    """
    tier = resolve_backend(backend)
    _ensure_loaded()
    for candidate in _FALLBACK[tier]:
        fn = _REGISTRY.get((name, candidate))
        if fn is not None:
            return fn
    known = sorted({n for n, _ in _REGISTRY})
    raise KeyError(f"no kernel registered under {name!r} (known: {known})")


def registered_kernels() -> dict[str, tuple[str, ...]]:
    """Kernel name -> tuple of tiers implementing it (for docs/tests)."""
    _ensure_loaded()
    out: dict[str, list[str]] = {}
    for kname, backend in sorted(_REGISTRY):
        out.setdefault(kname, []).append(backend)
    return {k: tuple(v) for k, v in out.items()}


def jit_note() -> str | None:
    """One-line bench/CLI note when the jit tier is unavailable."""
    if HAVE_NUMBA:
        return None
    return (
        "numba is not installed: backend='jit' falls back to the fused "
        "numpy tier (pip install numba to enable the compiled tier)"
    )
