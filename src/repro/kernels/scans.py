"""Sum-scan kernels: the numpy reference tier and the fused ``out=`` tier.

The matching schemes are built from exclusive sum-scans
(:mod:`repro.simd.scan`); the fused tier here re-implements them writing
into workspace scratch so a steady-state LB phase allocates nothing for
its enumeration passes.  The ``scan.sum_scan`` obs span is preserved on
every tier — observation purity tests cover both.

Returned arrays from the fused tier are workspace views, valid until the
next request for the same scratch name; callers that retain a result
(:class:`~repro.core.matching.MatchResult` does) copy it out.
"""

from __future__ import annotations

import numpy as np

# repro-lint: disable-file=R004 -- these kernels are the dispatch targets
# behind repro.simd.scan's own cost-accounted call sites; the reference
# tiers delegate to the scan primitives verbatim and the callers charge
# the machine exactly as before, so cost accounting is not bypassed.
from repro.kernels.dispatch import register
from repro.kernels.workspace import KernelWorkspace
from repro.obs.profile import span
from repro.simd.scan import enumerate_mask, sum_scan

__all__ = ["sum_scan_numpy", "sum_scan_fused", "enumerate_mask_numpy", "enumerate_mask_fused"]


def sum_scan_numpy(values: np.ndarray, *, inclusive: bool = False, ws=None) -> np.ndarray:  # repro: kernel
    """Reference tier — delegates to :func:`repro.simd.scan.sum_scan`.

    Full-width scan over the unmasked PE axis; allocates its result.
    """
    return sum_scan(values, inclusive=inclusive)


def sum_scan_fused(
    values: np.ndarray, *, inclusive: bool = False, ws: KernelWorkspace
) -> np.ndarray:  # repro: kernel
    """Fused tier — cumsum into workspace scratch, no temporaries.

    Full-width scan over the unmasked PE axis.  Returns a workspace view
    (``"scan.inc"`` / ``"scan.exc"``) valid until the next same-named
    request.
    """
    n = len(values)
    with span("scan.sum_scan", cat="scan"):
        inc = ws.scratch("scan.inc", n)
        np.cumsum(values, out=inc)
        if inclusive:
            return inc
        exc = ws.scratch("scan.exc", n)
        if n:
            exc[0] = 0
            exc[1:] = inc[:-1]
        return exc


def enumerate_mask_numpy(mask: np.ndarray, *, ws=None) -> np.ndarray:  # repro: kernel
    """Reference tier — delegates to :func:`repro.simd.scan.enumerate_mask`.

    Full-width rank assignment over the unmasked PE axis.
    """
    return enumerate_mask(mask)


def enumerate_mask_fused(mask: np.ndarray, *, ws: KernelWorkspace) -> np.ndarray:  # repro: kernel
    """Fused tier: rank the ``True`` PEs, scratch-backed scan.

    Full-width rank assignment over the unmasked PE axis.  The returned
    rank array is freshly allocated (callers retain it in MatchResult);
    only the intermediate scan uses scratch.
    """
    ranks = sum_scan_fused(mask, ws=ws)
    out = np.where(mask, ranks, -1)
    return out


register("scan.sum_scan", "numpy", sum_scan_numpy)
register("scan.sum_scan", "fused", sum_scan_fused)
register("scan.enumerate_mask", "numpy", enumerate_mask_numpy)
register("scan.enumerate_mask", "fused", enumerate_mask_fused)
