"""Preallocated scratch storage for the fused kernel tier.

The ``"fused"`` backend's contract is that steady-state lock-step cycles
allocate (almost) nothing: every temporary a kernel needs — popped-top
buffers, mask planes, prefix sums, flat scatter indices — comes from one
per-workload :class:`KernelWorkspace` and is reused cycle after cycle.
Three kinds of storage live here:

- **named scratch** (:meth:`scratch` / :meth:`scratch2d`): a buffer per
  logical role (``"stack.tops"``, ``"search.keep"``, ...), grown
  geometrically and returned as a leading-slice view.  Reused buffers
  come back *dirty*; the kernels overwrite every element they read (the
  hypothesis fuzz suite locks the no-stale-leakage property in).
- **the iota** (:meth:`iota`): one cached, read-only ``arange`` shared
  by every kernel that needs ``0..n`` row/flat indexing — the arena
  growth path and the push scatters re-slice it instead of re-running
  ``np.arange`` per cycle.
- **the buffer pool** (:meth:`lease` / :meth:`release`): whole-array
  storage for arena growth.  A leased buffer is zero-filled before it is
  handed out, so pooled growth is bit-identical to the historical
  ``np.zeros`` reallocation; the buffer the arena abandons goes back
  into the pool keyed by ``(shape, dtype)``.

Lifetime: a workspace belongs to one workload (or one driver such as
:class:`~repro.search.parallel.ParallelIDAStar`, which shares a single
workspace across all IDA* iterations so scratch survives workload
rebuilds).  Views returned by :meth:`scratch`/:meth:`scratch2d` are
valid until the next request for the *same name*; kernels that need two
live buffers use two names.  ``hits``/``misses`` count buffer reuse vs.
fresh allocation, which the workspace tests assert trends to all-hits in
steady state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KernelWorkspace"]


def _grow_to(n: int) -> int:
    """Smallest power of two >= max(n, 16) — geometric growth floor."""
    return max(16, 1 << (max(n, 1) - 1).bit_length())


class KernelWorkspace:
    """Scratch buffers, a shared iota and a grow-buffer pool (see module)."""

    __slots__ = ("_named", "_iota", "_pool", "hits", "misses")

    def __init__(self) -> None:
        self._named: dict[str, np.ndarray] = {}
        self._iota = np.arange(16, dtype=np.int64)
        self._iota.setflags(write=False)
        self._pool: dict[tuple[tuple[int, ...], str], list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    # -- named scratch ------------------------------------------------------

    def scratch(self, name: str, n: int, dtype=np.int64) -> np.ndarray:
        """A 1-D buffer of ``n`` elements under ``name`` (dirty on reuse)."""
        want = np.dtype(dtype)
        buf = self._named.get(name)
        if buf is None or buf.ndim != 1 or buf.dtype != want or buf.shape[0] < n:
            buf = np.empty(_grow_to(n), dtype=want)
            self._named[name] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf[:n]

    def scratch2d(self, name: str, rows: int, cols: int, dtype=np.int64) -> np.ndarray:
        """A ``(rows, cols)`` buffer under ``name`` (dirty on reuse).

        The row capacity grows geometrically; a change of ``cols`` or
        dtype reallocates (column widths are fixed per logical role).
        """
        want = np.dtype(dtype)
        buf = self._named.get(name)
        if (
            buf is None
            or buf.ndim != 2
            or buf.dtype != want
            or buf.shape[1] != cols
            or buf.shape[0] < rows
        ):
            buf = np.empty((_grow_to(rows), cols), dtype=want)
            self._named[name] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf[:rows]

    # -- shared iota ---------------------------------------------------------

    def iota(self, n: int) -> np.ndarray:
        """Read-only ``arange(n)`` view backed by one cached array."""
        if n > len(self._iota):
            fresh = np.arange(_grow_to(n), dtype=np.int64)
            fresh.setflags(write=False)
            self._iota = fresh
        return self._iota[:n]

    # -- grow-buffer pool ----------------------------------------------------

    def lease(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A zero-filled array of ``shape``/``dtype``, pooled when possible.

        Zero-on-lease keeps pooled arena growth bit-identical to a fresh
        ``np.zeros`` allocation.
        """
        want = np.dtype(dtype)
        key = (tuple(int(s) for s in shape), want.str)
        bucket = self._pool.get(key)
        if bucket:
            self.hits += 1
            buf = bucket.pop()
            buf.fill(0)
            return buf
        self.misses += 1
        return np.zeros(shape, dtype=want)

    def release(self, buf: np.ndarray) -> None:
        """Return a previously-leased (or abandoned) array to the pool."""
        key = (tuple(int(s) for s in buf.shape), buf.dtype.str)
        self._pool.setdefault(key, []).append(buf)

    # -- lifecycle -----------------------------------------------------------

    def release_storage(self) -> None:
        """Drop every buffer (scratch, pool, iota) back to the allocator."""
        self._named.clear()
        self._pool.clear()
        fresh = np.arange(16, dtype=np.int64)
        fresh.setflags(write=False)
        self._iota = fresh

    def stats(self) -> dict[str, int]:
        """Reuse counters and live-buffer census (for tests and bench)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "named": len(self._named),
            "pooled": sum(len(b) for b in self._pool.values()),
        }
