"""Matcher rendezvous kernels (numpy reference + fused tiers).

Both matching schemes pair the rank-``r`` grantor with the rank-``r``
requester (Hillis rendezvous).  The ``"numpy"`` tier delegates to
:func:`repro.simd.scan.rendezvous`; the ``"fused"`` tier performs the
same validation and pairing with its intermediates (the overlap mask,
the permutation check) in workspace scratch.  The returned donor and
receiver index arrays are freshly allocated on every tier — callers
retain them in :class:`~repro.core.matching.MatchResult`.
"""

from __future__ import annotations

import numpy as np

# repro-lint: disable-file=R004 -- these kernels are the dispatch targets
# the matchers call; every scan they perform is priced into the ledger by
# the scheduler through Matcher.setup_scans, exactly like the matchers'
# own direct calls, so cost accounting is not bypassed.
from repro.kernels.dispatch import register
from repro.kernels.workspace import KernelWorkspace
from repro.simd.scan import rendezvous

__all__ = ["rendezvous_numpy", "rendezvous_fused"]


def rendezvous_numpy(
    requesters, grantors, *, grantor_order=None, ws=None
) -> tuple[np.ndarray, np.ndarray]:  # repro: kernel
    """Reference tier — delegates to :func:`repro.simd.scan.rendezvous`.

    Full-width enumeration over the unmasked PE axis.
    """
    return rendezvous(requesters, grantors, grantor_order=grantor_order)


def rendezvous_fused(
    requesters, grantors, *, grantor_order=None, ws: KernelWorkspace
) -> tuple[np.ndarray, np.ndarray]:  # repro: kernel
    """Fused tier: same pairing, scratch-backed validation.

    Full-width enumeration over the unmasked PE axis.  Results are fresh
    arrays (retained by MatchResult); only validation intermediates come
    from the workspace.
    """
    requesters = np.asarray(requesters, dtype=bool)
    grantors = np.asarray(grantors, dtype=bool)
    if requesters.shape != grantors.shape:
        raise ValueError("requesters and grantors must have the same shape")
    both = ws.scratch("rv.both", len(requesters), dtype=bool)
    np.logical_and(requesters, grantors, out=both)
    if both.any():
        raise ValueError("a processor cannot be both requester and grantor")

    receiver_indices = np.flatnonzero(requesters)
    if grantor_order is not None:
        donor_indices = np.asarray(grantor_order, dtype=np.int64)
        expected = np.flatnonzero(grantors)
        check = ws.scratch("rv.check", len(donor_indices))
        check[:] = donor_indices
        check.sort()
        if len(donor_indices) != len(expected) or not np.array_equal(check, expected):
            raise ValueError("grantor_order must be a permutation of the grantor set")
    else:
        donor_indices = np.flatnonzero(grantors)

    k = min(len(donor_indices), len(receiver_indices))
    return donor_indices[:k].copy(), receiver_indices[:k].copy()


register("match.rendezvous", "numpy", rendezvous_numpy)
register("match.rendezvous", "fused", rendezvous_fused)
