"""MegaArena grid kernels (numpy reference + fused tiers).

The batched grid executor advances every cell with one full-width
``expand_all`` plus segmented busy/non-idle reductions per cycle.  The
``"numpy"`` tier below is the exact pre-dispatch arena method body; the
``"fused"`` tier routes the boolean mask, its int64 widening and the
per-cell reduction through workspace scratch so a steady-state mega
cycle allocates nothing.

Fused results are *borrowed* workspace views (valid until the next call
of the same kernel on the same workspace); the executor consumes every
count vector within the cycle that produced it, which the batched-vs-
serial identity suite locks in.  Each kernel uses its own scratch names
so expand counts, busy counts and non-idle counts can coexist within one
cycle.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.dispatch import register
from repro.kernels.workspace import KernelWorkspace

__all__ = [
    "mega_expand_numpy",
    "mega_expand_fused",
    "mega_busy_numpy",
    "mega_busy_fused",
    "mega_nonzero_numpy",
    "mega_nonzero_fused",
    "mega_remaining_numpy",
    "mega_remaining_fused",
]


def mega_expand_numpy(work, starts, expanded, ws=None) -> np.ndarray:  # repro: kernel
    """Reference tier: one unmasked full-width expansion cycle, all cells."""
    active = work > 0
    counts = np.add.reduceat(active.astype(np.int64), starts)
    np.subtract(work, 1, out=work, where=active)
    expanded += counts
    return counts


def mega_expand_fused(work, starts, expanded, ws: KernelWorkspace) -> np.ndarray:  # repro: kernel
    """Fused tier: scratch-backed mask + widen + reduceat, same stores.

    Full-width and unmasked across cells; the returned per-cell counts
    are a borrowed workspace view.
    """
    active = ws.scratch("mega.active", len(work), dtype=bool)
    np.greater(work, 0, out=active)
    ibuf = ws.scratch("mega.ibuf", len(work))
    np.copyto(ibuf, active)
    counts = ws.scratch("mega.counts", len(starts))
    np.add.reduceat(ibuf, starts, out=counts)
    np.subtract(work, 1, out=work, where=active)
    np.add(expanded, counts, out=expanded)
    return counts


def mega_busy_numpy(work, starts, ws=None) -> np.ndarray:  # repro: kernel
    """Reference tier: per-cell busy (``work >= 2``) PE counts."""
    return np.add.reduceat((work > 1).astype(np.int64), starts)


def mega_busy_fused(work, starts, ws: KernelWorkspace) -> np.ndarray:  # repro: kernel
    """Fused tier: per-cell busy counts into scratch (borrowed view).

    Full-width read-only reduction over the unmasked flat axis.
    """
    mask = ws.scratch("mega.busy_mask", len(work), dtype=bool)
    np.greater(work, 1, out=mask)
    ibuf = ws.scratch("mega.busy_ibuf", len(work))
    np.copyto(ibuf, mask)
    counts = ws.scratch("mega.busy", len(starts))
    np.add.reduceat(ibuf, starts, out=counts)
    return counts


def mega_nonzero_numpy(work, starts, ws=None) -> np.ndarray:  # repro: kernel
    """Reference tier: per-cell non-idle (``work >= 1``) PE counts."""
    return np.add.reduceat((work > 0).astype(np.int64), starts)


def mega_nonzero_fused(work, starts, ws: KernelWorkspace) -> np.ndarray:  # repro: kernel
    """Fused tier: per-cell non-idle counts into scratch (borrowed view).

    Full-width read-only reduction over the unmasked flat axis.
    """
    mask = ws.scratch("mega.nz_mask", len(work), dtype=bool)
    np.greater(work, 0, out=mask)
    ibuf = ws.scratch("mega.nz_ibuf", len(work))
    np.copyto(ibuf, mask)
    counts = ws.scratch("mega.nonzero", len(starts))
    np.add.reduceat(ibuf, starts, out=counts)
    return counts


def mega_remaining_numpy(work, starts, ws=None) -> np.ndarray:  # repro: kernel
    """Reference tier: per-cell unexpanded node totals."""
    return np.add.reduceat(work, starts)


def mega_remaining_fused(work, starts, ws: KernelWorkspace) -> np.ndarray:  # repro: kernel
    """Fused tier: per-cell totals into scratch (borrowed view).

    Full-width read-only reduction over the unmasked flat axis.
    """
    counts = ws.scratch("mega.remaining", len(starts))
    np.add.reduceat(work, starts, out=counts)
    return counts


register("mega.expand_all", "numpy", mega_expand_numpy)
register("mega.expand_all", "fused", mega_expand_fused)
register("mega.busy_counts", "numpy", mega_busy_numpy)
register("mega.busy_counts", "fused", mega_busy_fused)
register("mega.nonzero_counts", "numpy", mega_nonzero_numpy)
register("mega.nonzero_counts", "fused", mega_nonzero_fused)
register("mega.remaining", "numpy", mega_remaining_numpy)
register("mega.remaining", "fused", mega_remaining_fused)
