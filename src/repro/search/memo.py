"""Bounded per-problem heuristic memoization — **deprecated**.

IDA* revisits states constantly, so caching ``h(state)`` looked like an
easy win for the list backend.  The bench said otherwise:
``BENCH_search.json`` times the memoized list backend at ~97.6k nodes/s
against ~165k nodes/s for the *plain* list backend — hashing a whole
puzzle state per lookup costs more than recomputing the incremental
Manhattan heuristic it was caching.  The arena backend never needed it:
its delta tables make ``h`` O(1) per child with no per-state
bookkeeping at all.

:class:`HeuristicMemo` is therefore retired: constructing one emits a
:class:`DeprecationWarning`, ``ParallelIDAStar`` defaults it off, and
the ``list-memo`` bench variant is gone.  The class stays importable so
old result scripts keep running, and because lint rule **R102** uses it
as the canonical per-state-memoization anti-pattern (it flags any
``HeuristicMemo(...)`` constructed in kernel-marked code).

Memoizing a *pure* function changes no search decision, so a memoized
run stays expansion-count- and solution-identical to an unmemoized one
(still asserted by the tests).  Eviction is FIFO (insertion order):
deterministic, O(1), and good enough for DFS locality.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Hashable

__all__ = ["HeuristicMemo"]


class HeuristicMemo:
    """A bounded memo over an ``h(state)`` function.

    Parameters
    ----------
    heuristic:
        The pure function to cache (e.g. ``problem.heuristic``).
    max_entries:
        Capacity bound; the oldest *half* of the insertions is evicted in
        one rebuild when a new state would exceed it.  Per-entry
        ``del d[next(iter(d))]`` eviction would leave tombstones at the
        front of the dict and degrade to quadratic scans; the halving
        rebuild keeps eviction amortized O(1).  Must be positive.
    """

    __slots__ = ("_heuristic", "_max_entries", "_cache", "hits", "misses")

    def __init__(
        self, heuristic: Callable[[Hashable], int], *, max_entries: int = 1 << 16
    ) -> None:
        warnings.warn(
            "HeuristicMemo is deprecated: BENCH_search.json shows the "
            "memoized list backend is slower than the plain one (whole-"
            "state hashing costs more than recomputing h); prefer the "
            "arena backend's incremental delta tables",
            DeprecationWarning,
            stacklevel=2,
        )
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._heuristic = heuristic
        self._max_entries = max_entries
        self._cache: dict[Hashable, int] = {}
        self.hits = 0
        self.misses = 0

    def __call__(self, state: Hashable) -> int:
        cache = self._cache
        value = cache.get(state)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        value = self._heuristic(state)
        if len(cache) >= self._max_entries:
            items = list(cache.items())
            self._cache = cache = dict(items[len(items) // 2 :])
        cache[state] = value
        return value

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
