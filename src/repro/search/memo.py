"""Bounded per-problem heuristic memoization (the list backend's cache).

IDA* revisits states constantly — every iteration re-expands the whole
tree of the previous bound, and the 15-puzzle's transposition structure
revisits states within one iteration too.  The list backend recomputed
``h`` from scratch each time.  :class:`HeuristicMemo` wraps a problem's
heuristic in a bounded hashable-state -> value dict so revisits become
one lookup, with hit/miss counters the bench harness surfaces next to
its timing numbers.

Memoizing a *pure* function changes no search decision, so a memoized
run stays expansion-count- and solution-identical to an unmemoized one
(asserted by the tests).  Eviction is FIFO (insertion order) rather
than LRU: deterministic, O(1), and good enough for DFS locality.

The arena backend needs none of this — its delta table makes ``h``
O(1) per child with no per-state bookkeeping at all.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

__all__ = ["HeuristicMemo"]


class HeuristicMemo:
    """A bounded memo over an ``h(state)`` function.

    Parameters
    ----------
    heuristic:
        The pure function to cache (e.g. ``problem.heuristic``).
    max_entries:
        Capacity bound; the oldest *half* of the insertions is evicted in
        one rebuild when a new state would exceed it.  Per-entry
        ``del d[next(iter(d))]`` eviction would leave tombstones at the
        front of the dict and degrade to quadratic scans; the halving
        rebuild keeps eviction amortized O(1).  Must be positive.
    """

    __slots__ = ("_heuristic", "_max_entries", "_cache", "hits", "misses")

    def __init__(
        self, heuristic: Callable[[Hashable], int], *, max_entries: int = 1 << 16
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._heuristic = heuristic
        self._max_entries = max_entries
        self._cache: dict[Hashable, int] = {}
        self.hits = 0
        self.misses = 0

    def __call__(self, state: Hashable) -> int:
        cache = self._cache
        value = cache.get(state)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        value = self._heuristic(state)
        if len(cache) >= self._max_entries:
            items = list(cache.items())
            self._cache = cache = dict(items[len(items) // 2 :])
        cache[state] = value
        return value

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
