"""Depth-First Branch and Bound, serial and SIMD-parallel.

The paper's Section 2 lists DFBB (Kumar [16]) among the depth-first
methods its load balancing serves; this module supplies that driver for
the combinatorial-optimization and operations-research workloads the
introduction motivates (Horowitz/Sahni [13], Papadimitriou/Steiglitz
[27]).

Lock-step semantics of the parallel engine: each cycle, every non-empty
PE expands one node, pruning against the **global incumbent of the
previous cycle** — incumbents found during a cycle are combined by a
(costed-as-free, like trigger evaluation) reduction at the cycle
boundary and take effect on the next cycle, exactly what a CM-2 global
min/max delivers.  Because pruning power depends on when incumbents are
found, parallel DFBB *does* exhibit node-count anomalies (unlike the
all-solutions IDA* setup); the tests therefore assert optimality of the
returned value, not node-count equality.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, make_scheme
from repro.core.metrics import RunMetrics
from repro.core.scheduler import Scheduler
from repro.search.stack import DFSStack, StackEntry
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine

__all__ = [
    "BnBProblem",
    "SerialBnBResult",
    "serial_dfbb",
    "BnBWorkload",
    "ParallelDFBB",
    "ParallelBnBResult",
]


class BnBProblem(ABC):
    """A branch-and-bound problem over a finite decision tree.

    ``sense`` is ``"max"`` or ``"min"``.  ``objective`` returns the
    value of a *complete* solution and ``None`` for internal nodes;
    ``bound`` returns an optimistic (admissible) estimate of the best
    completion reachable from a state — a value that is never worse
    than any descendant's objective.
    """

    sense: str = "max"

    @abstractmethod
    def initial_state(self) -> Hashable:
        """Root of the decision tree."""

    @abstractmethod
    def expand(self, state: Hashable) -> Sequence[Hashable]:
        """Children of an internal node (deterministic order)."""

    @abstractmethod
    def objective(self, state: Hashable) -> float | None:
        """Value of a complete solution, ``None`` if ``state`` is internal."""

    @abstractmethod
    def bound(self, state: Hashable) -> float:
        """Optimistic bound on the best completion of ``state``."""

    # -- comparison helpers (direction-agnostic code reads better) -------

    def is_better(self, a: float, b: float) -> bool:
        """True if objective ``a`` improves on ``b``."""
        return a > b if self.sense == "max" else a < b

    def worst_value(self) -> float:
        """The identity element for the incumbent."""
        return float("-inf") if self.sense == "max" else float("inf")

    def prunable(self, state: Hashable, incumbent: float) -> bool:
        """True if no completion of ``state`` can beat ``incumbent``.

        Ties prune: an equal-valued solution adds nothing.
        """
        b = self.bound(state)
        return not self.is_better(b, incumbent)


@dataclass(frozen=True)
class SerialBnBResult:
    """Outcome of a serial DFBB run."""

    best_value: float | None
    expanded: int
    incumbent_updates: int


def serial_dfbb(
    problem: BnBProblem,
    *,
    max_expansions: int | None = None,
) -> SerialBnBResult:
    """Serial depth-first branch and bound with eager pruning.

    Children are pruned against the incumbent at *generation* time, and
    re-checked at expansion (the incumbent may have improved while they
    sat on the stack) — the standard DFBB discipline.
    """
    incumbent = problem.worst_value()
    updates = 0
    expanded = 0
    stack = [problem.initial_state()]
    while stack:
        state = stack.pop()
        # Late pruning: incumbent may have improved since this node was
        # pushed.
        if incumbent != problem.worst_value() and problem.prunable(state, incumbent):
            continue
        expanded += 1
        if max_expansions is not None and expanded > max_expansions:
            raise RuntimeError(f"serial_dfbb exceeded max_expansions={max_expansions}")
        value = problem.objective(state)
        if value is not None:
            if problem.is_better(value, incumbent):
                incumbent = value
                updates += 1
            continue
        for child in reversed(problem.expand(state)):
            if incumbent == problem.worst_value() or not problem.prunable(
                child, incumbent
            ):
                stack.append(child)
    best = None if updates == 0 else incumbent
    return SerialBnBResult(best_value=best, expanded=expanded, incumbent_updates=updates)


class BnBWorkload:
    """Lock-step DFBB over per-PE stacks (Workload protocol).

    The incumbent visible to all PEs during cycle ``t`` is the global
    best at the end of cycle ``t-1``: improvements found within a cycle
    are merged at the cycle boundary (the SIMD global-reduce step).
    ``broadcast_every`` delays that merge to every k-th boundary — the
    ablation knob for incumbent-sharing frequency.
    """

    def __init__(
        self,
        problem: BnBProblem,
        n_pes: int,
        *,
        broadcast_every: int = 1,
    ) -> None:
        if broadcast_every < 1:
            raise ValueError(f"broadcast_every must be >= 1, got {broadcast_every}")
        self.problem = problem
        self.n_pes = int(n_pes)
        self.broadcast_every = broadcast_every

        self.stacks = [DFSStack() for _ in range(self.n_pes)]
        self.stacks[0] = DFSStack([StackEntry(problem.initial_state(), 0)])
        self.incumbent = problem.worst_value()
        self._pending = problem.worst_value()  # best found since last merge
        self.incumbent_updates = 0
        self.expanded = 0
        self._cycles = 0

    # -- Workload protocol ------------------------------------------------

    def _counts(self) -> np.ndarray:
        return np.fromiter(
            (s.node_count() for s in self.stacks), dtype=np.int64, count=self.n_pes
        )

    def expanding_mask(self) -> np.ndarray:
        return self._counts() > 0

    def busy_mask(self) -> np.ndarray:
        return self._counts() >= 2

    def idle_mask(self) -> np.ndarray:
        return self._counts() == 0

    def _have_incumbent(self) -> bool:
        return self.incumbent != self.problem.worst_value()

    def expand_cycle(self) -> int:
        problem = self.problem
        n = 0
        for stack in self.stacks:
            entry = stack.pop_next()
            if entry is None:
                continue
            state = entry.state
            # Late pruning against the broadcast incumbent; a pruned pop
            # still costs the PE its cycle slot (it did the bound test in
            # lock-step) but expands no node.
            if self._have_incumbent() and problem.prunable(state, self.incumbent):
                continue
            n += 1
            self.expanded += 1
            value = problem.objective(state)
            if value is not None:
                if problem.is_better(value, self._pending):
                    self._pending = value
                continue
            level = []
            for child in problem.expand(state):
                if not self._have_incumbent() or not problem.prunable(
                    child, self.incumbent
                ):
                    level.append(StackEntry(child, entry.g + 1))
            level.reverse()
            stack.push_level(level)

        self._cycles += 1
        if self._cycles % self.broadcast_every == 0:
            self._merge_incumbent()
        return n

    def _merge_incumbent(self) -> None:
        if self._pending != self.problem.worst_value() and self.problem.is_better(
            self._pending, self.incumbent
        ):
            self.incumbent = self._pending
            self.incumbent_updates += 1

    def transfer(self, donors: np.ndarray, receivers: np.ndarray) -> int:
        donors = np.asarray(donors, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if donors.shape != receivers.shape:
            raise ValueError("donors and receivers must pair one-to-one")
        moved = 0
        for d, r in zip(donors.tolist(), receivers.tolist()):
            donor = self.stacks[d]
            if not donor.can_split() or not self.stacks[r].is_empty():
                continue
            entry = donor.split_bottom()
            assert entry is not None
            self.stacks[r] = DFSStack([entry])
            moved += 1
        return moved

    def done(self) -> bool:
        if not all(s.is_empty() for s in self.stacks):
            return False
        self._merge_incumbent()
        return True

    def total_expanded(self) -> int:
        return self.expanded

    @property
    def best_value(self) -> float | None:
        self._merge_incumbent()
        return self.incumbent if self._have_incumbent() else None


@dataclass(frozen=True)
class ParallelBnBResult:
    """Outcome of a parallel DFBB run."""

    best_value: float | None
    total_expanded: int
    incumbent_updates: int
    metrics: RunMetrics


class ParallelDFBB:
    """SIMD-parallel DFBB under any load-balancing scheme.

    Parameters mirror :class:`~repro.search.parallel.ParallelIDAStar`;
    ``broadcast_every`` controls how often per-cycle incumbents merge
    into the global bound (1 = every cycle, the CM-2-natural choice).
    """

    def __init__(
        self,
        problem: BnBProblem,
        n_pes: int,
        scheme: Scheme | str,
        *,
        cost_model: CostModel | None = None,
        init_threshold: float | None = None,
        broadcast_every: int = 1,
        max_cycles: int | None = None,
    ) -> None:
        self.problem = problem
        self.n_pes = int(n_pes)
        self.scheme = make_scheme(scheme) if isinstance(scheme, str) else scheme
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.init_threshold = init_threshold
        self.broadcast_every = broadcast_every
        self.max_cycles = max_cycles

    def run(self) -> ParallelBnBResult:
        workload = BnBWorkload(
            self.problem, self.n_pes, broadcast_every=self.broadcast_every
        )
        machine = SimdMachine(self.n_pes, self.cost_model)
        metrics = Scheduler(
            workload,
            machine,
            self.scheme,
            init_threshold=self.init_threshold,
            max_cycles=self.max_cycles,
        ).run()
        return ParallelBnBResult(
            best_value=workload.best_value,
            total_expanded=workload.expanded,
            incumbent_updates=workload.incumbent_updates,
            metrics=metrics,
        )
