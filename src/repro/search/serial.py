"""Serial depth-first search drivers.

The cost-bounded DFS here is the sequential reference against which the
parallel engine is validated: both prune with ``g + h(s) > bound`` at
*generation* time and count one expansion per node popped, so — because
the paper's setup finds **all** solutions up to the bound rather than
stopping at the first — the serial and parallel node counts must agree
exactly (Section 5: "This ensures that the number of nodes expanded by
the serial and the parallel search is the same").
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.search.problem import SearchProblem

__all__ = ["SerialSearchResult", "depth_bounded_dfs"]


@dataclass(frozen=True)
class SerialSearchResult:
    """Outcome of one cost-bounded serial DFS.

    Attributes
    ----------
    expanded:
        Nodes expanded (``W`` for this bound).
    solutions:
        Goal nodes found with ``g <= bound``.
    next_bound:
        Smallest pruned ``f = g + h`` value — IDA*'s next threshold
        (``None`` when nothing was pruned: the tree is exhausted).
    goal_depths:
        Sorted depths ``g`` at which goals were found.
    """

    expanded: int
    solutions: int
    next_bound: int | None
    goal_depths: tuple[int, ...]


def depth_bounded_dfs(
    problem: SearchProblem,
    bound: int,
    *,
    max_expansions: int | None = None,
    first_solution_only: bool = False,
) -> SerialSearchResult:
    """Expand every node with ``f = g + h <= bound``, counting all goals.

    An explicit stack (not recursion) keeps deep puzzle searches clear of
    Python's recursion limit.  ``max_expansions`` is a safety valve for
    tests; exceeding it raises ``RuntimeError`` since a truncated count
    would be meaningless.

    ``first_solution_only=True`` stops at the first goal — the mode that
    *admits* speedup anomalies (Rao & Kumar [33]); the paper's
    experiments deliberately avoid it, and the anomaly benchmark
    deliberately uses it.
    """
    root = problem.initial_state()
    expanded = 0
    solutions = 0
    next_bound: int | None = None
    goal_depths: list[int] = []

    if problem.heuristic(root) > bound:
        return SerialSearchResult(0, 0, problem.heuristic(root), ())

    # Stack of (state, g); children are pushed reversed so the expansion
    # order matches the recursive left-to-right DFS.
    stack: list[tuple[Hashable, int]] = [(root, 0)]
    while stack:
        state, g = stack.pop()
        expanded += 1
        if max_expansions is not None and expanded > max_expansions:
            raise RuntimeError(
                f"depth_bounded_dfs exceeded max_expansions={max_expansions}"
            )
        if problem.is_goal(state):
            solutions += 1
            goal_depths.append(g)
            if first_solution_only:
                break
            # A goal is a leaf of the search tree: stop extending the path
            # (the 15-puzzle goal has successors, but extending past a goal
            # would double-count work the serial algorithm would not do).
            continue
        children = problem.expand(state)
        for child in reversed(children):
            f = g + 1 + problem.heuristic(child)
            if f <= bound:
                stack.append((child, g + 1))
            elif next_bound is None or f < next_bound:
                next_bound = f

    return SerialSearchResult(expanded, solutions, next_bound, tuple(sorted(goal_depths)))
