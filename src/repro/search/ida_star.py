"""Serial IDA* — Korf's iterative-deepening A* [15].

Repeated cost-bounded DFS with the bound raised to the smallest pruned
``f`` each iteration.  Following the paper's experimental setup, the final
iteration finds **all** solutions at the optimal bound (it runs the bound
to exhaustion instead of stopping at the first goal), which removes
speedup anomalies when comparing against the parallel search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.search.problem import SearchProblem
from repro.search.serial import SerialSearchResult, depth_bounded_dfs

__all__ = ["IDAStarResult", "ida_star"]


@dataclass(frozen=True)
class IDAStarResult:
    """Outcome of a full IDA* run.

    Attributes
    ----------
    solution_cost:
        Optimal solution depth (``None`` if the space was exhausted or the
        iteration cap hit without finding a goal).
    solutions:
        Number of distinct goal nodes at the optimal bound.
    total_expanded:
        Nodes expanded across all iterations (the serial ``W``).
    iterations:
        Per-iteration serial results, in bound order.
    bounds:
        The sequence of cost bounds tried.
    """

    solution_cost: int | None
    solutions: int
    total_expanded: int
    iterations: tuple[SerialSearchResult, ...]
    bounds: tuple[int, ...]

    @property
    def final_iteration(self) -> SerialSearchResult:
        return self.iterations[-1]


def ida_star(
    problem: SearchProblem,
    *,
    max_iterations: int = 100,
    max_expansions_per_iteration: int | None = None,
) -> IDAStarResult:
    """Run IDA* to the first bound containing a solution.

    Raises ``RuntimeError`` if ``max_iterations`` elapse without either a
    solution or exhaustion — unsolvable sliding-puzzle instances never
    terminate otherwise (their state space parity excludes the goal).
    """
    bound = problem.heuristic(problem.initial_state())
    iterations: list[SerialSearchResult] = []
    bounds: list[int] = []
    total = 0

    for _ in range(max_iterations):
        result = depth_bounded_dfs(
            problem, bound, max_expansions=max_expansions_per_iteration
        )
        iterations.append(result)
        bounds.append(bound)
        total += result.expanded
        if result.solutions > 0:
            cost = result.goal_depths[0]
            return IDAStarResult(
                solution_cost=cost,
                solutions=result.solutions,
                total_expanded=total,
                iterations=tuple(iterations),
                bounds=tuple(bounds),
            )
        if result.next_bound is None:
            # Search space exhausted without a goal.
            return IDAStarResult(
                solution_cost=None,
                solutions=0,
                total_expanded=total,
                iterations=tuple(iterations),
                bounds=tuple(bounds),
            )
        bound = result.next_bound

    raise RuntimeError(f"IDA* did not converge within {max_iterations} iterations")
