"""The search-problem protocol (Section 2 of the paper).

"Specification of a tree search problem includes description of the root
node of the tree and a successor-generator-function that can be used to
generate successors of any given node."  States must be hashable and
self-contained: anything the successor generator needs (e.g. the previous
move, to avoid trivial 2-cycles in the 15-puzzle) must live inside the
state object, so that serial and parallel searches expand identical trees
regardless of where a subtree lands.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Sequence
from typing import TypeVar

__all__ = ["SearchProblem"]

State = TypeVar("State", bound=Hashable)


class SearchProblem(ABC):
    """A tree-search problem: root, successor generator, goal, heuristic.

    Edge costs are unit (every move deepens ``g`` by 1), which covers the
    paper's domains (15-puzzle, backtracking).  The heuristic must be
    admissible for IDA* optimality; the default of 0 turns IDA* into plain
    iterative-deepening DFS.
    """

    @abstractmethod
    def initial_state(self) -> Hashable:
        """The root node of the search tree."""

    @abstractmethod
    def expand(self, state: Hashable) -> Sequence[Hashable]:
        """Successor states of ``state`` (the successor-generator-function).

        The order must be deterministic: the reproduction relies on serial
        and parallel search visiting the same tree.
        """

    @abstractmethod
    def is_goal(self, state: Hashable) -> bool:
        """True if ``state`` is a goal node."""

    def heuristic(self, state: Hashable) -> int:
        """Admissible estimate of remaining cost (0 if unknown)."""
        return 0
