"""Flat-arena storage for real per-PE DFS search stacks.

The list backend of :class:`~repro.search.parallel.SearchWorkload` keeps
one :class:`~repro.search.stack.DFSStack` of ``StackEntry`` objects per
PE and pays a Python-level loop — pop, goal test, expand, heuristic,
push — per PE per lock-step cycle.  At machine width (P >= 1024) that
loop dominates the 15-puzzle experiment's wall clock the same way the
deque loop dominated the synthetic stack model before
:class:`~repro.workmodel.arena.StackArena`.

:class:`SearchArena` is the real-search analogue: every PE's stack lives
in one pair of packed arrays —

- ``tiles``: ``(n_pes, capacity, state_width)`` uint8 — one encoded
  puzzle state per slot;
- ``meta``: ``(n_pes, capacity, 4)`` int32 — the parallel ``g``, ``h``,
  blank-position and previous-blank columns

— with per-PE ``bottom``/``top`` pointers.  The live stack of PE ``p``
is the slot window ``[bottom[p], top[p])``; pushes and pops move ``top``
on the right, bottom-of-stack donation (the paper's 15-puzzle policy,
Section 5) advances ``bottom`` on the left in O(1) per pair.  All
operations are full-width numpy kernels; none iterates over PEs.

Why a flat window is *exactly* a ``DFSStack``: the level structure of
the list backend concatenates, in level order, to one flat sequence.
``pop_next`` removes the flat tail (the deepest level's last entry),
``push_level`` appends to the flat tail, and ``split_bottom`` removes
the flat head (level 0's first entry).  Every workload operation reads
or writes only the two ends, so storing the flat sequence loses nothing
— and the cross-backend suite asserts the resulting searches are
expansion-count- and solution-identical, scheme for scheme.

The expansion *kernel* (move tables, delta-``h``, bound pruning) lives
with the workload in :mod:`repro.search.parallel`; this module is pure
storage, mirroring the ``stackmodel``/``arena`` split of the work model.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["SearchArena", "G_COL", "H_COL", "BLANK_COL", "PREV_COL"]

#: Columns of the ``meta`` plane, in storage order.
G_COL, H_COL, BLANK_COL, PREV_COL = 0, 1, 2, 3


class SearchArena:
    """``P`` bounded-depth search stacks packed into two arrays.

    Parameters
    ----------
    n_pes:
        ``P`` — one stack (row) per processing element.
    state_width:
        Cells per encoded state (``side^2`` for sliding puzzles).
    capacity:
        Initial slots per PE; grows by compact-then-double when a push
        would overflow, so amortized push cost stays O(1) per entry.
    """

    def __init__(self, n_pes: int, state_width: int, *, capacity: int = 64) -> None:
        self.n_pes = check_positive_int(n_pes, "n_pes")
        self.state_width = check_positive_int(state_width, "state_width")
        self._capacity = check_positive_int(capacity, "capacity")
        self.tiles = np.zeros((n_pes, capacity, state_width), dtype=np.uint8)
        self.meta = np.zeros((n_pes, capacity, 4), dtype=np.int32)
        self.bottom = np.zeros(n_pes, dtype=np.int64)
        self.top = np.zeros(n_pes, dtype=np.int64)
        # Optional KernelWorkspace: when set (fused/jit tiers), growth
        # leases pooled planes and compaction reuses the cached iota
        # instead of allocating fresh arrays every doubling.
        self.workspace = None

    @property
    def capacity(self) -> int:
        return self._capacity

    # -- queries -----------------------------------------------------------

    def counts(self) -> np.ndarray:
        """Live entries per PE — one vector subtraction."""
        return self.top - self.bottom

    def entry_rows(self, pe: int) -> tuple[np.ndarray, np.ndarray]:
        """Copies of PE ``pe``'s live window, bottom to top:
        ``(tiles (k, state_width), meta (k, 4))``."""
        window = slice(self.bottom[pe], self.top[pe])
        return self.tiles[pe, window].copy(), self.meta[pe, window].copy()

    # -- stack operations ---------------------------------------------------

    def push_root(self, pe: int, tiles_row: np.ndarray, meta_row: np.ndarray) -> None:
        """Seed one PE with a single entry (the root on PE 0).

        Unmasked single-PE setup write: runs once before the lock-step
        loop starts, so no alive mask exists to guard it yet.
        """
        self.tiles[pe, self.top[pe]] = tiles_row
        self.meta[pe, self.top[pe]] = meta_row
        self.top[pe] += 1

    def pop_tops(self, pes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pop and return the top entry of every listed (non-empty) PE."""
        self.top[pes] -= 1
        slots = self.top[pes]
        return self.tiles[pes, slots], self.meta[pes, slots]

    def push_segments(
        self,
        pes: np.ndarray,
        lens: np.ndarray,
        tiles_flat: np.ndarray,
        meta_flat: np.ndarray,
    ) -> None:
        """Push ``lens[i]`` entries from the flat arrays (CSR order) onto
        ``pes[i]``.

        Each PE appears at most once per call (one expansion per PE per
        lock-step cycle), so the scatter never writes a slot twice.
        """
        total = int(lens.sum())
        if total == 0:
            return
        self._ensure_capacity(pes, lens)
        starts = np.repeat(self.top[pes], lens)
        offsets = np.cumsum(lens) - lens  # exclusive prefix, per segment
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lens)
        rows = np.repeat(pes, lens)
        self.tiles[rows, starts + within] = tiles_flat
        self.meta[rows, starts + within] = meta_flat
        self.top[pes] += lens

    # -- work splitting ------------------------------------------------------

    def donate_bottoms(self, donors: np.ndarray, receivers: np.ndarray) -> None:
        """Move each donor's bottom entry to its (empty) receiver.

        Donors and receivers must be disjoint index sets pairing
        one-to-one; every donor must hold >= 2 entries and every receiver
        zero (the caller filters) — the paper's donation invariant.
        """
        slots = self.bottom[donors]
        moved_tiles = self.tiles[donors, slots]
        moved_meta = self.meta[donors, slots]
        self.bottom[donors] += 1
        # Receivers are empty; restart their windows at slot 0.
        self.bottom[receivers] = 0
        self.tiles[receivers, 0] = moved_tiles
        self.meta[receivers, 0] = moved_meta
        self.top[receivers] = 1

    def donate_half(self, donor: int, receiver: int) -> int:
        """Move the bottom ``count // 2`` entries to an empty receiver,
        re-ordered shallow-to-deep by ``g`` (stable), matching the list
        backend's ``split_half`` receiver rebuild.  Returns the number of
        entries moved (the caller checks donor >= 2, receiver empty).

        Unmasked scalar-pair helper: the "half" ablation drives it one
        validated donor/receiver pair at a time from Python.
        """
        take = int(self.top[donor] - self.bottom[donor]) // 2
        if take == 0:
            return 0
        window = slice(self.bottom[donor], self.bottom[donor] + take)
        tiles = self.tiles[donor, window].copy()
        meta = self.meta[donor, window].copy()
        self.bottom[donor] += take
        order = np.argsort(meta[:, G_COL], kind="stable")
        self.tiles[receiver, :take] = tiles[order]
        self.meta[receiver, :take] = meta[order]
        self.bottom[receiver] = 0
        self.top[receiver] = take
        return take

    def extract_window(self, pe: int) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return PE ``pe``'s live window (bottom -> top order).

        The PE is left empty with its pointers rewound to slot 0.  Used by
        the fault layer to quarantine a dead PE's frontier; the returned
        ``(tiles, meta)`` pair round-trips through :meth:`inject_window`.
        Unmasked single-PE operation — the target PE is already dead, so
        the alive mask excludes rather than selects it.
        """
        tiles, meta = self.entry_rows(pe)
        self.bottom[pe] = 0
        self.top[pe] = 0
        return tiles, meta

    def inject_window(self, pe: int, tiles: np.ndarray, meta: np.ndarray) -> int:
        """Append extracted entries (bottom -> top order) onto PE ``pe``.

        The inverse of :meth:`extract_window`; the receiving PE need not
        be empty.  Returns the number of entries delivered.
        """
        k = int(len(meta))
        if k == 0:
            return 0
        self.push_segments(
            np.array([pe], dtype=np.int64),
            np.array([k], dtype=np.int64),
            tiles,
            meta,
        )
        return k

    def reset_empty_windows(self) -> None:
        """Rewind exhausted PEs' pointers to slot 0, reclaiming the dead
        slots their ``bottom`` consumed (cheap: two masked stores)."""
        empty = self.top == self.bottom
        self.bottom[empty] = 0
        self.top[empty] = 0

    # -- growth ------------------------------------------------------------

    def _ensure_capacity(self, pes: np.ndarray, lens: np.ndarray) -> None:
        need = int((self.top[pes] + lens).max())
        if need <= self._capacity:
            return
        self._compact()
        need = int((self.top[pes] + lens).max())
        if need <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < need:
            new_capacity *= 2
        ws = self.workspace
        if ws is not None:
            # Pooled growth: lease zero-filled planes from the workspace
            # pool and return the outgrown ones, so repeated doublings in
            # a long run recycle buffers instead of hitting the allocator.
            grown_tiles = ws.lease(
                (self.n_pes, new_capacity, self.state_width), np.dtype(np.uint8)
            )
            grown_meta = ws.lease((self.n_pes, new_capacity, 4), np.dtype(np.int32))
        else:
            grown_tiles = np.zeros(
                (self.n_pes, new_capacity, self.state_width), dtype=np.uint8
            )
            grown_meta = np.zeros((self.n_pes, new_capacity, 4), dtype=np.int32)
        grown_tiles[:, : self._capacity] = self.tiles
        grown_meta[:, : self._capacity] = self.meta
        if ws is not None:
            ws.release(self.tiles)
            ws.release(self.meta)
        self.tiles = grown_tiles
        self.meta = grown_meta
        self._capacity = new_capacity

    def _compact(self) -> None:
        """Shift every live window to slot 0 (vectorized gather/scatter)."""
        counts = self.top - self.bottom
        shifted = np.flatnonzero((counts > 0) & (self.bottom > 0))
        if len(shifted):
            seg = counts[shifted]
            total = int(seg.sum())
            offsets = np.cumsum(seg) - seg
            iota = (
                self.workspace.iota(total)
                if self.workspace is not None
                else np.arange(total, dtype=np.int64)
            )
            within = iota - np.repeat(offsets, seg)
            rows = np.repeat(shifted, seg)
            src = np.repeat(self.bottom[shifted], seg) + within
            # Fancy-index RHS gathers into a temp before the scatter, so
            # overlapping source/destination windows are safe.
            self.tiles[rows, within] = self.tiles[rows, src]
            self.meta[rows, within] = self.meta[rows, src]
        self.top[:] = counts
        self.bottom[:] = 0
