"""Tree-search substrate: serial and SIMD-parallel depth-first search.

- :mod:`repro.search.problem` — the search-problem protocol (root node +
  successor generator + goal test + admissible heuristic).
- :mod:`repro.search.stack` — the DFS stack of untried alternatives, with
  the bottom-of-stack split used for work donation (Section 5).
- :mod:`repro.search.serial` — serial depth-first / depth-bounded search.
- :mod:`repro.search.ida_star` — serial IDA* (Korf [15]) finding all
  solutions up to the final bound, the paper's speedup-anomaly-free setup.
- :mod:`repro.search.arena` — packed flat-array storage for the per-PE
  stacks: the vectorized ``backend="arena"`` of the parallel workload.
- :mod:`repro.search.memo` — bounded heuristic memoization for the list
  backend (hit/miss counters surfaced by the bench harness).
- :mod:`repro.search.parallel` — the real-stacks SIMD workload (list and
  arena backends) and the parallel IDA* driver built on the core
  scheduler.
- :mod:`repro.search.branch_and_bound` — Depth-First Branch and Bound
  (the other depth-first family of Section 2), serial and SIMD-parallel
  with lock-step incumbent broadcasting.
"""

from repro.search.problem import SearchProblem
from repro.search.arena import SearchArena
from repro.search.memo import HeuristicMemo
from repro.search.stack import DFSStack, StackEntry
from repro.search.serial import depth_bounded_dfs, SerialSearchResult
from repro.search.ida_star import ida_star, IDAStarResult
from repro.search.parallel import (
    SearchWorkload,
    ParallelIDAStar,
    ParallelSearchResult,
    parallel_depth_bounded,
)
from repro.search.branch_and_bound import (
    BnBProblem,
    BnBWorkload,
    ParallelDFBB,
    ParallelBnBResult,
    SerialBnBResult,
    serial_dfbb,
)

__all__ = [
    "parallel_depth_bounded",
    "BnBProblem",
    "BnBWorkload",
    "ParallelDFBB",
    "ParallelBnBResult",
    "SerialBnBResult",
    "serial_dfbb",
    "SearchProblem",
    "SearchArena",
    "HeuristicMemo",
    "DFSStack",
    "StackEntry",
    "depth_bounded_dfs",
    "SerialSearchResult",
    "ida_star",
    "IDAStarResult",
    "SearchWorkload",
    "ParallelIDAStar",
    "ParallelSearchResult",
]
