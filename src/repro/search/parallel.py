"""SIMD-parallel depth-first search with real stacks.

``SearchWorkload`` distributes a cost-bounded DFS over the simulated
machine's PEs: every lock-step cycle, each non-empty PE pops one untried
alternative, goal-tests it, and pushes its bound-pruned successors; work
donation hands over the alternative at the bottom of a stack (Section 5's
15-puzzle policy).  ``ParallelIDAStar`` wraps it in the iterative-
deepening driver, sharing one machine ledger across iterations so the
reported efficiency covers the whole run.

Two storage backends implement the same workload, mirroring the
``StackWorkload`` split:

- ``backend="list"`` — one :class:`~repro.search.stack.DFSStack` per PE,
  expanded in a per-PE Python loop.  The transparent oracle; works with
  any :class:`~repro.search.problem.SearchProblem`.  (The deprecated
  :class:`~repro.search.memo.HeuristicMemo` ablation remains available
  via ``heuristic_memo=True`` but benches slower than recomputing.)
- ``backend="arena"`` — all stacks packed into one
  :class:`~repro.search.arena.SearchArena`; a cycle pops every non-empty
  top, goal-tests, generates children from the problem's precomputed
  move table, updates ``h`` incrementally via the Manhattan delta table
  (O(1) per move instead of an O(side^2) recompute), bound-prunes and
  pushes — all in a handful of full-width numpy kernels.  Requires a
  vectorizable problem (:class:`~repro.problems.npuzzle.SlidingPuzzle`
  with the Manhattan heuristic, any side).

Both backends expand the *same* deterministic tree, so full runs are
expansion-count- and solution-identical — the anomaly-free property of
the paper's setup makes this a hard equality, asserted scheme by scheme
in the integration suite.

Because each iteration runs its bound to exhaustion (all solutions up to
the bound are collected), the number of nodes expanded is *identical* to
serial IDA*'s — the paper's anomaly-free setup, asserted by the
integration tests.

Busy/idle/expanding masks derive from one cached per-PE entry count,
invalidated on every mutation; code that mutates ``stacks`` directly
must call :meth:`SearchWorkload.invalidate_masks` before re-reading
masks (the convention ``StackWorkload``/``DivisibleWorkload`` already
follow).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, make_scheme
from repro.core.metrics import RunMetrics
from repro.core.scheduler import Scheduler
from repro.faults.plan import FaultPlan
from repro.faults.runtime import FaultRuntime
from repro.kernels.dispatch import get_kernel, resolve_backend
from repro.kernels.workspace import KernelWorkspace
from repro.obs import Observability
from repro.obs.events import IterationEvent
from repro.obs.profile import span
from repro.obs.registry import record_run
from repro.search.arena import BLANK_COL, G_COL, PREV_COL, SearchArena
from repro.search.memo import HeuristicMemo
from repro.search.problem import SearchProblem
from repro.search.stack import DFSStack, StackEntry
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine

__all__ = [
    "SearchWorkload",
    "ParallelIDAStar",
    "ParallelSearchResult",
    "parallel_depth_bounded",
]

#: Methods a problem must provide for the vectorized arena backend
#: (duck-typed so problems/ and search/ stay import-cycle-free).
_ARENA_PROTOCOL = (
    "supports_arena_backend",
    "state_width",
    "move_table",
    "manhattan_table",
    "goal_row",
    "encode_state",
    "decode_state",
)


class SearchWorkload:
    """A cost-bounded DFS over real per-PE stacks (Workload protocol).

    Parameters
    ----------
    problem:
        The tree-search problem.
    bound:
        IDA* cost bound: only nodes with ``f = g + h <= bound`` enter
        stacks.
    n_pes:
        ``P``.
    split:
        Donation policy — ``"bottom"`` (paper's choice: the alternative
        nearest the root) or ``"half"`` (ablation: half the alternatives).
    first_solution_only:
        Stop at the cycle boundary after any PE finds a goal — the mode
        with speedup anomalies (Rao & Kumar [33]).  The paper's
        experiments keep this off; the anomaly benchmark turns it on.
    backend:
        ``"list"`` (per-PE ``DFSStack`` oracle, any problem) or
        ``"arena"`` (flat vectorized storage, sliding puzzles with the
        Manhattan heuristic).
    h_memo:
        Optional :class:`~repro.search.memo.HeuristicMemo` the list
        backend routes child-``h`` computations through (share one across
        IDA* iterations to carry the cache over).  The arena backend
        needs none and rejects it.
    kernel_backend:
        Expand-cycle kernel tier for the arena backend — ``"numpy"``
        (reference, default), ``"fused"`` (zero-allocation workspace
        path with a sparse-frontier fast path), ``"jit"`` (numba row
        loop when available, else fused) or ``"auto"``.  The list
        backend is the oracle and only accepts ``"numpy"``.
    workspace:
        Optional shared :class:`~repro.kernels.KernelWorkspace` (IDA*
        passes one across iterations); one is created per workload when
        a non-numpy tier needs it.
    """

    def __init__(
        self,
        problem: SearchProblem,
        bound: int,
        n_pes: int,
        *,
        split: str = "bottom",
        first_solution_only: bool = False,
        backend: str = "list",
        h_memo: HeuristicMemo | None = None,
        kernel_backend: str = "numpy",
        workspace: KernelWorkspace | None = None,
    ) -> None:
        if split not in ("bottom", "half"):
            raise ValueError(f"split must be 'bottom' or 'half', got {split!r}")
        if backend not in ("list", "arena"):
            raise ValueError(f"backend must be 'list' or 'arena', got {backend!r}")
        self.problem = problem
        self.bound = int(bound)
        self.n_pes = int(n_pes)
        self.split = split
        self.first_solution_only = first_solution_only
        self.backend = backend
        resolved = resolve_backend(kernel_backend)
        if backend == "list" and resolved != "numpy":
            raise ValueError(
                "the list backend is the oracle tier and only accepts "
                f"kernel_backend='numpy', got {kernel_backend!r}"
            )
        self.kernel_backend = resolved
        if workspace is None and resolved != "numpy":
            workspace = KernelWorkspace()
        self._kernel_ws = workspace
        self._expand_kernel = None

        self.expanded = 0
        self.solutions = 0
        self.goal_depths: list[int] = []
        self.next_bound: int | None = None
        self._cached_counts: np.ndarray | None = None
        # Reusable 0..k iota for the arena kernel's row indexing — grown
        # on demand so steady-state cycles allocate no index arrays.
        self._iota = np.arange(max(self.n_pes, 4), dtype=np.int64)

        self._stacks: list[DFSStack] | None = None
        self._arena: SearchArena | None = None
        root = problem.initial_state()
        if backend == "arena":
            if h_memo is not None:
                raise ValueError(
                    "h_memo applies to the list backend only; the arena "
                    "updates h incrementally via the delta table"
                )
            missing = [a for a in _ARENA_PROTOCOL if not hasattr(problem, a)]
            if missing:
                raise TypeError(
                    f"backend='arena' needs a vectorizable problem exposing "
                    f"{missing} (see SlidingPuzzle); got "
                    f"{type(problem).__name__}"
                )
            if not problem.supports_arena_backend():
                raise ValueError(
                    "the arena backend's delta table is exact for the "
                    "Manhattan heuristic only; construct the puzzle with "
                    "heuristic_name='manhattan'"
                )
            self._h = problem.heuristic
            self._move_table = problem.move_table()
            self._dist_table = problem.manhattan_table()
            self._goal_row = problem.goal_row()
            self._arena = SearchArena(self.n_pes, problem.state_width)
            self._arena.workspace = self._kernel_ws
            self._expand_kernel = get_kernel("search.expand_cycle", resolved)
            h0 = problem.heuristic(root)
            if h0 <= self.bound:
                tiles_row, blank, prev = problem.encode_state(root)
                meta_row = np.array([0, h0, blank, prev], dtype=np.int32)
                self._arena.push_root(0, tiles_row, meta_row)
        else:
            self._h = h_memo if h_memo is not None else problem.heuristic
            self._stacks = [DFSStack() for _ in range(self.n_pes)]
            if self._h(root) <= self.bound:
                self._stacks[0] = DFSStack([StackEntry(root, 0)])

    # -- storage views -----------------------------------------------------

    @property
    def stacks(self) -> list:
        """The per-PE stacks.

        List backend: the live list of ``DFSStack`` objects (mutable in
        place — call :meth:`invalidate_masks` after direct edits).  Arena
        backend: a *snapshot* — one list of decoded ``StackEntry`` per PE,
        bottom to top; mutating it does not touch the arena.
        """
        if self._stacks is not None:
            return self._stacks
        assert self._arena is not None
        problem = self.problem
        out = []
        for pe in range(self.n_pes):
            tiles, meta = self._arena.entry_rows(pe)
            out.append(
                [
                    StackEntry(
                        problem.decode_state(
                            tiles[i], meta[i, BLANK_COL], meta[i, PREV_COL]
                        ),
                        int(meta[i, G_COL]),
                    )
                    for i in range(len(meta))
                ]
            )
        return out

    def invalidate_masks(self) -> None:
        """Drop the cached per-PE counts after direct stack mutation."""
        self._cached_counts = None

    # -- Workload protocol ------------------------------------------------

    def _counts(self) -> np.ndarray:
        """Per-PE pending-entry counts, cached until the next mutation."""
        if self._cached_counts is None:
            if self._arena is not None:
                self._cached_counts = self._arena.counts()
            else:
                assert self._stacks is not None
                self._cached_counts = np.fromiter(
                    (s.node_count() for s in self._stacks),
                    dtype=np.int64,
                    count=self.n_pes,
                )
        return self._cached_counts

    def expanding_mask(self) -> np.ndarray:
        return self._counts() > 0

    def busy_mask(self) -> np.ndarray:
        return self._counts() >= 2

    def idle_mask(self) -> np.ndarray:
        return self._counts() == 0

    def expand_cycle(self) -> int:
        if self._arena is not None:
            return self._expand_cycle_arena()
        return self._expand_cycle_list()

    def _expand_cycle_list(self) -> int:
        with span("expand.search.list"):
            return self._expand_cycle_list_inner()

    def _expand_cycle_list_inner(self) -> int:
        stacks = self._stacks
        assert stacks is not None
        self._cached_counts = None
        n = 0
        problem = self.problem
        h = self._h
        bound = self.bound
        for stack in stacks:
            entry = stack.pop_next()
            if entry is None:
                continue
            n += 1
            self.expanded += 1
            state, g = entry.state, entry.g
            if problem.is_goal(state):
                self.solutions += 1
                self.goal_depths.append(g)
                continue
            level: list[StackEntry] = []
            for child in problem.expand(state):
                f = g + 1 + h(child)
                if f <= bound:
                    level.append(StackEntry(child, g + 1))
                elif self.next_bound is None or f < self.next_bound:
                    self.next_bound = f
            # Reverse so pop_next() (which pops from the tail) visits the
            # children in the problem's generation order — same as serial.
            level.reverse()
            stack.push_level(level)
        return n

    def _expand_cycle_arena(self) -> int:
        with span("expand.search.arena"):
            return self._expand_cycle_arena_inner()

    def _expand_cycle_arena_inner(self) -> int:  # repro: kernel
        # The cycle body lives in repro.kernels.search; the registry
        # resolved the tier once at construction.  Every tier does its own
        # pes selection, count-cache invalidation and bookkeeping against
        # this workload, so the wrapper is a plain delegation.
        return self._expand_kernel(self, self._kernel_ws)

    def transfer(self, donors: np.ndarray, receivers: np.ndarray) -> int:
        donors = np.asarray(donors, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if donors.shape != receivers.shape:
            raise ValueError("donors and receivers must pair one-to-one")
        if len(donors) == 0:
            return 0
        self._cached_counts = None
        if self._arena is not None:
            return self._transfer_arena(donors, receivers)
        stacks = self._stacks
        assert stacks is not None
        moved = 0
        for d, r in zip(donors.tolist(), receivers.tolist()):
            donor = stacks[d]
            if not donor.can_split() or not stacks[r].is_empty():
                continue
            if self.split == "bottom":
                entry = donor.split_bottom()
                assert entry is not None
                stacks[r] = DFSStack([entry])
            else:
                donated = donor.split_half()
                if not donated:
                    continue
                receiver = DFSStack()
                # Rebuild levels shallow-to-deep so the receiver's DFS
                # continues in depth order; entries donated from the same
                # level stay siblings.
                for entry in sorted(donated, key=lambda e: e.g):
                    receiver.push_level([entry])
                stacks[r] = receiver
            moved += 1
        return moved

    def _transfer_arena(self, donors: np.ndarray, receivers: np.ndarray) -> int:  # repro: kernel
        arena = self._arena
        assert arena is not None
        counts = arena.counts()
        valid = (counts[donors] >= 2) & (counts[receivers] == 0)
        donors = donors[valid]
        receivers = receivers[valid]
        if len(donors) == 0:
            return 0
        if self.split == "bottom":
            arena.donate_bottoms(donors, receivers)
            return int(len(donors))
        moved = 0
        # The "half" ablation re-sorts each donated window by depth; that
        # per-pair reshuffle stays a Python loop (it is not a paper path).
        for d, r in zip(donors.tolist(), receivers.tolist()):
            if arena.donate_half(d, r):
                moved += 1
        return moved

    def done(self) -> bool:
        # Goal detection happens at cycle boundaries — all PEs finish the
        # lock-step cycle before the global OR of goal flags is read.
        if self.first_solution_only and self.solutions > 0:
            return True
        return not self._counts().any()

    def total_expanded(self) -> int:
        return self.expanded

    def extract_pe(self, pe: int):
        """Quarantine PE ``pe``'s whole DFS stack.

        List backend: the :class:`DFSStack` object itself (levels intact).
        Arena backend: the ``(tiles, meta)`` window, bottom to top.
        """
        self._cached_counts = None
        if self._arena is not None:
            tiles, meta = self._arena.extract_window(pe)
            return (tiles, meta), int(len(meta))
        stacks = self._stacks
        assert stacks is not None
        stack = stacks[pe]
        stacks[pe] = DFSStack()
        return stack, stack.node_count()

    def inject_pe(self, pe: int, payload) -> int:
        """Append a quarantined frontier onto PE ``pe``'s stack."""
        self._cached_counts = None
        if self._arena is not None:
            tiles, meta = payload
            return self._arena.inject_window(pe, tiles, meta)
        stacks = self._stacks
        assert stacks is not None
        return stacks[pe].absorb(payload)


def parallel_depth_bounded(
    problem: SearchProblem,
    bound: int,
    n_pes: int,
    scheme: Scheme | str,
    *,
    cost_model: CostModel | None = None,
    init_threshold: float | None = None,
    split: str = "bottom",
    trace: bool = False,
    first_solution_only: bool = False,
    backend: str = "list",
    h_memo: HeuristicMemo | None = None,
    sanitize: bool = False,
    kernel_backend: str = "numpy",
) -> tuple[SearchWorkload, RunMetrics]:
    """One cost-bounded parallel DFS pass (no iterative deepening).

    The single-iteration analogue of
    :func:`repro.search.serial.depth_bounded_dfs` — the right driver for
    problems without a heuristic (synthetic trees, exhaustive
    enumeration), where IDA* would re-expand the tree once per unit of
    bound.  Returns the exhausted workload (holding ``expanded``,
    ``solutions``, ``next_bound``) and the run metrics.
    """
    machine = SimdMachine(n_pes, cost_model if cost_model is not None else CostModel())
    workload = SearchWorkload(
        problem,
        bound,
        n_pes,
        split=split,
        first_solution_only=first_solution_only,
        backend=backend,
        h_memo=h_memo,
        kernel_backend=kernel_backend,
    )
    metrics = Scheduler(
        workload,
        machine,
        scheme,
        init_threshold=init_threshold,
        trace=trace,
        sanitize=sanitize,
    ).run()
    return workload, metrics


@dataclass(frozen=True)
class ParallelSearchResult:
    """Outcome of a parallel IDA* run.

    ``total_expanded`` is the parallel ``W``; ``per_iteration_expanded``
    lets tests compare each iteration against serial IDA* exactly.
    ``h_memo_hits``/``h_memo_misses`` report the list backend's heuristic
    cache (both zero when the memo is off or the backend is the arena).
    """

    solution_cost: int | None
    solutions: int
    total_expanded: int
    bounds: tuple[int, ...]
    per_iteration_expanded: tuple[int, ...]
    metrics: RunMetrics
    h_memo_hits: int = 0
    h_memo_misses: int = 0

    @property
    def h_memo_hit_rate(self) -> float:
        total = self.h_memo_hits + self.h_memo_misses
        return self.h_memo_hits / total if total else 0.0


class ParallelIDAStar:
    """Iterative-deepening driver over :class:`SearchWorkload`.

    One :class:`~repro.simd.machine.SimdMachine` ledger spans all
    iterations, so the final metrics describe the entire search exactly as
    the paper's tables do.

    Parameters
    ----------
    problem, n_pes:
        What to search and with how many PEs.
    scheme:
        Load-balancing scheme (spec string or :class:`Scheme`).
    cost_model:
        Machine cost model; defaults to CM-2 constants.
    init_threshold:
        Initial-distribution threshold (Section 7 uses 0.85 for dynamic
        triggers); ``None`` skips the initialization phase.
    split:
        Stack donation policy, forwarded to the workload.
    backend:
        Stack storage, forwarded to the workload (``"list"`` or
        ``"arena"``); both produce identical results.
    kernel_backend:
        Expand-cycle kernel tier forwarded to every iteration's workload
        (arena backend only); one :class:`~repro.kernels.KernelWorkspace`
        is shared across all iterations so scratch buffers warm up once.
    heuristic_memo:
        List backend only: cache child heuristics in one (deprecated)
        :class:`~repro.search.memo.HeuristicMemo` shared across all
        iterations.  Default **off** — BENCH_search.json shows the memo
        is slower than recomputing the incremental heuristic (whole-
        state hashing dominates); the flag remains so the ablation can
        still be reproduced.  Ignored by the arena backend.
    sanitize:
        Forwarded to every iteration's
        :class:`~repro.core.scheduler.Scheduler` — assert the lock-step
        invariants throughout the run.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` injected across the whole
        run: one shared :class:`~repro.faults.runtime.FaultRuntime` spans
        every iteration's scheduler, so fail-stop deaths key off the
        cumulative machine cycle count and a dead PE stays dead for all
        later bounds (its per-iteration frontier — including a root
        seeded onto it — is quarantined and recovered each time).
    obs:
        An :class:`~repro.obs.Observability` bundle shared by every
        iteration's scheduler; the driver adds one
        :class:`~repro.obs.events.IterationEvent` per bound and folds the
        final metrics into ``obs.metrics`` via
        :func:`~repro.obs.registry.record_run`.  Observation is pure.
    """

    def __init__(
        self,
        problem: SearchProblem,
        n_pes: int,
        scheme: Scheme | str,
        *,
        cost_model: CostModel | None = None,
        init_threshold: float | None = None,
        split: str = "bottom",
        max_iterations: int = 100,
        backend: str = "list",
        heuristic_memo: bool = False,
        sanitize: bool = False,
        faults: FaultPlan | None = None,
        obs: Observability | None = None,
        kernel_backend: str = "numpy",
    ) -> None:
        self.problem = problem
        self.n_pes = int(n_pes)
        self.scheme = make_scheme(scheme) if isinstance(scheme, str) else scheme
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.init_threshold = init_threshold
        self.split = split
        self.max_iterations = max_iterations
        self.backend = backend
        self.sanitize = sanitize
        self.faults = faults
        self.obs = obs
        self.kernel_backend = resolve_backend(kernel_backend)
        # One workspace for the whole deepening run: scratch buffers and
        # pooled arena planes warmed by iteration k are reused by k+1.
        self._kernel_ws = (
            KernelWorkspace() if self.kernel_backend != "numpy" else None
        )
        self.h_memo = (
            HeuristicMemo(problem.heuristic)
            if heuristic_memo and backend == "list"
            else None
        )

    def run(self) -> ParallelSearchResult:
        machine = SimdMachine(self.n_pes, self.cost_model)
        fault_runtime: FaultRuntime | None = (
            self.faults.start(self.n_pes) if self.faults is not None else None
        )
        bound = self.problem.heuristic(self.problem.initial_state())
        bounds: list[int] = []
        per_iter: list[int] = []
        last_metrics: RunMetrics | None = None

        for _ in range(self.max_iterations):
            workload = SearchWorkload(
                self.problem,
                bound,
                self.n_pes,
                split=self.split,
                backend=self.backend,
                h_memo=self.h_memo,
                kernel_backend=self.kernel_backend,
                workspace=self._kernel_ws,
            )
            scheduler = Scheduler(
                workload,
                machine,
                self.scheme,
                init_threshold=self.init_threshold,
                sanitize=self.sanitize,
                faults=fault_runtime,
                obs=self.obs,
            )
            last_metrics = scheduler.run()
            bounds.append(bound)
            per_iter.append(workload.expanded)
            if self.obs is not None:
                self.obs.emit(
                    IterationEvent(
                        cycle=machine.n_cycles,
                        bound=bound,
                        expanded=workload.expanded,
                    )
                )

            if workload.solutions > 0:
                cost = min(workload.goal_depths)
                return self._result(
                    cost, workload.solutions, bounds, per_iter, machine,
                    last_metrics, fault_runtime,
                )
            if workload.next_bound is None:
                return self._result(
                    None, 0, bounds, per_iter, machine, last_metrics,
                    fault_runtime,
                )
            bound = workload.next_bound

        raise RuntimeError(
            f"parallel IDA* did not converge within {self.max_iterations} iterations"
        )

    def _result(
        self,
        cost: int | None,
        solutions: int,
        bounds: list[int],
        per_iter: list[int],
        machine: SimdMachine,
        last_metrics: RunMetrics,
        fault_runtime: FaultRuntime | None = None,
    ) -> ParallelSearchResult:
        result = ParallelSearchResult(
            solution_cost=cost,
            solutions=solutions,
            total_expanded=sum(per_iter),
            bounds=tuple(bounds),
            per_iteration_expanded=tuple(per_iter),
            metrics=self._final_metrics(
                machine, sum(per_iter), last_metrics, fault_runtime
            ),
            h_memo_hits=self.h_memo.hits if self.h_memo is not None else 0,
            h_memo_misses=self.h_memo.misses if self.h_memo is not None else 0,
        )
        if self.obs is not None and self.obs.metrics is not None:
            record_run(self.obs.metrics, result.metrics)
        return result

    def _final_metrics(
        self,
        machine: SimdMachine,
        total_work: int,
        last: RunMetrics | None,
        fault_runtime: FaultRuntime | None = None,
    ) -> RunMetrics:
        assert last is not None
        return RunMetrics(
            scheme=last.scheme,
            n_pes=self.n_pes,
            total_work=total_work,
            n_expand=machine.n_cycles,
            n_lb=machine.n_lb_phases,
            n_transfers=machine.n_transfers,
            n_init_lb=last.n_init_lb,
            ledger=machine.ledger,
            trace=None,
            n_recovery=machine.n_recovery_phases,
            faults=fault_runtime.report() if fault_runtime is not None else None,
        )
