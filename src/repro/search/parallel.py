"""SIMD-parallel depth-first search with real stacks.

``SearchWorkload`` distributes a cost-bounded DFS over the simulated
machine's PEs: every lock-step cycle, each non-empty PE pops one untried
alternative, goal-tests it, and pushes its bound-pruned successors; work
donation hands over the alternative at the bottom of a stack (Section 5's
15-puzzle policy).  ``ParallelIDAStar`` wraps it in the iterative-
deepening driver, sharing one machine ledger across iterations so the
reported efficiency covers the whole run.

Because each iteration runs its bound to exhaustion (all solutions up to
the bound are collected), the number of nodes expanded is *identical* to
serial IDA*'s — the paper's anomaly-free setup, asserted by the
integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, make_scheme
from repro.core.metrics import RunMetrics
from repro.core.scheduler import Scheduler
from repro.search.problem import SearchProblem
from repro.search.stack import DFSStack, StackEntry
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine

__all__ = [
    "SearchWorkload",
    "ParallelIDAStar",
    "ParallelSearchResult",
    "parallel_depth_bounded",
]


class SearchWorkload:
    """A cost-bounded DFS over real per-PE stacks (Workload protocol).

    Parameters
    ----------
    problem:
        The tree-search problem.
    bound:
        IDA* cost bound: only nodes with ``f = g + h <= bound`` enter
        stacks.
    n_pes:
        ``P``.
    split:
        Donation policy — ``"bottom"`` (paper's choice: the alternative
        nearest the root) or ``"half"`` (ablation: half the alternatives).
    first_solution_only:
        Stop at the cycle boundary after any PE finds a goal — the mode
        with speedup anomalies (Rao & Kumar [33]).  The paper's
        experiments keep this off; the anomaly benchmark turns it on.
    """

    def __init__(
        self,
        problem: SearchProblem,
        bound: int,
        n_pes: int,
        *,
        split: str = "bottom",
        first_solution_only: bool = False,
    ) -> None:
        if split not in ("bottom", "half"):
            raise ValueError(f"split must be 'bottom' or 'half', got {split!r}")
        self.problem = problem
        self.bound = bound
        self.n_pes = int(n_pes)
        self.split = split
        self.first_solution_only = first_solution_only

        self.stacks = [DFSStack() for _ in range(self.n_pes)]
        root = problem.initial_state()
        if problem.heuristic(root) <= bound:
            self.stacks[0] = DFSStack([StackEntry(root, 0)])

        self.expanded = 0
        self.solutions = 0
        self.goal_depths: list[int] = []
        self.next_bound: int | None = None

    # -- Workload protocol ------------------------------------------------

    def _counts(self) -> np.ndarray:
        return np.fromiter(
            (s.node_count() for s in self.stacks), dtype=np.int64, count=self.n_pes
        )

    def expanding_mask(self) -> np.ndarray:
        return self._counts() > 0

    def busy_mask(self) -> np.ndarray:
        return self._counts() >= 2

    def idle_mask(self) -> np.ndarray:
        return self._counts() == 0

    def expand_cycle(self) -> int:
        n = 0
        problem = self.problem
        bound = self.bound
        for stack in self.stacks:
            entry = stack.pop_next()
            if entry is None:
                continue
            n += 1
            self.expanded += 1
            state, g = entry.state, entry.g
            if problem.is_goal(state):
                self.solutions += 1
                self.goal_depths.append(g)
                continue
            level: list[StackEntry] = []
            for child in problem.expand(state):
                f = g + 1 + problem.heuristic(child)
                if f <= bound:
                    level.append(StackEntry(child, g + 1))
                elif self.next_bound is None or f < self.next_bound:
                    self.next_bound = f
            # Reverse so pop_next() (which pops from the tail) visits the
            # children in the problem's generation order — same as serial.
            level.reverse()
            stack.push_level(level)
        return n

    def transfer(self, donors: np.ndarray, receivers: np.ndarray) -> int:
        donors = np.asarray(donors, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if donors.shape != receivers.shape:
            raise ValueError("donors and receivers must pair one-to-one")
        moved = 0
        for d, r in zip(donors.tolist(), receivers.tolist()):
            donor = self.stacks[d]
            if not donor.can_split() or not self.stacks[r].is_empty():
                continue
            if self.split == "bottom":
                entry = donor.split_bottom()
                assert entry is not None
                self.stacks[r] = DFSStack([entry])
            else:
                donated = donor.split_half()
                if not donated:
                    continue
                receiver = DFSStack()
                # Rebuild levels shallow-to-deep so the receiver's DFS
                # continues in depth order; entries donated from the same
                # level stay siblings.
                for entry in sorted(donated, key=lambda e: e.g):
                    receiver.push_level([entry])
                self.stacks[r] = receiver
            moved += 1
        return moved

    def done(self) -> bool:
        # Goal detection happens at cycle boundaries — all PEs finish the
        # lock-step cycle before the global OR of goal flags is read.
        if self.first_solution_only and self.solutions > 0:
            return True
        return all(s.is_empty() for s in self.stacks)

    def total_expanded(self) -> int:
        return self.expanded


def parallel_depth_bounded(
    problem: SearchProblem,
    bound: int,
    n_pes: int,
    scheme: Scheme | str,
    *,
    cost_model: CostModel | None = None,
    init_threshold: float | None = None,
    split: str = "bottom",
    trace: bool = False,
    first_solution_only: bool = False,
) -> tuple[SearchWorkload, RunMetrics]:
    """One cost-bounded parallel DFS pass (no iterative deepening).

    The single-iteration analogue of
    :func:`repro.search.serial.depth_bounded_dfs` — the right driver for
    problems without a heuristic (synthetic trees, exhaustive
    enumeration), where IDA* would re-expand the tree once per unit of
    bound.  Returns the exhausted workload (holding ``expanded``,
    ``solutions``, ``next_bound``) and the run metrics.
    """
    machine = SimdMachine(n_pes, cost_model if cost_model is not None else CostModel())
    workload = SearchWorkload(
        problem, bound, n_pes, split=split, first_solution_only=first_solution_only
    )
    metrics = Scheduler(
        workload, machine, scheme, init_threshold=init_threshold, trace=trace
    ).run()
    return workload, metrics


@dataclass(frozen=True)
class ParallelSearchResult:
    """Outcome of a parallel IDA* run.

    ``total_expanded`` is the parallel ``W``; ``per_iteration_expanded``
    lets tests compare each iteration against serial IDA* exactly.
    """

    solution_cost: int | None
    solutions: int
    total_expanded: int
    bounds: tuple[int, ...]
    per_iteration_expanded: tuple[int, ...]
    metrics: RunMetrics


class ParallelIDAStar:
    """Iterative-deepening driver over :class:`SearchWorkload`.

    One :class:`~repro.simd.machine.SimdMachine` ledger spans all
    iterations, so the final metrics describe the entire search exactly as
    the paper's tables do.

    Parameters
    ----------
    problem, n_pes:
        What to search and with how many PEs.
    scheme:
        Load-balancing scheme (spec string or :class:`Scheme`).
    cost_model:
        Machine cost model; defaults to CM-2 constants.
    init_threshold:
        Initial-distribution threshold (Section 7 uses 0.85 for dynamic
        triggers); ``None`` skips the initialization phase.
    split:
        Stack donation policy, forwarded to the workload.
    """

    def __init__(
        self,
        problem: SearchProblem,
        n_pes: int,
        scheme: Scheme | str,
        *,
        cost_model: CostModel | None = None,
        init_threshold: float | None = None,
        split: str = "bottom",
        max_iterations: int = 100,
    ) -> None:
        self.problem = problem
        self.n_pes = int(n_pes)
        self.scheme = make_scheme(scheme) if isinstance(scheme, str) else scheme
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.init_threshold = init_threshold
        self.split = split
        self.max_iterations = max_iterations

    def run(self) -> ParallelSearchResult:
        machine = SimdMachine(self.n_pes, self.cost_model)
        bound = self.problem.heuristic(self.problem.initial_state())
        bounds: list[int] = []
        per_iter: list[int] = []
        last_metrics: RunMetrics | None = None

        for _ in range(self.max_iterations):
            workload = SearchWorkload(
                self.problem, bound, self.n_pes, split=self.split
            )
            scheduler = Scheduler(
                workload,
                machine,
                self.scheme,
                init_threshold=self.init_threshold,
            )
            last_metrics = scheduler.run()
            bounds.append(bound)
            per_iter.append(workload.expanded)

            if workload.solutions > 0:
                cost = min(workload.goal_depths)
                return ParallelSearchResult(
                    solution_cost=cost,
                    solutions=workload.solutions,
                    total_expanded=sum(per_iter),
                    bounds=tuple(bounds),
                    per_iteration_expanded=tuple(per_iter),
                    metrics=self._final_metrics(machine, sum(per_iter), last_metrics),
                )
            if workload.next_bound is None:
                return ParallelSearchResult(
                    solution_cost=None,
                    solutions=0,
                    total_expanded=sum(per_iter),
                    bounds=tuple(bounds),
                    per_iteration_expanded=tuple(per_iter),
                    metrics=self._final_metrics(machine, sum(per_iter), last_metrics),
                )
            bound = workload.next_bound

        raise RuntimeError(
            f"parallel IDA* did not converge within {self.max_iterations} iterations"
        )

    def _final_metrics(
        self, machine: SimdMachine, total_work: int, last: RunMetrics | None
    ) -> RunMetrics:
        assert last is not None
        return RunMetrics(
            scheme=last.scheme,
            n_pes=self.n_pes,
            total_work=total_work,
            n_expand=machine.n_cycles,
            n_lb=machine.n_lb_phases,
            n_transfers=machine.n_transfers,
            n_init_lb=last.n_init_lb,
            ledger=machine.ledger,
            trace=None,
        )
