"""The per-processor DFS stack (Section 2).

"The (part of) state space to be searched is efficiently represented by a
stack ... each level of the stack keeps track of untried alternatives."

The stack is a list of *levels*; each level holds the untried sibling
alternatives at that depth.  Expansion pops the next alternative from the
deepest non-empty level; donation removes an alternative from the
*bottom* — the level nearest the root, whose alternatives subtend the
largest unexplored subtrees (the paper's 15-puzzle splitting policy,
Section 5).

``node_count`` — the number of untried alternatives across all levels —
is the paper's notion of "nodes on the stack": a processor is busy iff it
holds at least two.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

__all__ = ["StackEntry", "DFSStack"]


@dataclass(frozen=True)
class StackEntry:
    """One untried alternative: a state and its depth ``g`` from the root."""

    state: Hashable
    g: int


class DFSStack:
    """A depth-first stack of untried alternatives.

    The invariant maintained by all operations: no empty levels exist
    (they are trimmed eagerly), so ``levels[-1]`` always has at least one
    alternative when the stack is non-empty.
    """

    __slots__ = ("_levels", "_count")

    def __init__(self, entries: Iterable[StackEntry] = ()) -> None:
        entries = list(entries)
        self._levels: list[list[StackEntry]] = [entries] if entries else []
        self._count: int = len(entries)

    # -- queries -----------------------------------------------------------

    def node_count(self) -> int:
        """Total untried alternatives (the paper's stack-node count)."""
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def can_split(self) -> bool:
        """Busy in the paper's sense: at least two nodes on the stack."""
        return self._count >= 2

    def depth(self) -> int:
        """Number of levels currently on the stack."""
        return len(self._levels)

    def entries(self) -> list[StackEntry]:
        """The levels concatenated bottom-to-top into one flat sequence.

        This flat view is the stack's complete observable state:
        ``pop_next`` removes its tail, ``push_level`` appends to it, and
        ``split_bottom`` removes its head — which is why the flat search
        arena (:mod:`repro.search.arena`) can store stacks as plain
        windows and stay bit-identical to this class.
        """
        return [entry for level in self._levels for entry in level]

    # -- DFS operations ------------------------------------------------------

    def pop_next(self) -> StackEntry | None:
        """Remove and return the next node to expand (deepest level, LIFO).

        Returns ``None`` when the stack is empty.
        """
        if self._count == 0:
            return None
        top = self._levels[-1]
        entry = top.pop()
        self._count -= 1
        while self._levels and not self._levels[-1]:
            self._levels.pop()
        return entry

    def push_level(self, entries: Iterable[StackEntry]) -> None:
        """Push the successors of the node just expanded as a new level."""
        entries = list(entries)
        if not entries:
            return
        self._levels.append(entries)
        self._count += len(entries)

    def absorb(self, other: "DFSStack") -> int:
        """Append another stack's levels on top of this one.

        Used by fault recovery to re-inject a quarantined frontier: onto
        an empty stack this reproduces ``other`` exactly (levels and all);
        onto a non-empty one it appends ``other``'s flat sequence at the
        tail, which is the only end DFS operations observe.  Returns the
        number of alternatives absorbed.
        """
        moved = 0
        for level in other._levels:
            if level:
                self._levels.append(list(level))
                self._count += len(level)
                moved += len(level)
        return moved

    # -- work splitting ------------------------------------------------------

    def split_bottom(self) -> StackEntry | None:
        """Remove and return the alternative nearest the root.

        This is the donated piece of work; the receiver starts a fresh
        stack rooted at it.  Returns ``None`` if the stack cannot split
        (fewer than two nodes) — donating the only node would idle the
        donor, contradicting the paper's busy definition.
        """
        if not self.can_split():
            return None
        bottom = self._levels[0]
        entry = bottom.pop(0)
        self._count -= 1
        if not bottom:
            self._levels.pop(0)
        return entry

    def split_half(self) -> list[StackEntry]:
        """Remove roughly half the alternatives, taken bottom-up.

        An ablation alternative to :meth:`split_bottom` — donates
        ``floor(count/2)`` alternatives starting from the root end.
        """
        if not self.can_split():
            return []
        target = self._count // 2
        donated: list[StackEntry] = []
        level_idx = 0
        while len(donated) < target and level_idx < len(self._levels):
            level = self._levels[level_idx]
            take = min(len(level) - (1 if level_idx == len(self._levels) - 1 else 0),
                       target - len(donated))
            if take > 0:
                donated.extend(level[:take])
                del level[:take]
            level_idx += 1
        self._levels = [lv for lv in self._levels if lv]
        self._count -= len(donated)
        return donated

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(lv) for lv in self._levels]
        return f"DFSStack(levels={sizes}, count={self._count})"
