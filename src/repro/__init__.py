"""repro — Unstructured Tree Search on SIMD Parallel Computers.

A full reproduction of Karypis & Kumar (1992): dynamic load balancing for
lock-step parallel depth-first search, with the GP global-pointer matching
scheme, the S^x / D_P / D_K triggering schemes, a simulated CM-2-class
SIMD machine, real 15-puzzle IDA*, the related-work baselines, and the
paper's scalability analysis.

Quickstart::

    from repro import run_divisible
    metrics = run_divisible("GP-DK", total_work=1_000_000, n_pes=1024)
    print(metrics.efficiency)

Or search a real problem::

    from repro import ParallelIDAStar, scrambled_fifteen_puzzle
    puzzle = scrambled_fifteen_puzzle(30, rng=1)
    result = ParallelIDAStar(puzzle, 64, "GP-DK", init_threshold=0.85).run()
    print(result.solution_cost, result.metrics.efficiency)
"""

from repro.core import (
    Scheduler,
    Scheme,
    make_scheme,
    PAPER_SCHEMES,
    NGPMatcher,
    GPMatcher,
    StaticTrigger,
    DPTrigger,
    DKTrigger,
    AlphaSplitter,
    HalfSplitter,
    UnitSplitter,
    RunMetrics,
)
from repro.simd import (
    SimdMachine,
    CostModel,
    CM2Topology,
    HypercubeTopology,
    MeshTopology,
)
from repro.workmodel import DivisibleWorkload, StackWorkload
from repro.search import (
    SearchProblem,
    ida_star,
    depth_bounded_dfs,
    ParallelIDAStar,
    parallel_depth_bounded,
    BnBProblem,
    serial_dfbb,
    ParallelDFBB,
)
from repro.problems import (
    SlidingPuzzle,
    FifteenPuzzle,
    scrambled_fifteen_puzzle,
    NQueensProblem,
    SyntheticTreeProblem,
    KnapsackProblem,
    TSPProblem,
    GraphColoringProblem,
)
from repro.analysis import (
    optimal_static_trigger,
    isoefficiency_points,
    growth_exponent,
)
from repro.experiments.runner import (
    run_divisible,
    run_grid,
    PAPER_SCALE,
    SMALL_SCALE,
    RetryPolicy,
    QuarantineReport,
)
from repro.experiments.journal import CellJournal
from repro.errors import (
    ReproError,
    ConfigError,
    FaultInjectionError,
    CheckpointCorruptError,
    JournalCorruptError,
    GridCellError,
    ExecutorFallbackWarning,
    TimeoutUnenforcedWarning,
)
from repro.faults import (
    FaultPlan,
    PEFailure,
    Straggler,
    FaultReport,
    CheckpointConfig,
    write_checkpoint,
    load_checkpoint,
    resume_run,
)
from repro.errors import RecordStoreError
from repro.lint import Finding, LintResult, run_lint
from repro.lint.runtime import SanitizerError, check_observation_purity
from repro.obs import (
    Observability,
    MetricsRegistry,
    RingBufferSink,
    JsonlSink,
    Profiler,
    profiled,
)

__version__ = "1.0.0"

__all__ = [
    "Scheduler",
    "Scheme",
    "make_scheme",
    "PAPER_SCHEMES",
    "NGPMatcher",
    "GPMatcher",
    "StaticTrigger",
    "DPTrigger",
    "DKTrigger",
    "AlphaSplitter",
    "HalfSplitter",
    "UnitSplitter",
    "RunMetrics",
    "SimdMachine",
    "CostModel",
    "CM2Topology",
    "HypercubeTopology",
    "MeshTopology",
    "DivisibleWorkload",
    "StackWorkload",
    "SearchProblem",
    "ida_star",
    "depth_bounded_dfs",
    "ParallelIDAStar",
    "parallel_depth_bounded",
    "SlidingPuzzle",
    "FifteenPuzzle",
    "scrambled_fifteen_puzzle",
    "NQueensProblem",
    "SyntheticTreeProblem",
    "KnapsackProblem",
    "TSPProblem",
    "GraphColoringProblem",
    "BnBProblem",
    "serial_dfbb",
    "ParallelDFBB",
    "optimal_static_trigger",
    "isoefficiency_points",
    "growth_exponent",
    "run_divisible",
    "run_grid",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "RetryPolicy",
    "QuarantineReport",
    "CellJournal",
    "ReproError",
    "ConfigError",
    "FaultInjectionError",
    "CheckpointCorruptError",
    "JournalCorruptError",
    "GridCellError",
    "ExecutorFallbackWarning",
    "TimeoutUnenforcedWarning",
    "FaultPlan",
    "PEFailure",
    "Straggler",
    "FaultReport",
    "CheckpointConfig",
    "write_checkpoint",
    "load_checkpoint",
    "resume_run",
    "Finding",
    "LintResult",
    "run_lint",
    "SanitizerError",
    "check_observation_purity",
    "RecordStoreError",
    "Observability",
    "MetricsRegistry",
    "RingBufferSink",
    "JsonlSink",
    "Profiler",
    "profiled",
    "__version__",
]
