"""Closed-form efficiency predictions (Section 4, Equations 9/12/15).

These are the paper's upper-bound models:

    E = W*U_calc / ( W*U_calc/(x+delta)  +  P * V(P) * log W * t_lb )

with ``V(P) = 1/(1-x)`` for GP (Eq. 12) and
``V(P) = (log W)^{(2x-1)/(1-x)}`` for nGP (Eq. 15).  ``delta`` is the
mean active-fraction surplus over the trigger threshold
(``0 <= delta <= 1-x``); the paper's optimal-trigger derivation assumes
``delta = 0``.  ``log W`` is the alpha-splitting logarithm of Appendix A.
"""

from __future__ import annotations

from repro.analysis.bounds import v_bound_gp, v_bound_ngp, work_log
from repro.util.validation import check_positive, check_probability

__all__ = ["predicted_efficiency_gp_static", "predicted_efficiency_ngp_static"]

#: Default splitting quality: ``alpha = 1 - 1/e`` makes the Appendix A
#: logarithm the natural log, which best matches the paper's Table 2
#: analytic-trigger column (see analysis/optimal_trigger.py).
DEFAULT_ALPHA = 1.0 - 1.0 / 2.718281828459045


def _efficiency(
    total_work: float,
    n_pes: int,
    x: float,
    v_of_p: float,
    *,
    u_calc: float,
    t_lb: float,
    alpha: float,
    delta: float,
) -> float:
    check_positive(total_work, "total_work")
    check_positive(n_pes, "n_pes")
    check_probability(x, "x", inclusive=False)
    check_positive(u_calc, "u_calc")
    check_positive(t_lb, "t_lb")
    if not 0.0 <= delta <= 1.0 - x:
        raise ValueError(f"delta must be in [0, 1-x] = [0, {1 - x}], got {delta}")
    t_calc = total_work * u_calc
    overhead = n_pes * v_of_p * work_log(total_work, alpha) * t_lb
    return t_calc / (t_calc / (x + delta) + overhead)


def predicted_efficiency_gp_static(
    total_work: float,
    n_pes: int,
    x: float,
    *,
    u_calc: float = 0.030,
    t_lb: float = 0.013,
    alpha: float = DEFAULT_ALPHA,
    delta: float = 0.0,
) -> float:
    """Equation 12: efficiency bound of GP-S^x."""
    return _efficiency(
        total_work,
        n_pes,
        x,
        v_bound_gp(x),
        u_calc=u_calc,
        t_lb=t_lb,
        alpha=alpha,
        delta=delta,
    )


def predicted_efficiency_ngp_static(
    total_work: float,
    n_pes: int,
    x: float,
    *,
    u_calc: float = 0.030,
    t_lb: float = 0.013,
    alpha: float = DEFAULT_ALPHA,
    delta: float = 0.0,
) -> float:
    """Equation 15: efficiency bound of nGP-S^x."""
    return _efficiency(
        total_work,
        n_pes,
        x,
        v_bound_ngp(x, total_work, alpha=alpha),
        u_calc=u_calc,
        t_lb=t_lb,
        alpha=alpha,
        delta=delta,
    )
