"""Scaling-law fitting and model selection.

Upgrades :func:`repro.analysis.isoefficiency.growth_exponent` from a
single fixed model to least-squares fits of the candidate scaling laws
the paper's Table 6 distinguishes:

    W ~ c * P                 ("P")
    W ~ c * P log P           ("PlogP")
    W ~ c * P log^3 P         ("Plog3P")     (GP on a hypercube)
    W ~ c * P^1.5 log P       ("P1.5logP")   (GP on a mesh)
    W ~ c * P^2               ("P2")

``select_model`` fits each in log space and returns them ranked by
residual error, so a bench can assert not just "the exponent is ~1"
but "P log P explains the curve better than P^2 does".
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["ScalingFit", "CANDIDATE_MODELS", "fit_model", "select_model"]

CANDIDATE_MODELS: dict[str, Callable[[float], float]] = {
    "P": lambda p: p,
    "PlogP": lambda p: p * math.log2(p),
    "Plog3P": lambda p: p * math.log2(p) ** 3,
    "P1.5logP": lambda p: p**1.5 * math.log2(p),
    "P2": lambda p: p * p,
}


@dataclass(frozen=True)
class ScalingFit:
    """One candidate model's fit to an isoefficiency curve.

    ``exponent`` is the slope of ``log W`` against ``log f(P)`` (1.0
    means the model's shape is exact up to a constant); ``rmse`` is the
    log-space residual after fitting slope and intercept.
    """

    model: str
    exponent: float
    intercept: float
    rmse: float

    def predict(self, p: float) -> float:
        """W predicted for machine size ``p``."""
        f = CANDIDATE_MODELS[self.model]
        return math.exp(self.intercept) * f(p) ** self.exponent


def fit_model(points: Sequence[tuple[float, float]], model: str) -> ScalingFit:
    """Least-squares fit of ``log W = a + b log f(P)`` for one model."""
    if model not in CANDIDATE_MODELS:
        raise ValueError(f"model must be one of {sorted(CANDIDATE_MODELS)}, got {model!r}")
    if len(points) < 2:
        raise ValueError("need at least two points to fit a scaling law")
    f = CANDIDATE_MODELS[model]
    xs = np.log([f(p) for p, _ in points])
    ys = np.log([w for _, w in points])
    slope, intercept = np.polyfit(xs, ys, 1)
    resid = ys - (slope * xs + intercept)
    rmse = float(np.sqrt(np.mean(resid**2)))
    return ScalingFit(model=model, exponent=float(slope), intercept=float(intercept), rmse=rmse)


def select_model(
    points: Sequence[tuple[float, float]],
    *,
    models: Sequence[str] | None = None,
) -> list[ScalingFit]:
    """Fit all candidates; return them ranked by shape fidelity.

    Every power-law candidate fits log-log data with near-zero residual
    if the exponent is free, so ranking uses how close each model's
    exponent is to 1 (ties broken by residual): the best model is the
    one whose *nominal shape* needs the least correction.
    """
    names = list(models) if models is not None else list(CANDIDATE_MODELS)
    fits = [fit_model(points, m) for m in names]
    fits.sort(key=lambda f: (abs(f.exponent - 1.0), f.rmse))
    return fits
