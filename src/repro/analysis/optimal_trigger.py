"""The optimal static trigger x_o (Section 4.3, Equation 18).

Maximizing the Equation 17 efficiency of GP-S^x over ``x`` gives

    x_o = 1 / ( sqrt( P * t_lb * log_{1/(1-alpha)} W / (W * U_calc) ) + 1 )

With the paper's CM-2 constants (``t_lb/U_calc = 13/30``, ``P = 8192``)
and ``alpha = 1 - 1/e`` (natural-log splitting cascade), this reproduces
the analytic-trigger column of Table 2: x_o = 0.82 / 0.89 / 0.92 / 0.95
for the four problem sizes.
"""

from __future__ import annotations

import math

from repro.analysis.bounds import work_log
from repro.analysis.efficiency import DEFAULT_ALPHA
from repro.util.validation import check_positive

__all__ = ["optimal_static_trigger", "predicted_optimal_efficiency"]


def optimal_static_trigger(
    total_work: float,
    n_pes: int,
    *,
    u_calc: float = 0.030,
    t_lb: float = 0.013,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Equation 18: the threshold x_o that maximizes GP-S^x efficiency.

    Monotonicity (all shown in Section 4.3): x_o rises with ``W`` (larger
    problems tolerate more balancing), falls with ``P``, falls as
    ``t_lb/U_calc`` grows, and falls as the splitter worsens (``alpha``
    down).
    """
    check_positive(total_work, "total_work")
    check_positive(n_pes, "n_pes")
    check_positive(u_calc, "u_calc")
    check_positive(t_lb, "t_lb")
    ratio = (n_pes * t_lb * work_log(total_work, alpha)) / (total_work * u_calc)
    return 1.0 / (math.sqrt(ratio) + 1.0)


def predicted_optimal_efficiency(
    total_work: float,
    n_pes: int,
    *,
    u_calc: float = 0.030,
    t_lb: float = 0.013,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Equation 17 evaluated at x_o: the best efficiency GP-S^x can reach.

    With ``delta = 0`` the Equation 17 denominator is
    ``1/x + overhead_ratio / (1-x)``; evaluating it at the optimum rather
    than using a simplified closed form avoids algebra slips.
    """
    x_o = optimal_static_trigger(
        total_work, n_pes, u_calc=u_calc, t_lb=t_lb, alpha=alpha
    )
    ratio = (n_pes * t_lb * work_log(total_work, alpha)) / (total_work * u_calc)
    return 1.0 / (1.0 / x_o + ratio / (1.0 - x_o))
