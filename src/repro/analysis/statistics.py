"""Multi-seed aggregation for experiment stability.

The paper reports single CM-2 runs; a reproduction should show its
numbers are not seed lottery.  ``replicate`` runs one configuration
across seeds and returns per-metric summaries (mean, sd, min/max, and a
normal-approximation confidence half-width), which the variance bench
uses to bound the spread of every headline metric.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.metrics import RunMetrics

__all__ = ["MetricSummary", "summarize", "replicate"]


@dataclass(frozen=True)
class MetricSummary:
    """Summary statistics of one metric over replicated runs."""

    name: str
    n: int
    mean: float
    sd: float
    minimum: float
    maximum: float

    @property
    def ci95_halfwidth(self) -> float:
        """Normal-approximation 95% half-width of the mean."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.sd / math.sqrt(self.n)

    @property
    def relative_spread(self) -> float:
        """(max - min) / |mean| — the headline stability number."""
        if self.mean == 0:
            return 0.0
        return (self.maximum - self.minimum) / abs(self.mean)


def summarize(name: str, values: Sequence[float]) -> MetricSummary:
    """Summary statistics of ``values`` (requires at least one value)."""
    if not values:
        raise ValueError("summarize requires at least one value")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return MetricSummary(
        name=name,
        n=n,
        mean=mean,
        sd=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
    )


def replicate(
    run: Callable[[int], RunMetrics],
    seeds: Sequence[int],
) -> dict[str, MetricSummary]:
    """Run ``run(seed)`` for every seed and summarize the key metrics.

    Returns summaries for ``efficiency``, ``n_expand``, ``n_lb`` and
    ``n_transfers``.
    """
    if not seeds:
        raise ValueError("replicate requires at least one seed")
    results = [run(seed) for seed in seeds]
    return {
        "efficiency": summarize("efficiency", [r.efficiency for r in results]),
        "n_expand": summarize("n_expand", [float(r.n_expand) for r in results]),
        "n_lb": summarize("n_lb", [float(r.n_lb) for r in results]),
        "n_transfers": summarize(
            "n_transfers", [float(r.n_transfers) for r in results]
        ),
    }
