"""Isoefficiency functions — analytic (Table 6) and empirical (Figs 4/7).

Analytic: the paper builds every isoefficiency from Equation 10,

    W = O( P * V(P) * log P * t_lb(P) )

plugging in the matching scheme's V(P) and the architecture's t_lb:
GP on a hypercube gives ``O(P log^3 P)``, GP on a mesh ``O(P^1.5 log P)``,
GP on the CM-2 (constant t_lb) ``O(P log P)``, and nGP picks up the extra
``(log)^{(2x-1)/(1-x)}`` factor.

Empirical: given a grid of (P, W, E) measurements, interpolate — at each
P — the W required to hit a target efficiency, then check how that
required W grows: fitting ``log W`` against ``log(P log P)`` with slope
~1 confirms the O(P log P) isoefficiency the paper measures on the CM-2.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.bounds import v_bound_gp, v_bound_ngp
from repro.util.validation import check_probability

__all__ = [
    "analytic_isoefficiency",
    "isoefficiency_table",
    "isoefficiency_points",
    "growth_exponent",
]

_ARCH_TLB: dict[str, Callable[[float], float]] = {
    "cm2": lambda p: 1.0,
    "hypercube": lambda p: math.log2(p) ** 2,
    "mesh": lambda p: math.sqrt(p),
}

_ARCH_LABEL: dict[str, str] = {
    "cm2": "O(1)",
    "hypercube": "O(log^2 P)",
    "mesh": "O(sqrt(P))",
}


def analytic_isoefficiency(
    matching: str, architecture: str, *, x: float = 0.9, reference_work: float = 1e6
) -> tuple[Callable[[float], float], str]:
    """Equation 10 instantiated: returns ``(f, label)``.

    ``f(P)`` is the isoefficiency function up to a constant;``label`` is
    the Table 6-style asymptotic string.  For nGP the V(P) bound depends
    on W; ``reference_work`` pins the ``log W`` factor so ``f`` stays a
    one-variable function (the paper makes the same move when it rewrites
    ``log W`` as ``log P`` below Equation 10).
    """
    check_probability(x, "x")
    if architecture not in _ARCH_TLB:
        raise ValueError(
            f"architecture must be one of {sorted(_ARCH_TLB)}, got {architecture!r}"
        )
    tlb = _ARCH_TLB[architecture]

    if matching == "GP":
        v: Callable[[float], float] = lambda p: float(v_bound_gp(x))
        v_label = ""
    elif matching == "nGP":
        v = lambda p: v_bound_ngp(x, reference_work)
        exp = (2 * x - 1) / (1 - x)
        v_label = f" * log^{exp:.2g}(W)" if x > 0.5 else ""
    else:
        raise ValueError(f"matching must be 'GP' or 'nGP', got {matching!r}")

    def f(p: float) -> float:
        return p * v(p) * max(1.0, math.log2(p)) * tlb(p)

    label = f"O(P log P * {_ARCH_LABEL[architecture]}{v_label})"
    return f, label


def isoefficiency_table(*, x: float = 0.9) -> list[tuple[str, str, str]]:
    """Table 6: (architecture, scheme, isoefficiency) rows.

    Rendered with the paper's simplifications: on the hypercube,
    GP-S^x -> O(P log^3 P); on the mesh, GP-S^x -> O(P^1.5 log P); nGP
    carries the extra ``log^{(2x-1)/(1-x)}`` factor.
    """
    check_probability(x, "x")
    exp = (2 * x - 1) / (1 - x) if x > 0.5 else 0.0
    ngp_factor = f" log^{{{exp:.2g}}} W" if exp else ""
    return [
        ("hypercube", "nGP-S^x", f"O(P log^3 P{ngp_factor})"),
        ("hypercube", "GP-S^x", "O(P log^3 P)"),
        ("mesh", "nGP-S^x", f"O(P^1.5 log P{ngp_factor})"),
        ("mesh", "GP-S^x", "O(P^1.5 log P)"),
        ("cm2", "nGP-S^x", f"O(P log P{ngp_factor})"),
        ("cm2", "GP-S^x", "O(P log P)"),
    ]


# -- empirical isoefficiency --------------------------------------------- #


@dataclass(frozen=True)
class _Record:
    n_pes: int
    total_work: float
    efficiency: float


def isoefficiency_points(
    records: Iterable[tuple[int, float, float]],
    target_efficiency: float,
) -> list[tuple[int, float]]:
    """The empirical isoefficiency curve (Figures 4 and 7).

    Parameters
    ----------
    records:
        ``(P, W, E)`` measurements from a run grid; multiple W per P.
    target_efficiency:
        The curve's efficiency level.

    Returns
    -------
    ``(P, W_required)`` pairs for every P whose measurements bracket the
    target — ``W_required`` interpolated linearly in ``(E, log W)``.
    P values that never reach the target (or never fall below it) are
    omitted, exactly as unreachable points are absent from the paper's
    plots.
    """
    check_probability(target_efficiency, "target_efficiency", inclusive=False)
    recs = [_Record(int(p), float(w), float(e)) for p, w, e in records]
    by_p: dict[int, list[_Record]] = {}
    for r in recs:
        by_p.setdefault(r.n_pes, []).append(r)

    points: list[tuple[int, float]] = []
    for p, rows in sorted(by_p.items()):
        rows.sort(key=lambda r: r.total_work)
        effs = np.array([r.efficiency for r in rows])
        logws = np.log([r.total_work for r in rows])
        # Efficiency rises with W at fixed P (the premise of isoefficiency
        # analysis); tolerate local noise by scanning for a bracketing
        # adjacent pair.
        for i in range(len(rows) - 1):
            lo, hi = effs[i], effs[i + 1]
            if (lo - target_efficiency) * (hi - target_efficiency) <= 0 and lo != hi:
                frac = (target_efficiency - lo) / (hi - lo)
                points.append((p, float(np.exp(logws[i] + frac * (logws[i + 1] - logws[i])))))
                break
    return points


def growth_exponent(
    points: Sequence[tuple[int, float]],
    *,
    model: str = "PlogP",
) -> float:
    """Fit ``log W = a + b * log(f(P))`` over an isoefficiency curve.

    ``model`` chooses ``f``: ``"PlogP"`` (the paper's CM-2 expectation),
    ``"P"`` (linear lower bound) or ``"P2"``.  A returned exponent near
    1.0 under ``"PlogP"`` is the Figure 4/7 conclusion: the isoefficiency
    is O(P log P).
    """
    if len(points) < 2:
        raise ValueError("need at least two isoefficiency points to fit growth")
    models: dict[str, Callable[[float], float]] = {
        "PlogP": lambda p: p * math.log2(p),
        "P": lambda p: p,
        "P2": lambda p: p * p,
    }
    if model not in models:
        raise ValueError(f"model must be one of {sorted(models)}, got {model!r}")
    f = models[model]
    xs = np.log([f(p) for p, _ in points])
    ys = np.log([w for _, w in points])
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)
