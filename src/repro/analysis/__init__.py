"""Scalability analysis: the paper's closed-form results.

- :mod:`repro.analysis.bounds` — Appendix A/B: transfer upper bounds and
  the V(P) phase bounds for GP and nGP.
- :mod:`repro.analysis.efficiency` — the efficiency expressions of
  Section 4 (Equations 9, 12, 15, 17).
- :mod:`repro.analysis.optimal_trigger` — the optimal static trigger x_o
  (Equation 18).
- :mod:`repro.analysis.isoefficiency` — Table 6's analytic isoefficiency
  functions and extraction of empirical isoefficiency curves from run
  grids (Figures 4 and 7).
"""

from repro.analysis.bounds import (
    work_log,
    transfers_upper_bound,
    v_bound_gp,
    v_bound_ngp,
    dk_overhead_within_bound,
)
from repro.analysis.efficiency import (
    predicted_efficiency_gp_static,
    predicted_efficiency_ngp_static,
)
from repro.analysis.optimal_trigger import optimal_static_trigger
from repro.analysis.isoefficiency import (
    analytic_isoefficiency,
    isoefficiency_table,
    isoefficiency_points,
    growth_exponent,
)
from repro.analysis.statistics import MetricSummary, summarize, replicate
from repro.analysis.regression import (
    ScalingFit,
    CANDIDATE_MODELS,
    fit_model,
    select_model,
)

__all__ = [
    "work_log",
    "transfers_upper_bound",
    "v_bound_gp",
    "v_bound_ngp",
    "dk_overhead_within_bound",
    "predicted_efficiency_gp_static",
    "predicted_efficiency_ngp_static",
    "optimal_static_trigger",
    "analytic_isoefficiency",
    "isoefficiency_table",
    "isoefficiency_points",
    "growth_exponent",
    "MetricSummary",
    "summarize",
    "replicate",
    "ScalingFit",
    "CANDIDATE_MODELS",
    "fit_model",
    "select_model",
]
