"""Transfer-count bounds (Appendices A and B) and the D_K guarantee.

Appendix A: with alpha-splitting, after ``V(P)`` transfers every
processor's largest piece shrinks by at least ``(1 - alpha)``; hence the
total number of transfers is at most ``V(P) * log_{1/(1-alpha)} W``.

Appendix B / Section 4.1: the phase bound ``V(P)`` — how many LB phases
until every busy processor has shared work at least once — is
``ceil(1/(1-x))`` for GP and ``(log W)^{(2x-1)/(1-x)}`` for nGP when
``x > 0.5`` (both are 1 when ``x <= 0.5``).

Section 6.2: the D_K trigger's idling-plus-balancing overhead is within a
factor 2 of the optimal static trigger's.
"""

from __future__ import annotations

import math

from repro.core.metrics import RunMetrics
from repro.util.validation import check_probability, check_positive

__all__ = [
    "work_log",
    "transfers_upper_bound",
    "v_bound_gp",
    "v_bound_ngp",
    "dk_overhead_within_bound",
]


def work_log(total_work: float, alpha: float) -> float:
    """``log_{1/(1-alpha)} W`` — the depth of the alpha-splitting cascade.

    The number of successive splits needed to reduce a piece of work of
    size ``W`` below one node when each split removes at least an
    ``alpha`` fraction.
    """
    check_positive(total_work, "total_work")
    check_probability(alpha, "alpha", inclusive=False)
    return math.log(total_work) / math.log(1.0 / (1.0 - alpha))


def v_bound_gp(x: float) -> int:
    """GP phase bound: ``V(P) = ceil(1/(1-x))`` (Section 4.1).

    The global pointer rotates donors, so after that many phases every
    block of ``(1-x) P`` busy processors has donated.
    """
    check_probability(x, "x")
    if x >= 1.0:
        raise ValueError("x must be < 1 for the GP bound to be finite")
    # Round away float noise (1/(1-0.9) = 10.000000000000002) before the
    # ceiling, so exact reciprocals stay exact.
    return math.ceil(round(1.0 / (1.0 - x), 9))


def v_bound_ngp(x: float, total_work: float, *, alpha: float = 0.5) -> float:
    """nGP phase bound: ``(log W)^{(2x-1)/(1-x)}`` for ``x > 0.5``.

    For ``x <= 0.5`` every busy processor donates in every phase, so the
    bound is 1 (Section 4.2).  The logarithm base is the alpha-splitting
    base of Appendix A.
    """
    check_probability(x, "x")
    if x <= 0.5:
        return 1.0
    if x >= 1.0:
        raise ValueError("x must be < 1 for the nGP bound to be finite")
    exponent = (2.0 * x - 1.0) / (1.0 - x)
    return max(1.0, work_log(total_work, alpha)) ** exponent


def transfers_upper_bound(
    v_of_p: float, total_work: float, *, alpha: float
) -> float:
    """Appendix A: total transfers ``<= V(P) * log_{1/(1-alpha)} W``."""
    check_positive(v_of_p, "v_of_p")
    return v_of_p * work_log(total_work, alpha)


def dk_overhead_within_bound(
    dk: RunMetrics, optimal_static: RunMetrics, *, factor: float = 2.0, slack: float = 0.0
) -> bool:
    """Section 6.2: ``T_idle + T_lb`` under D_K is within ``factor`` of
    the optimal static trigger's.

    ``slack`` (processor-seconds) absorbs the discreteness of real runs —
    the proof's interpolated triggering functions ignore the one-cycle
    granularity of actual triggering.
    """
    dk_overhead = dk.ledger.t_idle + dk.ledger.t_lb
    opt_overhead = optimal_static.ledger.t_idle + optimal_static.ledger.t_lb
    return dk_overhead <= factor * opt_overhead + slack
