"""Typed per-cycle / per-phase / per-fault trace events and their sinks.

The paper's empirical story (Tables 3-5, Figure 8's busy-PE curves) is a
set of per-cycle time series.  This module gives those series a typed,
bounded representation: the scheduler, fault runtime and IDA* driver emit
:class:`TraceEvent` records into an :class:`EventSink`, and the two sink
implementations bound memory explicitly —

- :class:`RingBufferSink` keeps the most recent ``maxlen`` events in a
  ring (``maxlen=None`` is the explicit unbounded escape hatch) and
  counts what it evicted, so a truncated trace is always *known* to be
  truncated;
- :class:`JsonlSink` streams every event to a file as one JSON object
  per line, keeping O(1) memory regardless of run length — the backend
  for post-hoc Figure-8-style reconstruction of arbitrarily long runs.

Events are plain frozen dataclasses; ``to_dict()`` gives the stable JSON
schema documented in ``docs/observability.md``.  Emission is strictly
observational: no sink ever touches workload state, machine ledgers or
RNG streams, so a traced run is bit-identical to an untraced one (the
purity suite asserts this).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Iterator

__all__ = [
    "TraceEvent",
    "CycleEvent",
    "LBPhaseEvent",
    "RecoveryEvent",
    "FaultEvent",
    "IterationEvent",
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "event_from_dict",
    "register_event_type",
    "read_jsonl_events",
]

#: Default ring capacity — generous for any paper-scale run (the largest
#: Table 2 cell is ~2.1k cycles) while bounding a runaway grid cell.
DEFAULT_MAXLEN = 1 << 16


@dataclass(frozen=True)
class TraceEvent:
    """Base of every trace event: what happened and on which cycle.

    ``cycle`` counts node-expansion cycles on the machine's cumulative
    axis (so events from later IDA* iterations keep increasing).
    """

    cycle: int

    #: Discriminator used by ``to_dict`` / :func:`event_from_dict`.
    kind = "event"

    def to_dict(self) -> dict:
        """The event as a JSON-ready dict (``kind`` first)."""
        d = {"kind": self.kind}
        d.update(asdict(self))
        return d


@dataclass(frozen=True)
class CycleEvent(TraceEvent):
    """One node-expansion cycle: Figure 8's raw sample.

    ``busy`` is ``A`` (PEs with splittable work) after the cycle,
    ``expanding`` the PEs that popped a node, and ``r1``/``r2`` the two
    Figure 1 trigger areas observed after the cycle.
    """

    busy: int
    expanding: int
    r1: float
    r2: float

    kind = "cycle"


@dataclass(frozen=True)
class LBPhaseEvent(TraceEvent):
    """One load-balancing phase: rounds matched, work actually moved,
    and the phase's simulated duration ``dt`` (seconds of ``T_par``)."""

    rounds: int
    transfers: int
    dt: float

    kind = "lb"


@dataclass(frozen=True)
class RecoveryEvent(TraceEvent):
    """One fault-recovery phase re-donating quarantined frontiers."""

    rounds: int
    transfers: int

    kind = "recovery"


@dataclass(frozen=True)
class FaultEvent(TraceEvent):
    """One fault-layer incident on PE ``pe``.

    ``event`` is ``"death"`` (fail-stop), ``"quarantine"`` (``entries``
    nodes parked), ``"release"`` (``entries`` nodes re-donated), or
    ``"perturb"`` (``entries`` = dropped + duplicated transfers in one
    LB round).
    """

    event: str
    pe: int
    entries: int = 0

    kind = "fault"


@dataclass(frozen=True)
class IterationEvent(TraceEvent):
    """One IDA* iteration boundary: the bound it ran and what it expanded."""

    bound: int
    expanded: int

    kind = "iteration"


_EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (CycleEvent, LBPhaseEvent, RecoveryEvent, FaultEvent, IterationEvent)
}


def register_event_type(cls: type[TraceEvent]) -> type[TraceEvent]:
    """Register a :class:`TraceEvent` subclass with the JSONL codec.

    Layers above ``repro.obs`` (e.g. the serve layer's job-lifecycle
    events) define their own event kinds; registering them here lets
    :func:`event_from_dict` / :func:`read_jsonl_events` round-trip a
    stream that interleaves them with the built-in cycle/LB events.
    Usable as a class decorator; re-registering the same class is a
    no-op, but a *different* class under an existing kind is refused.
    """
    kind = getattr(cls, "kind", None)
    if not isinstance(kind, str) or not kind:
        raise ValueError(f"{cls.__name__} needs a non-empty string 'kind'")
    current = _EVENT_TYPES.get(kind)
    if current is not None and current is not cls:
        raise ValueError(
            f"event kind {kind!r} is already registered to {current.__name__}"
        )
    _EVENT_TYPES[kind] = cls
    return cls


def event_from_dict(data: dict) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from its ``to_dict`` form."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    return cls(**data)


class EventSink:
    """Destination of trace events.  Subclasses implement :meth:`emit`."""

    #: Events handed to :meth:`emit` over the sink's lifetime.
    n_emitted: int = 0

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""


class RingBufferSink(EventSink):
    """Keep the most recent ``maxlen`` events; count what fell off.

    ``maxlen=None`` is the explicit unbounded escape hatch — the caller
    owns the memory consequence.
    """

    def __init__(self, maxlen: int | None = DEFAULT_MAXLEN) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1 or None, got {maxlen}")
        self.maxlen = maxlen
        self._events: deque[TraceEvent] = deque(maxlen=maxlen)
        self.n_emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.n_emitted += 1

    @property
    def dropped(self) -> int:
        """Events evicted by the ring (0 while under capacity)."""
        return self.n_emitted - len(self._events)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """The retained events, oldest first (optionally one ``kind``)."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class JsonlSink(EventSink):
    """Stream every event to ``path`` as one JSON line; O(1) memory.

    The file handle opens lazily on first emit and is dropped on pickle
    (checkpointed runs reopen in append mode on the next emit), so a
    scheduler carrying a streaming sink still checkpoints cleanly.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.n_emitted = 0
        self._fh: IO[str] | None = None

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        json.dump(event.to_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.n_emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_fh"] = None
        return state


def read_jsonl_events(path: str | Path) -> list[TraceEvent]:
    """Load the events a :class:`JsonlSink` streamed to ``path``."""
    events: list[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events
