"""repro.obs — structured tracing, metrics and profiling for runs.

Three independent, composable observers (see ``docs/observability.md``):

- **events** (:mod:`repro.obs.events`) — typed per-cycle / per-LB-phase
  / per-fault records into a bounded ring buffer or a streaming-JSONL
  file, the raw series behind Figure 8;
- **metrics** (:mod:`repro.obs.registry`) — counters/gauges/histograms
  (nodes expanded, donations per matcher, checkpoint bytes, per-scheme
  ledger lines) snapshotable to JSON and rendered by
  ``python -m repro stats``;
- **profiler** (:mod:`repro.obs.profile`) — wall-clock span timers
  around the host kernels, exported as Chrome-trace JSON for Perfetto
  via ``python -m repro trace``.

An :class:`Observability` bundle carries any subset of the three into
``Scheduler(obs=...)`` / ``ParallelIDAStar(obs=...)`` / ``run_grid``.
The contract for all of them is **purity**: observation never changes
what a run computes — ``RunMetrics`` with everything enabled is
bit-identical to an instrumentation-off run (asserted by
``tests/obs/test_purity.py`` and
:func:`repro.lint.runtime.check_observation_purity`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import (
    CycleEvent,
    EventSink,
    FaultEvent,
    IterationEvent,
    JsonlSink,
    LBPhaseEvent,
    RecoveryEvent,
    RingBufferSink,
    TraceEvent,
    event_from_dict,
    read_jsonl_events,
    register_event_type,
)
from repro.obs.profile import (
    Profiler,
    activate,
    active_profiler,
    deactivate,
    profiled,
    span,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_snapshot_identity,
    load_snapshot,
    record_run,
    render_snapshot,
)

__all__ = [
    "Observability",
    # events
    "TraceEvent",
    "CycleEvent",
    "LBPhaseEvent",
    "RecoveryEvent",
    "FaultEvent",
    "IterationEvent",
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "event_from_dict",
    "register_event_type",
    "read_jsonl_events",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "record_run",
    "load_snapshot",
    "render_snapshot",
    "check_snapshot_identity",
    # profiling
    "Profiler",
    "span",
    "profiled",
    "activate",
    "deactivate",
    "active_profiler",
]


@dataclass
class Observability:
    """The observers one run should report to (any subset may be None).

    Pass to ``Scheduler(obs=...)`` or ``ParallelIDAStar(obs=...)``;
    ``run_grid`` takes the registry directly.  The bundle is deliberately
    not checkpointed — a resumed run re-attaches fresh observers.
    """

    events: EventSink | None = None
    metrics: MetricsRegistry | None = None
    profiler: Profiler | None = None

    def emit(self, event: TraceEvent) -> None:
        """Forward one event to the sink, if any."""
        if self.events is not None:
            self.events.emit(event)

    def close(self) -> None:
        """Flush the event sink (streaming backends buffer)."""
        if self.events is not None:
            self.events.close()
