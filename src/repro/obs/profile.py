"""Lightweight span timers and Chrome-trace export.

The simulated machine's ledger answers "how much *simulated* time did
the run cost"; this module answers the orthogonal operational question
"where does *host* kernel time actually go", so a BENCH_* regression can
be attributed to a specific kernel (arena expansion, scans, the LB
matcher) instead of guessed at.

Usage::

    profiler = Profiler()
    with profiled(profiler):
        ParallelIDAStar(...).run()
    profiler.save_chrome_trace("trace.json")   # open in Perfetto / chrome://tracing

Hot code marks its kernels with :func:`span`::

    with span("expand.search.arena"):
        ... the vectorized kernel ...

``span`` reads one module global; with no active profiler it returns a
shared no-op context, so instrumentation costs a dict lookup and a
falsy check per call — cheap enough to leave in the production kernels
permanently.  Wall-clock reads live only here, never in the lock-step
subsystems (lint rule R002), and never touch simulated state: profiled
runs are bit-identical to unprofiled ones.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = [
    "Profiler",
    "SpanRecord",
    "span",
    "profiled",
    "activate",
    "deactivate",
    "active_profiler",
]

#: Default cap on retained spans; a span beyond it is counted, not kept.
DEFAULT_MAX_SPANS = 1 << 20


class SpanRecord(tuple):
    """One finished span: ``(name, cat, start_s, dur_s)``.

    A tuple subclass (not a dataclass) keeps per-span overhead minimal;
    named accessors cover readability where it matters.
    """

    __slots__ = ()

    @property
    def name(self) -> str:
        return self[0]

    @property
    def cat(self) -> str:
        return self[1]

    @property
    def start(self) -> float:
        return self[2]

    @property
    def duration(self) -> float:
        return self[3]


class _ActiveSpan:
    """Context manager produced by :meth:`Profiler.span`."""

    __slots__ = ("_profiler", "_name", "_cat", "_t0")

    def __init__(self, profiler: "Profiler", name: str, cat: str) -> None:
        self._profiler = profiler
        self._name = name
        self._cat = cat

    def __enter__(self) -> "_ActiveSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        t1 = time.perf_counter()
        self._profiler._record(self._name, self._cat, self._t0, t1 - self._t0)


class _NullSpan:
    """Shared no-op context used when no profiler is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Profiler:
    """Collects spans; exports Chrome-trace JSON and per-name totals.

    ``max_spans`` bounds memory like the event ring does: spans past the
    cap still count toward :meth:`totals` but are not retained for the
    trace file (``n_dropped`` reports how many).
    """

    def __init__(self, *, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self.epoch = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self.n_spans = 0
        self.n_dropped = 0
        self._totals: dict[str, list[float]] = {}  # name -> [count, seconds]

    def span(self, name: str, cat: str = "kernel") -> _ActiveSpan:
        """A context manager timing one named span."""
        return _ActiveSpan(self, name, cat)

    def _record(self, name: str, cat: str, t0: float, dur: float) -> None:
        self.n_spans += 1
        agg = self._totals.get(name)
        if agg is None:
            self._totals[name] = [1, dur]
        else:
            agg[0] += 1
            agg[1] += dur
        if len(self.spans) < self.max_spans:
            self.spans.append(SpanRecord((name, cat, t0 - self.epoch, dur)))
        else:
            self.n_dropped += 1

    # -- aggregation -------------------------------------------------------

    def totals(self) -> dict[str, dict[str, float]]:
        """Per-span-name ``{"count": n, "seconds": s}`` over *all* spans
        (including any dropped past ``max_spans``)."""
        return {
            name: {"count": int(c), "seconds": s}
            for name, (c, s) in sorted(self._totals.items())
        }

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span named ``name`` (0.0 if none)."""
        agg = self._totals.get(name)
        return agg[1] if agg is not None else 0.0

    # -- export ------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The retained spans as a Chrome-trace / Perfetto JSON object.

        Complete events (``ph == "X"``) with microsecond timestamps on
        one pid/tid; nesting renders as flame-graph stacking.
        """
        events = [
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "pid": os.getpid(),
                "tid": 0,
            }
            for s in self.spans
        ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.profile",
                "n_spans": self.n_spans,
                "n_dropped": self.n_dropped,
            },
        }

    def save_chrome_trace(self, path: str | Path) -> Path:
        """Write :meth:`chrome_trace` to ``path`` atomically."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.chrome_trace(), indent=1) + "\n")
        os.replace(tmp, path)
        return path

    def render_totals(self) -> str:
        """Per-kernel summary table, widest-total first."""
        totals = self.totals()
        if not totals:
            return "(no spans recorded)"
        order = sorted(totals, key=lambda n: -totals[n]["seconds"])
        width = max(len(n) for n in order)
        lines = [f"{'span':<{width}}  {'count':>8}  {'total':>10}"]
        for name in order:
            row = totals[name]
            lines.append(
                f"{name:<{width}}  {row['count']:>8d}  {row['seconds'] * 1e3:>8.2f}ms"
            )
        if self.n_dropped:
            lines.append(f"({self.n_dropped} spans past max_spans kept only in totals)")
        return "\n".join(lines)


#: The process-wide active profiler ``span()`` reports to (None = off).
_ACTIVE: Profiler | None = None


def active_profiler() -> Profiler | None:
    """The currently active profiler, if any."""
    return _ACTIVE


def activate(profiler: Profiler) -> None:
    """Make ``profiler`` the destination of :func:`span` timings."""
    global _ACTIVE
    _ACTIVE = profiler


def deactivate() -> None:
    """Disable :func:`span` collection."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def profiled(profiler: Profiler) -> Iterator[Profiler]:
    """Activate ``profiler`` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous


def span(name: str, cat: str = "kernel"):
    """A span context on the active profiler (no-op when none is active)."""
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_SPAN
    return profiler.span(name, cat)
