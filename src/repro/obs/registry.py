"""Counters, gauges and histograms for scheduled runs.

A :class:`MetricsRegistry` aggregates what the paper's tables report —
nodes expanded, LB phases, donations per matcher, the four ledger lines
— plus operational counters the tables never needed (checkpoint bytes,
grid retries).  Instruments are named Prometheus-style with optional
``{key=value}`` labels, snapshot to plain JSON, and render as the table
``python -m repro stats`` prints.

The registry must *reproduce* the ledger identity

    P * T_par == T_calc + T_idle + T_lb + T_recovery

for every run it records: :func:`record_run` copies the ledger lines
verbatim and :func:`check_snapshot_identity` re-asserts the identity on
a loaded snapshot, so a snapshot that fails it was corrupted, not
measured.

Recording is strictly observational — instruments only ever *read*
:class:`~repro.core.metrics.RunMetrics`; the purity suite asserts a run
recorded into a registry is bit-identical to an unrecorded one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.core.metrics import RunMetrics

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "record_run",
    "load_snapshot",
    "render_snapshot",
    "check_snapshot_identity",
]

#: Default histogram bucket upper bounds (work counts / transfer sizes).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0)


def _qualified(name: str, labels: Mapping[str, str] | None) -> str:
    """Canonical instrument key: ``name{k1=v1,k2=v2}`` with sorted keys."""
    if not name:
        raise ValueError("instrument name must be non-empty")
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """Monotonically increasing count (events, nodes, bytes)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (ledger lines, efficiencies, sizes)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bucket distribution (cumulative counts, Prometheus-style).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; one
    implicit ``+Inf`` bucket at the end catches the rest.
    """

    name: str
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram {self.name} buckets must be sorted")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return, so call
    sites never need to pre-register; labels become part of the key.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        key = _qualified(name, labels)
        if key not in self._counters:
            self._counters[key] = Counter(key)
        return self._counters[key]

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        key = _qualified(name, labels)
        if key not in self._gauges:
            self._gauges[key] = Gauge(key)
        return self._gauges[key]

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = _qualified(name, labels)
        if key not in self._histograms:
            self._histograms[key] = Histogram(key, tuple(buckets))
        return self._histograms[key]

    # -- persistence -------------------------------------------------------

    def snapshot(self) -> dict:
        """The full registry as one JSON-ready dict (sorted keys)."""
        return {
            "schema": 1,
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: {
                    "buckets": list(h.buckets),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "total": h.total,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def save_json(self, path: str | Path) -> Path:
        """Durably write :meth:`snapshot` to ``path`` (unique staged
        temp + fsyncs — safe against concurrent savers and crashes)."""
        from repro.util.atomic import atomic_write_text

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        return atomic_write_text(
            path, json.dumps(self.snapshot(), indent=1, sort_keys=True) + "\n"
        )

    def fold(self, other: "MetricsRegistry") -> None:
        """Merge ``other``'s instruments into this registry.

        Counters add, gauges take ``other``'s last-written value, and
        histograms merge bucket-for-bucket (instruments must agree on
        bucket bounds, which same-named instruments always do).  The
        serve layer uses this to fold each job's private registry into
        the service-wide one after the job finishes, so per-job
        recording never races across worker threads.
        """
        for key, counter in other._counters.items():
            self._counters.setdefault(key, Counter(key)).value += counter.value
        for key, gauge in other._gauges.items():
            self._gauges.setdefault(key, Gauge(key)).value = gauge.value
        for key, hist in other._histograms.items():
            mine = self._histograms.setdefault(
                key, Histogram(key, tuple(hist.buckets))
            )
            if tuple(mine.buckets) != tuple(hist.buckets):
                raise ValueError(
                    f"cannot fold histogram {key}: bucket bounds differ"
                )
            mine.count += hist.count
            mine.total += hist.total
            for i, n in enumerate(hist.bucket_counts):
                mine.bucket_counts[i] += n


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot written by :meth:`MetricsRegistry.save_json`."""
    from repro.errors import RecordStoreError

    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise RecordStoreError(f"cannot read metrics snapshot {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != 1:
        raise RecordStoreError(
            f"{path} is not a schema-1 metrics snapshot "
            f"(schema={payload.get('schema') if isinstance(payload, dict) else '?'})"
        )
    return payload


def record_run(registry: MetricsRegistry, metrics: "RunMetrics") -> None:
    """Fold one run's :class:`~repro.core.metrics.RunMetrics` into the
    registry — the per-scheme ledger lines Table 3-5 report, plus the
    machine counters."""
    scheme = {"scheme": metrics.scheme}
    registry.counter("runs_total").inc()
    registry.counter("search.nodes_expanded", scheme).inc(metrics.total_work)
    registry.counter("machine.expansion_cycles", scheme).inc(metrics.n_expand)
    registry.counter("lb.phases", scheme).inc(metrics.n_lb)
    registry.counter("lb.transfers", scheme).inc(metrics.n_transfers)
    registry.counter("lb.init_phases", scheme).inc(metrics.n_init_lb)
    registry.counter("recovery.phases", scheme).inc(metrics.n_recovery)
    ledger = metrics.ledger
    for line, value in (
        ("ledger.t_calc", ledger.t_calc),
        ("ledger.t_idle", ledger.t_idle),
        ("ledger.t_lb", ledger.t_lb),
        ("ledger.t_recovery", ledger.t_recovery),
        ("ledger.t_par", ledger.elapsed),
    ):
        registry.gauge(line, scheme).set(value)
    registry.gauge("run.n_pes", scheme).set(metrics.n_pes)
    registry.gauge("run.efficiency", scheme).set(metrics.efficiency)
    report = getattr(metrics, "faults", None)
    if report is not None:
        registry.counter("faults.pe_deaths", scheme).inc(report.pe_deaths)
        registry.counter("faults.nodes_quarantined", scheme).inc(
            report.nodes_quarantined
        )
        registry.counter("faults.nodes_recovered", scheme).inc(report.nodes_recovered)
        registry.counter("faults.transfers_dropped", scheme).inc(
            report.transfers_dropped
        )
        registry.counter("faults.transfers_duplicated", scheme).inc(
            report.transfers_duplicated
        )


def check_snapshot_identity(snapshot: dict, *, rel_tol: float = 1e-9) -> list[str]:
    """Verify ``P * T_par == T_calc + T_idle + T_lb + T_recovery`` per
    scheme in a snapshot; return the schemes that pass.

    Raises :class:`~repro.errors.RecordStoreError` naming the first
    scheme whose recorded ledger lines break the identity — the canonical
    invariant every registry snapshot must reproduce.
    """
    from repro.errors import RecordStoreError

    gauges = snapshot.get("gauges", {})
    schemes = sorted(
        key.split("scheme=", 1)[1].rstrip("}")
        for key in gauges
        if key.startswith("ledger.t_par{scheme=")
    )
    for scheme in schemes:
        label = f"{{scheme={scheme}}}"
        lhs = gauges[f"run.n_pes{label}"] * gauges[f"ledger.t_par{label}"]
        rhs = (
            gauges[f"ledger.t_calc{label}"]
            + gauges[f"ledger.t_idle{label}"]
            + gauges[f"ledger.t_lb{label}"]
            + gauges[f"ledger.t_recovery{label}"]
        )
        scale = max(abs(lhs), abs(rhs), 1.0)
        if abs(lhs - rhs) > rel_tol * scale:
            raise RecordStoreError(
                f"snapshot breaks the ledger identity for {scheme!r}: "
                f"P*T_par={lhs!r} != T_calc+T_idle+T_lb+T_recovery={rhs!r}"
            )
    return schemes


def _fmt(value: float) -> str:
    """Stable numeric rendering: integers stay integral, floats get 6
    significant digits."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_snapshot(snapshot: dict) -> str:
    """The human table ``python -m repro stats`` prints (deterministic)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for key in sorted(counters):
            lines.append(f"  {key:<{width}}  {_fmt(counters[key])}")
    if gauges:
        lines.append("gauges:")
        width = max(len(k) for k in gauges)
        for key in sorted(gauges):
            lines.append(f"  {key:<{width}}  {_fmt(gauges[key])}")
    if histograms:
        lines.append("histograms:")
        for key in sorted(histograms):
            h = histograms[key]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {key}  count={h['count']}  mean={_fmt(mean)}  "
                f"total={_fmt(h['total'])}"
            )
            bounds = [*(_fmt(b) for b in h["buckets"]), "+Inf"]
            cells = " ".join(
                f"<={b}:{c}" for b, c in zip(bounds, h["bucket_counts"]) if c
            )
            if cells:
                lines.append(f"    {cells}")
    if not lines:
        lines.append("(empty registry)")
    return "\n".join(lines)
