"""The workload protocol the scheduler drives.

A *workload* is the state of the search space distributed over the PEs.
Three implementations exist at different fidelities:

- :class:`repro.workmodel.divisible.DivisibleWorkload` — vectorized
  alpha-splittable work counts (the model of the paper's analysis, runs at
  full paper scale).
- :class:`repro.workmodel.stackmodel.StackWorkload` — per-PE stacks of
  pending subtree sizes with bottom-of-stack donation.
- :class:`repro.search.parallel.SearchWorkload` — real DFS stacks over a
  real problem (15-puzzle IDA*, N-queens, ...).

The scheduler only sees this protocol, so every matching/triggering scheme
runs unchanged against all three.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Workload"]


@runtime_checkable
class Workload(Protocol):
    """State of the distributed search space, as seen by the scheduler.

    Terminology (Section 2): a PE is **busy** if it can split its work into
    two non-empty parts — i.e. it holds at least two stack nodes.  A PE is
    **idle** if it holds no work at all and should receive some.  A PE with
    exactly one node expands but neither donates nor receives.

    Implementations may cache the masks between mutations (the scheduler
    reads them several times per lock-step cycle); callers that mutate
    workload state outside ``expand_cycle``/``transfer`` must use the
    implementation's invalidation hook before re-reading masks.
    """

    n_pes: int

    def expanding_mask(self) -> np.ndarray:
        """Boolean mask of PEs that will expand a node this cycle."""
        ...

    def busy_mask(self) -> np.ndarray:
        """Boolean mask of PEs holding >= 2 nodes (able to donate)."""
        ...

    def idle_mask(self) -> np.ndarray:
        """Boolean mask of PEs holding no work (eligible to receive)."""
        ...

    def expand_cycle(self) -> int:
        """Perform one lock-step node-expansion cycle.

        Returns the number of PEs that expanded a node (equivalently, the
        number of tree nodes expanded this cycle).
        """
        ...

    def transfer(self, donors: np.ndarray, receivers: np.ndarray) -> int:
        """Split each donor's work and hand one part to its receiver.

        Returns the number of transfers actually performed (a donor that
        lost its donatable work since matching may decline).
        """
        ...

    def done(self) -> bool:
        """True when the entire search space is exhausted."""
        ...

    def total_expanded(self) -> int:
        """Total tree nodes expanded so far (the realized W)."""
        ...

    def extract_pe(self, pe: int) -> tuple[object, int]:
        """Remove and return PE ``pe``'s entire frontier.

        Returns ``(payload, n_entries)`` where ``payload`` is an opaque,
        implementation-specific snapshot that round-trips through
        :meth:`inject_pe` and ``n_entries`` is its size in work units
        (stack entries, or node count for the divisible model).  The PE is
        left empty/idle.  Used by the fault layer to quarantine the
        surviving frontier of a fail-stopped PE.
        """
        ...

    def inject_pe(self, pe: int, payload: object) -> int:
        """Append a previously extracted ``payload`` onto PE ``pe``.

        Returns the number of work units delivered.  The receiving PE need
        not be empty — recovery may re-donate onto any alive PE.
        """
        ...
