"""Triggering schemes: when to leave the search phase (Section 2).

All triggers observe, after every node-expansion cycle, the number of busy
(splittable) PEs ``A``, the number of PEs that expanded, and the cycle
time.  They answer "enter a load-balancing phase now?".

- :class:`StaticTrigger` — **S^x**: trigger when ``A <= x * P`` (Eq. 1).
- :class:`DPTrigger` — **D_P** (Powley/Ferguson/Korf): trigger when
  ``w / (t + L) >= A`` (Eq. 2), where ``w`` is work done in
  processor-seconds this search phase, ``t`` the phase's elapsed time and
  ``L`` the estimated cost of the next LB phase (approximated by the cost
  of the previous one).  Requires *multiple* work transfers per LB phase
  to perform well (Section 2.3 / 6.1).
- :class:`DKTrigger` — **D_K** (the paper's new scheme): trigger when the
  accumulated idle time of the search phase reaches the cost of the next
  LB phase across all processors, ``w_idle >= L * P`` (Eq. 4).  Its total
  overhead is provably within 2x of the optimal static trigger
  (Section 6.2).

Triggers expose ``last_r1`` / ``last_r2``, the two areas of Figure 1, for
the trigger-geometry benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_probability, check_positive

__all__ = ["TriggerState", "Trigger", "StaticTrigger", "DPTrigger", "DKTrigger"]


@dataclass(frozen=True)
class TriggerState:
    """Per-cycle observation handed to a trigger.

    Attributes
    ----------
    busy:
        ``A`` — PEs holding >= 2 nodes (able to donate).
    expanding:
        PEs that expanded a node this cycle.
    n_pes:
        ``P``.
    dt:
        Duration of the cycle (``U_calc``).
    """

    busy: int
    expanding: int
    n_pes: int
    dt: float


class Trigger:
    """Base triggering scheme.

    ``multiple_transfers`` declares whether the scheme needs repeated
    work-transfer rounds within one LB phase (Table 1: only D_P does).
    """

    name: str = "abstract"
    multiple_transfers: bool = False

    #: Figure 1 introspection: the two areas compared by dynamic triggers.
    last_r1: float = 0.0
    last_r2: float = 0.0

    def start_phase(self) -> None:
        """Reset per-search-phase accumulators (called when a phase begins)."""

    def after_cycle(self, state: TriggerState) -> bool:
        """Return True to enter a load-balancing phase now."""
        raise NotImplementedError

    def notify_lb_cost(self, cost_seconds: float) -> None:
        """Report the elapsed cost of the LB phase just performed.

        Dynamic triggers use it as the estimate ``L`` of the *next* phase's
        cost ("the value of L ... is approximated by the cost of the
        previous load balancing phase", Section 2.1).
        """

    def reset(self) -> None:
        """Full reset for a fresh run."""
        self.start_phase()


@dataclass
class StaticTrigger(Trigger):
    """S^x: trigger as soon as ``A <= x * P`` (Equation 1)."""

    x: float = 0.75
    name: str = field(init=False)
    multiple_transfers: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        check_probability(self.x, "x")
        self.name = f"S{self.x:.2f}"

    def after_cycle(self, state: TriggerState) -> bool:
        self.last_r1 = float(state.busy)
        self.last_r2 = self.x * state.n_pes
        return state.busy <= self.x * state.n_pes


@dataclass
class DPTrigger(Trigger):
    """D_P: trigger when ``w - A*t >= A*L`` (Equations 2-3).

    ``initial_lb_cost`` seeds the estimate ``L`` before any LB phase has
    run.  Note the scheme's documented pathology: with few active PEs,
    ``w`` grows slowly and the trigger may fire arbitrarily late — or
    never, when ``A`` drops to small values under a high ``L``
    (Section 6.1).  We reproduce that behaviour faithfully; the scheduler
    ends the run when the workload is exhausted regardless.
    """

    initial_lb_cost: float = 0.013
    name: str = field(default="DP", init=False)
    multiple_transfers: bool = field(default=True, init=False)

    _work: float = field(default=0.0, init=False, repr=False)
    _elapsed: float = field(default=0.0, init=False, repr=False)
    _lb_cost: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.initial_lb_cost, "initial_lb_cost")
        self._lb_cost = self.initial_lb_cost

    def start_phase(self) -> None:
        self._work = 0.0
        self._elapsed = 0.0

    def notify_lb_cost(self, cost_seconds: float) -> None:
        self._lb_cost = float(cost_seconds)

    def reset(self) -> None:
        self._lb_cost = self.initial_lb_cost
        self.start_phase()

    def after_cycle(self, state: TriggerState) -> bool:
        # w is the sum of time spent by all processors doing node
        # expansions during the current search phase (footnote 3).
        self._work += state.expanding * state.dt
        self._elapsed += state.dt
        # Rewritten form (Eq. 3): R1 = w - A*t, R2 = A*L.
        self.last_r1 = self._work - state.busy * self._elapsed
        self.last_r2 = state.busy * self._lb_cost
        return self.last_r1 >= self.last_r2


@dataclass
class DKTrigger(Trigger):
    """D_K: trigger when ``w_idle >= L * P`` (Equation 4) — new scheme.

    Balances the idle time accumulated during the search phase against the
    total processor-seconds the next LB phase will consume.
    """

    initial_lb_cost: float = 0.013
    name: str = field(default="DK", init=False)
    multiple_transfers: bool = field(default=False, init=False)

    _idle: float = field(default=0.0, init=False, repr=False)
    _lb_cost: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.initial_lb_cost, "initial_lb_cost")
        self._lb_cost = self.initial_lb_cost

    def start_phase(self) -> None:
        self._idle = 0.0

    def notify_lb_cost(self, cost_seconds: float) -> None:
        self._lb_cost = float(cost_seconds)

    def reset(self) -> None:
        self._lb_cost = self.initial_lb_cost
        self.start_phase()

    def after_cycle(self, state: TriggerState) -> bool:
        # w_idle: idle processor-seconds since the search phase began.
        self._idle += (state.n_pes - state.expanding) * state.dt
        self.last_r1 = self._idle
        self.last_r2 = self._lb_cost * state.n_pes
        return self.last_r1 >= self.last_r2
