"""The lock-step search/load-balance loop (Section 2).

At any time all processors are either in a *search phase* — lock-step
node-expansion cycles — or in a *load-balancing phase* — busy processors
split their work and share it with idle ones.  The scheduler:

1. optionally runs the *initial distribution phase* of Section 7 (the root
   is on one PE; alternate expansion and balancing until a target fraction
   of PEs is active);
2. repeats: expand; test the trigger; on fire, run an LB phase (one
   transfer round, or rounds until saturation for multiple-transfer
   schemes), inform the trigger of its cost, and resume searching;
3. stops when the workload is exhausted (or ``max_cycles`` hit).

The paper's rule "after each load balancing phase, at least one node
expansion cycle is completed before the triggering condition is tested
again" falls out of the loop structure.

One cycle reads the workload masks several times — the trigger state
needs the busy count, the sanitizer all three masks, and an LB phase the
busy/idle pair per transfer round.  The workloads memoize one counts
snapshot per mutation (see ``DivisibleWorkload``/``StackWorkload``
``invalidate_masks``), so those reads collapse to a single O(P) pass per
cycle plus one per transfer round instead of 3-6 full recomputations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Scheme, make_scheme
from repro.core.interfaces import Workload
from repro.core.matching import Matcher
from repro.core.metrics import RunMetrics, Trace
from repro.core.triggering import DKTrigger, Trigger, TriggerState
from repro.lint.runtime import SchedulerSanitizer
from repro.simd.machine import SimdMachine

__all__ = ["Scheduler"]

#: Hard safety cap on transfer rounds inside one LB phase; each round
#: strictly reduces the idle count, so P rounds is already unreachable.
_MAX_ROUNDS_FACTOR = 4


@dataclass
class Scheduler:
    """Drives one workload to exhaustion under one load-balancing scheme.

    Parameters
    ----------
    workload:
        Any :class:`~repro.core.interfaces.Workload` implementation.
    machine:
        The time ledger; its cost model prices cycles and LB phases.
    scheme:
        A :class:`~repro.core.config.Scheme` or a spec string like
        ``"GP-S0.90"``.
    init_threshold:
        If set (e.g. ``0.85`` as in Section 7), run the initial
        distribution phase until this fraction of PEs is non-idle before
        handing control to the trigger.
    trace:
        Record per-cycle busy counts and LB positions (Figure 8 data).
    max_cycles:
        Safety cap on expansion cycles; ``None`` means run to exhaustion.
    charge_collectives:
        If true, charge one sum-scan per expansion cycle for the global
        busy-count reduction the trigger reads.  The paper folds this
        into its measured 30 ms cycle (scans are nearly free on the
        CM-2); on a mesh or hypercube the per-cycle collective is a real
        cost, and this switch prices it (ablation).
    sanitize:
        If true, assert the lock-step invariants on every cycle and
        transfer round (disjoint/exhaustive masks, strict idle decrease
        per LB round, GP pointer in ``[0, P)``, the D_K idle bound, the
        ledger time identity).  Violations raise
        :class:`~repro.lint.runtime.SanitizerError`.  The matcher and
        trigger built for the run are exposed as ``self.matcher`` /
        ``self.trigger`` for introspection and fault-injection tests.
    """

    workload: Workload
    machine: SimdMachine
    scheme: Scheme | str
    init_threshold: float | None = None
    trace: bool = False
    max_cycles: int | None = None
    charge_collectives: bool = False
    sanitize: bool = False

    def __post_init__(self) -> None:
        self.matcher: Matcher | None = None
        self.trigger: Trigger | None = None
        self._sanitizer = (
            SchedulerSanitizer(self.machine.n_pes) if self.sanitize else None
        )
        if isinstance(self.scheme, str):
            self.scheme = make_scheme(self.scheme)
        if self.workload.n_pes != self.machine.n_pes:
            raise ValueError(
                f"workload has {self.workload.n_pes} PEs but machine has "
                f"{self.machine.n_pes}"
            )
        if self.init_threshold is not None and not 0.0 < self.init_threshold <= 1.0:
            raise ValueError(
                f"init_threshold must be in (0, 1], got {self.init_threshold}"
            )

    # ------------------------------------------------------------------ #

    def run(self) -> RunMetrics:
        """Execute the full run and return its metrics."""
        scheme = self.scheme
        assert isinstance(scheme, Scheme)
        initial_lb_cost = self.machine.cost.lb_phase_time(self.machine.n_pes)
        matcher, trigger = scheme.build(initial_lb_cost)
        self.matcher, self.trigger = matcher, trigger
        trace = Trace() if self.trace else None

        n_init_lb = 0
        if self.init_threshold is not None:
            n_init_lb = self._initial_distribution(matcher, trigger, trace)

        trigger.start_phase()
        while not self.workload.done() and not self._cycle_cap_hit():
            state = self._expand_and_observe()
            self._sanity_cycle(matcher)
            if self.workload.done():
                self._record_cycle(trace, state, trigger)
                break
            fire = trigger.after_cycle(state)
            self._record_cycle(trace, state, trigger)
            if fire:
                if self._sanitizer is not None and isinstance(trigger, DKTrigger):
                    self._sanitizer.check_dk_fire(trigger, state)
                self._maybe_balance(matcher, trigger, trace)

        return RunMetrics(
            scheme=scheme.name,
            n_pes=self.machine.n_pes,
            total_work=self.workload.total_expanded(),
            n_expand=self.machine.n_cycles,
            n_lb=self.machine.n_lb_phases,
            n_transfers=self.machine.n_transfers,
            n_init_lb=n_init_lb,
            ledger=self.machine.ledger,
            trace=trace,
        )

    # ------------------------------------------------------------------ #

    def _cycle_cap_hit(self) -> bool:
        return self.max_cycles is not None and self.machine.n_cycles >= self.max_cycles

    def _sanity_cycle(self, matcher: Matcher) -> None:
        """Sanitize-mode invariants checked after every expansion cycle."""
        sanitizer = self._sanitizer
        if sanitizer is None:
            return
        sanitizer.check_masks(
            self.workload.busy_mask(),
            self.workload.idle_mask(),
            self.workload.expanding_mask(),
        )
        sanitizer.check_pointer(matcher)
        sanitizer.check_time_identity(self.machine)

    def _expand_and_observe(self) -> TriggerState:
        expanding = self.workload.expand_cycle()
        dt = self.machine.charge_expansion_cycle(expanding)
        if self.charge_collectives:
            dt += self.machine.charge_collective(
                self.machine.cost.scan_time(self.machine.n_pes)
            )
        busy = int(self.workload.busy_mask().sum())
        return TriggerState(
            busy=busy, expanding=expanding, n_pes=self.machine.n_pes, dt=dt
        )

    @staticmethod
    def _record_cycle(trace: Trace | None, state: TriggerState, trigger: Trigger) -> None:
        if trace is not None:
            trace.record_cycle(
                state.busy, state.expanding, trigger.last_r1, trigger.last_r2
            )

    def _maybe_balance(self, matcher: Matcher, trigger: Trigger, trace: Trace | None) -> bool:
        """Run an LB phase if a useful transfer is possible.

        When no busy/idle pair exists (e.g. every PE holds exactly one
        node) the phase is skipped — the machine cannot redistribute — but
        the trigger's accumulators restart so it does not re-fire every
        cycle on stale state.
        """
        scheme = self.scheme
        assert isinstance(scheme, Scheme)
        busy = self.workload.busy_mask()
        idle = self.workload.idle_mask()
        if not busy.any() or not idle.any():
            trigger.start_phase()
            return False

        sanitizer = self._sanitizer
        rounds = 0
        transfers = 0
        idle_count = int(idle.sum())
        max_rounds = _MAX_ROUNDS_FACTOR * self.machine.n_pes
        while busy.any() and idle.any() and rounds < max_rounds:
            if sanitizer is not None:
                sanitizer.check_pointer(matcher)
            result = matcher.match(busy, idle)
            if len(result) == 0:
                break
            performed = self.workload.transfer(result.donors, result.receivers)
            transfers += performed
            rounds += 1
            if sanitizer is not None:
                sanitizer.check_pointer(matcher)
                idle_after = int(self.workload.idle_mask().sum())
                sanitizer.check_round_progress(idle_count, idle_after, performed)
                idle_count = idle_after
            if not scheme.multiple_transfers:
                break
            busy = self.workload.busy_mask()
            idle = self.workload.idle_mask()

        dt = self.machine.charge_lb_phase(
            transfer_rounds=rounds,
            n_transfers=transfers,
            setup_scans=matcher.setup_scans,
        )
        if trace is not None:
            trace.record_lb(self.machine.n_cycles - 1)
        trigger.notify_lb_cost(dt)
        trigger.start_phase()
        return True

    def _initial_distribution(
        self, matcher: Matcher, trigger: Trigger, trace: Trace | None
    ) -> int:
        """Section 7's initialization: balance after every cycle until the
        active fraction reaches ``init_threshold`` (or work runs out)."""
        assert self.init_threshold is not None
        target = self.init_threshold * self.machine.n_pes
        phases = 0
        while not self.workload.done() and not self._cycle_cap_hit():
            state = self._expand_and_observe()
            self._sanity_cycle(matcher)
            self._record_cycle(trace, state, trigger)
            if self.workload.done():
                break
            non_idle = self.machine.n_pes - int(self.workload.idle_mask().sum())
            if non_idle >= target:
                break
            if self._maybe_balance(matcher, trigger, trace):
                phases += 1
        return phases
