"""The lock-step search/load-balance loop (Section 2).

At any time all processors are either in a *search phase* — lock-step
node-expansion cycles — or in a *load-balancing phase* — busy processors
split their work and share it with idle ones.  The scheduler:

1. optionally runs the *initial distribution phase* of Section 7 (the root
   is on one PE; alternate expansion and balancing until a target fraction
   of PEs is active);
2. repeats: expand; test the trigger; on fire, run an LB phase (one
   transfer round, or rounds until saturation for multiple-transfer
   schemes), inform the trigger of its cost, and resume searching;
3. stops when the workload is exhausted (or ``max_cycles`` hit).

The paper's rule "after each load balancing phase, at least one node
expansion cycle is completed before the triggering condition is tested
again" falls out of the loop structure.

One cycle reads the workload masks several times — the trigger state
needs the busy count, the sanitizer all three masks, and an LB phase the
busy/idle pair per transfer round.  The workloads memoize one counts
snapshot per mutation (see ``DivisibleWorkload``/``StackWorkload``
``invalidate_masks``), so those reads collapse to a single O(P) pass per
cycle plus one per transfer round instead of 3-6 full recomputations.

Fault injection (``faults=``) threads a
:class:`~repro.faults.runtime.FaultRuntime` through the loop: fail-stop
deaths quarantine the victim's frontier before the next expansion cycle,
recovery re-donates parked frontiers through the *same* matcher that
drives regular LB (so GP's pointer advances over recovery donations
too), stragglers stretch the lock-step cycle, and drop/dup perturbation
filters the matched pairs of every transfer round.  All of it is
work-conserving, so a fault-injected run returns exactly the fault-free
results — at a higher cost, charged to the ledger's ``T_recovery`` line.

Checkpointing (``checkpoint=``) serializes the complete run state every
N cycles via :mod:`repro.faults.checkpoint`; a resumed run continues the
loop bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, make_scheme
from repro.core.interfaces import Workload
from repro.core.matching import Matcher
from repro.core.metrics import RunMetrics, Trace
from repro.core.triggering import DKTrigger, Trigger, TriggerState
from repro.errors import ConfigError, FaultInjectionError
from repro.faults.checkpoint import CheckpointConfig, write_checkpoint
from repro.faults.plan import FaultPlan
from repro.faults.runtime import FaultRuntime
from repro.lint.runtime import SchedulerSanitizer
from repro.obs import Observability
from repro.obs.events import CycleEvent, LBPhaseEvent, RecoveryEvent
from repro.obs.profile import span
from repro.simd.machine import SimdMachine

__all__ = ["Scheduler"]

#: Hard safety cap on transfer rounds inside one LB phase; each round
#: strictly reduces the idle count, so P rounds is already unreachable.
_MAX_ROUNDS_FACTOR = 4


@dataclass
class Scheduler:
    """Drives one workload to exhaustion under one load-balancing scheme.

    Parameters
    ----------
    workload:
        Any :class:`~repro.core.interfaces.Workload` implementation.
    machine:
        The time ledger; its cost model prices cycles and LB phases.
    scheme:
        A :class:`~repro.core.config.Scheme` or a spec string like
        ``"GP-S0.90"``.
    init_threshold:
        If set (e.g. ``0.85`` as in Section 7), run the initial
        distribution phase until this fraction of PEs is non-idle before
        handing control to the trigger.
    trace:
        Record per-cycle busy counts and LB positions (Figure 8 data).
        ``True`` builds a default ring-buffered :class:`Trace`; pass a
        pre-built :class:`Trace` instance to control the ring size or
        attach a streaming event sink.
    max_cycles:
        Safety cap on expansion cycles; ``None`` means run to exhaustion.
    charge_collectives:
        If true, charge one sum-scan per expansion cycle for the global
        busy-count reduction the trigger reads.  The paper folds this
        into its measured 30 ms cycle (scans are nearly free on the
        CM-2); on a mesh or hypercube the per-cycle collective is a real
        cost, and this switch prices it (ablation).
    sanitize:
        If true, assert the lock-step invariants on every cycle and
        transfer round (disjoint/exhaustive masks, strict idle decrease
        per LB round, GP pointer in ``[0, P)``, the D_K idle bound, the
        ledger time identity, and — under ``faults`` — the dead-PE and
        work-conservation invariants).  Violations raise
        :class:`~repro.lint.runtime.SanitizerError`.  The matcher and
        trigger built for the run are exposed as ``self.matcher`` /
        ``self.trigger`` for introspection and fault-injection tests.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` (started here) or an
        already-started :class:`~repro.faults.runtime.FaultRuntime`
        (shared across the per-bound schedulers of an IDA* run).  ``None``
        runs fault-free.
    checkpoint:
        A :class:`~repro.faults.checkpoint.CheckpointConfig`; when set,
        the full run state is serialized to ``checkpoint.path`` every
        ``checkpoint.every`` cycles (atomic replace, CRC-framed).
    obs:
        An :class:`~repro.obs.Observability` bundle.  Typed events
        (cycles, LB phases, recovery, faults) go to ``obs.events`` on
        the machine's *cumulative* cycle axis; per-phase histograms go
        to ``obs.metrics``; kernel spans report to the active profiler.
        Observation is pure — it never changes what the run computes —
        and the bundle is not checkpointed (a resumed run re-attaches
        fresh observers via ``load_scheduler``).
    """

    workload: Workload
    machine: SimdMachine
    scheme: Scheme | str
    init_threshold: float | None = None
    trace: bool | Trace = False
    max_cycles: int | None = None
    charge_collectives: bool = False
    sanitize: bool = False
    faults: FaultPlan | FaultRuntime | None = None
    checkpoint: CheckpointConfig | None = None
    obs: Observability | None = None

    def __post_init__(self) -> None:
        self.matcher: Matcher | None = None
        self.trigger: Trigger | None = None
        self._sanitizer = (
            SchedulerSanitizer(self.machine.n_pes) if self.sanitize else None
        )
        if isinstance(self.scheme, str):
            self.scheme = make_scheme(self.scheme)
        if self.workload.n_pes != self.machine.n_pes:
            raise ConfigError(
                f"workload has {self.workload.n_pes} PEs but machine has "
                f"{self.machine.n_pes}"
            )
        if self.init_threshold is not None and not 0.0 < self.init_threshold <= 1.0:
            raise ConfigError(
                f"init_threshold must be in (0, 1], got {self.init_threshold}"
            )
        if isinstance(self.faults, FaultPlan):
            self._faults: FaultRuntime | None = self.faults.start(
                self.machine.n_pes
            )
        else:
            self._faults = self.faults
        if (
            self._faults is not None
            and self.obs is not None
            and self.obs.events is not None
        ):
            self._faults.observer = self.obs.events
        if self.checkpoint is not None:
            try:
                make_scheme(self.scheme.name)
            except ValueError:
                raise ConfigError(
                    f"scheme {self.scheme.name!r} does not round-trip "
                    "through its spec string, so a checkpoint of this run "
                    "could not be restored; use a parseable scheme spec"
                ) from None
        self._trace_obj: Trace | None = None
        self._n_init_lb = 0
        self._resumed = False
        self._last_checkpoint_cycle = -1

    # ------------------------------------------------------------------ #

    def run(self) -> RunMetrics:
        """Execute the full run (or continue a resumed one); return metrics."""
        if not self._resumed:
            self._start()
        return self._loop()

    def _start(self) -> None:
        """Build the matcher/trigger pair and run the init phase."""
        scheme = self.scheme
        assert isinstance(scheme, Scheme)
        initial_lb_cost = self.machine.cost.lb_phase_time(self.machine.n_pes)
        matcher, trigger = scheme.build(initial_lb_cost)
        self.matcher, self.trigger = matcher, trigger
        if isinstance(self.trace, Trace):
            self._trace_obj = self.trace
        else:
            self._trace_obj = Trace() if self.trace else None

        if self.init_threshold is not None:
            self._n_init_lb = self._initial_distribution(
                matcher, trigger, self._trace_obj
            )
        trigger.start_phase()

    def _loop(self) -> RunMetrics:
        scheme = self.scheme
        assert isinstance(scheme, Scheme)
        matcher, trigger = self.matcher, self.trigger
        assert matcher is not None and trigger is not None
        trace = self._trace_obj

        while True:
            self._apply_deaths()
            if self._done() or self._cycle_cap_hit():
                break
            state = self._expand_and_observe()
            self._sanity_cycle(matcher)
            if self._done():
                self._record_cycle(trace, state, trigger)
                self._maybe_checkpoint()
                break
            fire = trigger.after_cycle(state)
            self._record_cycle(trace, state, trigger)
            if fire:
                if self._sanitizer is not None and isinstance(trigger, DKTrigger):
                    self._sanitizer.check_dk_fire(trigger, state)
                self._maybe_balance(matcher, trigger, trace)
            self._maybe_checkpoint()

        if self._faults is not None:
            self._faults.check_conservation()

        return RunMetrics(
            scheme=scheme.name,
            n_pes=self.machine.n_pes,
            total_work=self.workload.total_expanded(),
            n_expand=self.machine.n_cycles,
            n_lb=self.machine.n_lb_phases,
            n_transfers=self.machine.n_transfers,
            n_init_lb=self._n_init_lb,
            ledger=self.machine.ledger,
            trace=trace,
            n_recovery=self.machine.n_recovery_phases,
            faults=self._faults.report() if self._faults is not None else None,
        )

    # ------------------------------------------------------------------ #

    def _cycle_cap_hit(self) -> bool:
        return self.max_cycles is not None and self.machine.n_cycles >= self.max_cycles

    def _done(self) -> bool:
        """Run completion: the workload is exhausted *and* no quarantined
        frontier awaits recovery (a search workload cannot see parked
        work, so its own ``done()`` would report early)."""
        if self._faults is not None and self._faults.has_quarantine:
            # Early-stop modes (first solution found) still end the run;
            # parked work is then intentionally abandoned, like the
            # unexpanded stacks on live PEs.
            if (
                getattr(self.workload, "first_solution_only", False)
                and getattr(self.workload, "solutions", 0) > 0
            ):
                return True
            return False
        return self.workload.done()

    def _receivable_mask(self) -> np.ndarray:
        """Idle PEs eligible to receive work: dead PEs are masked out."""
        idle = self.workload.idle_mask()
        if self._faults is not None and self._faults.any_dead:
            idle = idle & self._faults.alive
        return idle

    def _apply_deaths(self) -> None:
        """Fail-stop PEs whose cycle has arrived; quarantine their work.

        Also sweeps previously dead PEs that acquired work since — e.g. a
        fresh IDA* iteration seeding its root on a PE that died in an
        earlier iteration of the same machine run.
        """
        fr = self._faults
        if fr is None:
            return
        fr.new_deaths(self.machine.n_cycles)
        if not fr.any_dead:
            return
        holding = self.workload.expanding_mask() & fr.dead
        for pe in np.flatnonzero(holding):
            payload, n_entries = self.workload.extract_pe(int(pe))
            if n_entries:
                fr.quarantine(int(pe), payload, n_entries)
        if fr.has_quarantine and not bool(fr.alive.any()):
            raise FaultInjectionError(
                "every PE has fail-stopped while unexpanded work remains; "
                "the quarantined frontier can never be recovered"
            )

    def _sanity_cycle(self, matcher: Matcher) -> None:
        """Sanitize-mode invariants checked after every expansion cycle."""
        sanitizer = self._sanitizer
        if sanitizer is None:
            return
        sanitizer.check_masks(
            self.workload.busy_mask(),
            self.workload.idle_mask(),
            self.workload.expanding_mask(),
            dead=self._faults.dead if self._faults is not None else None,
        )
        sanitizer.check_pointer(matcher)
        sanitizer.check_time_identity(self.machine)
        if self._faults is not None:
            sanitizer.check_fault_conservation(self._faults)

    def _expand_and_observe(self) -> TriggerState:
        slowdown = (
            self._faults.slowdown(self.machine.n_cycles)
            if self._faults is not None
            else 1.0
        )
        expanding = self.workload.expand_cycle()
        dt = self.machine.charge_expansion_cycle(expanding, slowdown=slowdown)
        if self.charge_collectives:
            dt += self.machine.charge_collective(
                self.machine.cost.scan_time(self.machine.n_pes)
            )
        busy = int(self.workload.busy_mask().sum())
        return TriggerState(
            busy=busy, expanding=expanding, n_pes=self.machine.n_pes, dt=dt
        )

    def _record_cycle(
        self, trace: Trace | None, state: TriggerState, trigger: Trigger
    ) -> None:
        if trace is not None:
            trace.record_cycle(
                state.busy, state.expanding, trigger.last_r1, trigger.last_r2
            )
        obs = self.obs
        if obs is not None and obs.events is not None:
            # The cumulative machine axis keeps IDA* iterations monotone
            # in one event stream (a per-iteration Trace restarts at 0).
            obs.events.emit(
                CycleEvent(
                    cycle=self.machine.n_cycles - 1,
                    busy=state.busy,
                    expanding=state.expanding,
                    r1=trigger.last_r1,
                    r2=trigger.last_r2,
                )
            )

    def _maybe_checkpoint(self) -> None:
        cfg = self.checkpoint
        if cfg is None:
            return
        cycle = self.machine.n_cycles
        if cycle > 0 and cycle % cfg.every == 0 and cycle != self._last_checkpoint_cycle:
            write_checkpoint(self, cfg.path)
            self._last_checkpoint_cycle = cycle

    def _recover(self, matcher: Matcher) -> bool:
        """Re-donate quarantined frontiers to idle alive PEs.

        Runs at the head of every LB phase, *before* the regular busy/idle
        matching — recovery must be reachable even when no live PE is
        busy (e.g. all remaining work sits in quarantine).  Each round
        matches the quarantine mask against the idle survivors through
        the scheme's own matcher, then hands each matched frontier over
        whole (no split: the receiver resumes the dead PE's DFS exactly).
        Charged to the ledger's ``T_recovery`` as one phase of however
        many permutation rounds it took.
        """
        fr = self._faults
        if fr is None or not fr.has_quarantine:
            return False
        rounds = 0
        moved = 0
        max_rounds = _MAX_ROUNDS_FACTOR * self.machine.n_pes
        with span("recovery.phase", cat="recovery"):
            while fr.has_quarantine and rounds < max_rounds:
                quarantined = fr.quarantine_mask()
                idle = self._receivable_mask()
                if not idle.any():
                    break
                with span("lb.match"):
                    result = matcher.match(quarantined, idle)
                if len(result) == 0:
                    break
                for donor, receiver in zip(
                    result.donors.tolist(), result.receivers.tolist()
                ):
                    payload, _ = fr.release(donor)
                    self.workload.inject_pe(receiver, payload)
                    moved += 1
                rounds += 1
        if rounds:
            self.machine.charge_recovery_phase(
                transfer_rounds=rounds,
                n_transfers=moved,
                setup_scans=matcher.setup_scans,
            )
            obs = self.obs
            if obs is not None:
                obs.emit(
                    RecoveryEvent(
                        cycle=self.machine.n_cycles - 1,
                        rounds=rounds,
                        transfers=moved,
                    )
                )
                if obs.metrics is not None:
                    obs.metrics.counter("recovery.frontiers_redonated").inc(moved)
        return rounds > 0

    def _maybe_balance(self, matcher: Matcher, trigger: Trigger, trace: Trace | None) -> bool:
        """Run an LB phase if a useful transfer is possible.

        When no busy/idle pair exists (e.g. every PE holds exactly one
        node) the phase is skipped — the machine cannot redistribute — but
        the trigger's accumulators restart so it does not re-fire every
        cycle on stale state.
        """
        scheme = self.scheme
        assert isinstance(scheme, Scheme)
        fr = self._faults
        recovered = self._recover(matcher)
        busy = self.workload.busy_mask()
        idle = self._receivable_mask()
        if not busy.any() or not idle.any():
            trigger.start_phase()
            return recovered

        sanitizer = self._sanitizer
        rounds = 0
        transfers = 0
        faulty_rounds = 0
        idle_count = int(idle.sum())
        max_rounds = _MAX_ROUNDS_FACTOR * self.machine.n_pes
        while busy.any() and idle.any() and rounds < max_rounds:
            if sanitizer is not None:
                sanitizer.check_pointer(matcher)
            with span("lb.match"):
                result = matcher.match(busy, idle)
            if len(result) == 0:
                break
            donors, receivers = result.donors, result.receivers
            if fr is not None:
                donors, receivers, n_dropped, n_dup = fr.filter_transfers(
                    donors, receivers
                )
                if n_dropped or n_dup:
                    faulty_rounds += 1
            with span("lb.transfer"):
                performed = (
                    self.workload.transfer(donors, receivers) if len(donors) else 0
                )
            transfers += performed
            rounds += 1
            if sanitizer is not None:
                sanitizer.check_pointer(matcher)
                idle_after = int(self._receivable_mask().sum())
                sanitizer.check_round_progress(idle_count, idle_after, performed)
                idle_count = idle_after
            if not scheme.multiple_transfers:
                break
            busy = self.workload.busy_mask()
            idle = self._receivable_mask()

        dt = self.machine.charge_lb_phase(
            transfer_rounds=rounds,
            n_transfers=transfers,
            setup_scans=matcher.setup_scans,
        )
        if faulty_rounds:
            # Retransmission/dedup traffic: one extra permutation round's
            # worth of time per perturbed round, setup already paid above.
            self.machine.charge_recovery_phase(
                transfer_rounds=faulty_rounds, n_transfers=0, setup_scans=0
            )
        if trace is not None:
            trace.record_lb(self.machine.n_cycles - 1)
        obs = self.obs
        if obs is not None:
            obs.emit(
                LBPhaseEvent(
                    cycle=self.machine.n_cycles - 1,
                    rounds=rounds,
                    transfers=transfers,
                    dt=dt,
                )
            )
            if obs.metrics is not None:
                obs.metrics.histogram("lb.transfers_per_phase").observe(transfers)
                obs.metrics.histogram("lb.rounds_per_phase").observe(rounds)
        trigger.notify_lb_cost(dt)
        trigger.start_phase()
        return True

    def _initial_distribution(
        self, matcher: Matcher, trigger: Trigger, trace: Trace | None
    ) -> int:
        """Section 7's initialization: balance after every cycle until the
        active fraction reaches ``init_threshold`` (or work runs out)."""
        assert self.init_threshold is not None
        target = self.init_threshold * self.machine.n_pes
        phases = 0
        while not self._done() and not self._cycle_cap_hit():
            self._apply_deaths()
            state = self._expand_and_observe()
            self._sanity_cycle(matcher)
            self._record_cycle(trace, state, trigger)
            if self._done():
                break
            non_idle = self.machine.n_pes - int(self.workload.idle_mask().sum())
            if non_idle >= target:
                break
            if self._maybe_balance(matcher, trigger, trace):
                phases += 1
        return phases
