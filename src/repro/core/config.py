"""Scheme registry and spec parser (Table 1).

A *scheme* is a (matching, triggering, transfer-multiplicity) combination.
The paper studies six:

    nGP-S^x, nGP-D_P, nGP-D_K, GP-S^x, GP-D_P, GP-D_K

with D_P always using multiple work transfers per LB phase.  Specs are
strings like ``"GP-S0.90"``, ``"nGP-DP"``, ``"GP-DK"``; static schemes
embed their threshold.  :data:`PAPER_SCHEMES` lists Table 1 verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.matching import GPMatcher, Matcher, NGPMatcher
from repro.core.triggering import DKTrigger, DPTrigger, StaticTrigger, Trigger

__all__ = ["Scheme", "parse_scheme_spec", "make_scheme", "PAPER_SCHEMES"]


@dataclass(frozen=True)
class Scheme:
    """A named load-balancing scheme: factories keep runs independent."""

    name: str
    matcher_factory: Callable[[], Matcher]
    trigger_factory: Callable[[float], Trigger]
    multiple_transfers: bool

    def build(self, initial_lb_cost: float) -> tuple[Matcher, Trigger]:
        """Instantiate fresh matcher/trigger state for one run.

        ``initial_lb_cost`` seeds the ``L`` estimate of dynamic triggers;
        static triggers ignore it.
        """
        return self.matcher_factory(), self.trigger_factory(initial_lb_cost)


def parse_scheme_spec(spec: str) -> tuple[str, str, float | None]:
    """Split ``"GP-S0.90"`` into (matcher, trigger-kind, static threshold).

    Returns ``(matching, trigger, x)`` with ``trigger`` one of ``"S"``,
    ``"DP"``, ``"DK"`` and ``x`` set only for static schemes.
    """
    parts = spec.split("-", 1)
    if len(parts) != 2:
        raise ValueError(f"scheme spec must look like 'GP-S0.9' or 'nGP-DK': {spec!r}")
    matching, trig = parts
    if matching not in ("GP", "nGP"):
        raise ValueError(f"unknown matching scheme {matching!r} (want 'GP' or 'nGP')")
    if trig in ("DP", "DK"):
        return matching, trig, None
    if trig.startswith("S"):
        try:
            x = float(trig[1:])
        except ValueError:
            raise ValueError(f"bad static threshold in scheme spec {spec!r}") from None
        if not 0.0 <= x <= 1.0:
            raise ValueError(f"static threshold must be in [0, 1], got {x}")
        return matching, "S", x
    raise ValueError(f"unknown trigger {trig!r} in scheme spec {spec!r}")


def make_scheme(spec: str) -> Scheme:
    """Build a :class:`Scheme` from a spec string like ``"nGP-DP"``."""
    matching, trig, x = parse_scheme_spec(spec)
    matcher_factory = GPMatcher if matching == "GP" else NGPMatcher
    if trig == "S":
        threshold = x

        def trigger_factory(initial_lb_cost: float, _x: float = threshold) -> Trigger:
            return StaticTrigger(x=_x)

        name = f"{matching}-S{threshold:.2f}"
        multiple = False
    elif trig == "DP":

        def trigger_factory(initial_lb_cost: float) -> Trigger:
            return DPTrigger(initial_lb_cost=initial_lb_cost)

        name = f"{matching}-DP"
        multiple = True
    else:

        def trigger_factory(initial_lb_cost: float) -> Trigger:
            return DKTrigger(initial_lb_cost=initial_lb_cost)

        name = f"{matching}-DK"
        multiple = False

    return Scheme(
        name=name,
        matcher_factory=matcher_factory,
        trigger_factory=trigger_factory,
        multiple_transfers=multiple,
    )


#: Table 1 of the paper: the six studied schemes (static ones shown at the
#: paper's reference threshold x = 0.75; any x is accepted by make_scheme).
PAPER_SCHEMES: tuple[str, ...] = (
    "nGP-S0.75",
    "nGP-DP",
    "nGP-DK",
    "GP-S0.75",
    "GP-DP",
    "GP-DK",
)
