"""Run metrics and per-cycle traces.

``RunMetrics`` carries exactly the columns of the paper's tables:
``N_expand`` (node-expansion cycles), ``N_lb`` (load-balancing phases),
``*N_lb`` (work transfers — what Table 4 reports for D_P) and efficiency
``E``, alongside the full time ledger.

``Trace`` optionally records the busy-PE count at every cycle and the
cycle index of every LB phase — the raw series behind Figure 8.  The
series live in *bounded* ring buffers (``maxlen`` entries each, newest
kept) so a long ``run_grid`` cell cannot balloon host memory; pass
``maxlen=None`` as the explicit escape hatch when a full-length series
is worth the bytes, or attach a streaming
:class:`~repro.obs.events.JsonlSink` to keep every sample at O(1)
memory.  ``dropped_cycles`` always tells whether the window is complete.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.events import CycleEvent, EventSink
from repro.simd.machine import TimeLedger

__all__ = ["Trace", "RunMetrics", "DEFAULT_TRACE_MAXLEN"]

#: Ring capacity per series; ~5x the paper's largest cycle count.
DEFAULT_TRACE_MAXLEN = 1 << 16


class Trace:
    """Per-cycle record of one run (enable via ``Scheduler(trace=True)``).

    Parameters
    ----------
    maxlen:
        Ring capacity of each series — the most recent ``maxlen`` cycles
        are retained.  ``None`` is the explicit unbounded escape hatch.
    sink:
        Optional :class:`~repro.obs.events.EventSink` that additionally
        receives every recorded cycle as a typed
        :class:`~repro.obs.events.CycleEvent` (e.g. a ``JsonlSink`` so
        long runs keep their full series on disk while the in-memory
        ring stays bounded).

    Attributes
    ----------
    busy_per_cycle:
        ``A`` after each retained cycle (list copy of the ring).
    expanding_per_cycle:
        Number of PEs that expanded in each retained cycle.
    lb_cycle_indices:
        Cycle index (0-based, counted over expansion cycles) after which
        each LB phase occurred.
    trigger_r1 / trigger_r2:
        The two Figure 1 areas observed after each cycle.

    All mutation goes through :meth:`record_cycle` / :meth:`record_lb`
    (lint rule R005 flags direct series appends outside ``repro.obs``).
    """

    def __init__(
        self,
        maxlen: int | None = DEFAULT_TRACE_MAXLEN,
        sink: EventSink | None = None,
    ) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"trace maxlen must be >= 1 or None, got {maxlen}")
        self.maxlen = maxlen
        self.sink = sink
        self._busy: deque[int] = deque(maxlen=maxlen)
        self._expanding: deque[int] = deque(maxlen=maxlen)
        self._r1: deque[float] = deque(maxlen=maxlen)
        self._r2: deque[float] = deque(maxlen=maxlen)
        self._lb: deque[int] = deque(maxlen=maxlen)
        self.n_cycles_recorded = 0
        self.n_lb_recorded = 0

    # -- recording ---------------------------------------------------------

    def record_cycle(self, busy: int, expanding: int, r1: float, r2: float) -> None:
        self._busy.append(busy)
        self._expanding.append(expanding)
        self._r1.append(r1)
        self._r2.append(r2)
        cycle = self.n_cycles_recorded
        self.n_cycles_recorded = cycle + 1
        if self.sink is not None:
            self.sink.emit(
                CycleEvent(cycle=cycle, busy=busy, expanding=expanding, r1=r1, r2=r2)
            )

    def record_lb(self, cycle_index: int) -> None:
        self._lb.append(cycle_index)
        self.n_lb_recorded += 1

    # -- ring status -------------------------------------------------------

    @property
    def dropped_cycles(self) -> int:
        """Cycles evicted by the ring (0 means the series is complete)."""
        return self.n_cycles_recorded - len(self._busy)

    @property
    def dropped_lb(self) -> int:
        """LB indices evicted by the ring."""
        return self.n_lb_recorded - len(self._lb)

    # -- series views (list copies, oldest retained first) -----------------

    @property
    def busy_per_cycle(self) -> list[int]:
        return list(self._busy)

    @property
    def expanding_per_cycle(self) -> list[int]:
        return list(self._expanding)

    @property
    def lb_cycle_indices(self) -> list[int]:
        return list(self._lb)

    @property
    def trigger_r1(self) -> list[float]:
        return list(self._r1)

    @property
    def trigger_r2(self) -> list[float]:
        return list(self._r2)

    def _series(self) -> tuple:
        return (
            tuple(self._busy),
            tuple(self._expanding),
            tuple(self._r1),
            tuple(self._r2),
            tuple(self._lb),
            self.n_cycles_recorded,
            self.n_lb_recorded,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._series() == other._series()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Trace(cycles={self.n_cycles_recorded}, lb={self.n_lb_recorded}, "
            f"maxlen={self.maxlen}, dropped={self.dropped_cycles})"
        )


@dataclass
class RunMetrics:
    """Aggregate outcome of one scheduled run.

    Field names follow the paper's table headers where one exists.
    """

    scheme: str
    n_pes: int
    total_work: int
    n_expand: int
    n_lb: int
    n_transfers: int
    n_init_lb: int
    ledger: TimeLedger
    trace: Trace | None = None
    #: Fault-recovery phases run (0 on fault-free runs).
    n_recovery: int = 0
    #: ``repro.faults.runtime.FaultReport`` when faults were injected.
    faults: object | None = None

    @property
    def efficiency(self) -> float:
        """``E = T_calc / (T_calc + T_idle + T_lb + T_recovery)``."""
        return self.ledger.efficiency()

    @property
    def speedup(self) -> float:
        """``S = T_calc / T_par``."""
        return self.ledger.speedup(self.n_pes)

    @property
    def avg_busy_fraction(self) -> float:
        """Mean fraction of PEs expanding per cycle (requires a trace)."""
        if self.trace is None or not self.trace.n_cycles_recorded:
            raise ValueError("avg_busy_fraction requires a recorded trace")
        retained = self.trace.expanding_per_cycle
        total = sum(retained)
        return total / (len(retained) * self.n_pes)

    def summary_row(self) -> tuple[str, int, int, int, float]:
        """(scheme, N_expand, N_lb, transfers, E) — one table row."""
        return (self.scheme, self.n_expand, self.n_lb, self.n_transfers, self.efficiency)
