"""Run metrics and per-cycle traces.

``RunMetrics`` carries exactly the columns of the paper's tables:
``N_expand`` (node-expansion cycles), ``N_lb`` (load-balancing phases),
``*N_lb`` (work transfers — what Table 4 reports for D_P) and efficiency
``E``, alongside the full time ledger.

``Trace`` optionally records the busy-PE count at every cycle and the
cycle index of every LB phase — the raw series behind Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simd.machine import TimeLedger

__all__ = ["Trace", "RunMetrics"]


@dataclass
class Trace:
    """Per-cycle record of one run (enable via ``Scheduler(trace=True)``).

    Attributes
    ----------
    busy_per_cycle:
        ``A`` after each node-expansion cycle.
    expanding_per_cycle:
        Number of PEs that expanded in each cycle.
    lb_cycle_indices:
        Cycle index (0-based, counted over expansion cycles) after which
        each LB phase occurred.
    trigger_r1 / trigger_r2:
        The two Figure 1 areas observed after each cycle.
    """

    busy_per_cycle: list[int] = field(default_factory=list)
    expanding_per_cycle: list[int] = field(default_factory=list)
    lb_cycle_indices: list[int] = field(default_factory=list)
    trigger_r1: list[float] = field(default_factory=list)
    trigger_r2: list[float] = field(default_factory=list)

    def record_cycle(self, busy: int, expanding: int, r1: float, r2: float) -> None:
        self.busy_per_cycle.append(busy)
        self.expanding_per_cycle.append(expanding)
        self.trigger_r1.append(r1)
        self.trigger_r2.append(r2)

    def record_lb(self, cycle_index: int) -> None:
        self.lb_cycle_indices.append(cycle_index)


@dataclass
class RunMetrics:
    """Aggregate outcome of one scheduled run.

    Field names follow the paper's table headers where one exists.
    """

    scheme: str
    n_pes: int
    total_work: int
    n_expand: int
    n_lb: int
    n_transfers: int
    n_init_lb: int
    ledger: TimeLedger
    trace: Trace | None = None
    #: Fault-recovery phases run (0 on fault-free runs).
    n_recovery: int = 0
    #: ``repro.faults.runtime.FaultReport`` when faults were injected.
    faults: object | None = None

    @property
    def efficiency(self) -> float:
        """``E = T_calc / (T_calc + T_idle + T_lb + T_recovery)``."""
        return self.ledger.efficiency()

    @property
    def speedup(self) -> float:
        """``S = T_calc / T_par``."""
        return self.ledger.speedup(self.n_pes)

    @property
    def avg_busy_fraction(self) -> float:
        """Mean fraction of PEs expanding per cycle (requires a trace)."""
        if self.trace is None or not self.trace.expanding_per_cycle:
            raise ValueError("avg_busy_fraction requires a recorded trace")
        total = sum(self.trace.expanding_per_cycle)
        return total / (len(self.trace.expanding_per_cycle) * self.n_pes)

    def summary_row(self) -> tuple[str, int, int, int, float]:
        """(scheme, N_expand, N_lb, transfers, E) — one table row."""
        return (self.scheme, self.n_expand, self.n_lb, self.n_transfers, self.efficiency)
