"""The paper's primary contribution: SIMD dynamic load balancing.

- :mod:`repro.core.matching` — nGP and GP idle/busy matching (Section 2).
- :mod:`repro.core.triggering` — S^x static, D_P and D_K dynamic triggers.
- :mod:`repro.core.splitting` — alpha-splitting work-donation policies.
- :mod:`repro.core.scheduler` — the search-phase / load-balancing-phase
  lock-step loop that combines a workload, a matcher and a trigger on a
  :class:`~repro.simd.machine.SimdMachine`.
- :mod:`repro.core.config` — the Table 1 scheme registry and the
  ``"GP-S0.90"`` / ``"nGP-DP"`` / ``"GP-DK"`` spec parser.
- :mod:`repro.core.metrics` — run metrics (N_expand, N_lb, transfers, E)
  and per-cycle traces (Figure 8).
"""

from repro.core.interfaces import Workload
from repro.core.splitting import (
    WorkSplitter,
    AlphaSplitter,
    HalfSplitter,
    FixedFractionSplitter,
    UnitSplitter,
)
from repro.core.matching import Matcher, MatchResult, NGPMatcher, GPMatcher
from repro.core.triggering import (
    Trigger,
    TriggerState,
    StaticTrigger,
    DPTrigger,
    DKTrigger,
)
from repro.core.metrics import RunMetrics, Trace
from repro.core.config import Scheme, make_scheme, parse_scheme_spec, PAPER_SCHEMES
from repro.core.scheduler import Scheduler

__all__ = [
    "Workload",
    "WorkSplitter",
    "AlphaSplitter",
    "HalfSplitter",
    "FixedFractionSplitter",
    "UnitSplitter",
    "Matcher",
    "MatchResult",
    "NGPMatcher",
    "GPMatcher",
    "Trigger",
    "TriggerState",
    "StaticTrigger",
    "DPTrigger",
    "DKTrigger",
    "RunMetrics",
    "Trace",
    "Scheme",
    "make_scheme",
    "parse_scheme_spec",
    "PAPER_SCHEMES",
    "Scheduler",
]
