"""Alpha-splitting work-donation policies (Section 3).

The paper's single assumption about work splitting: when work ``w`` is cut
into ``alpha*w`` and ``(1-alpha)*w``, there is a constant ``alpha_0 > 0``
with ``alpha_0 < alpha < 1 - alpha_0``.  Splitters here produce the
*donated* amount for a vector of donor work counts; all guarantee that for
``w >= 2`` both pieces are non-empty and the alpha bound holds (up to
integer rounding, which can only pull a piece *toward* the interior).

The real search engine does not use these — it donates the node at the
bottom of the DFS stack (Section 5); these splitters parameterize the
abstract workloads and the Equation 18 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_probability

__all__ = [
    "WorkSplitter",
    "AlphaSplitter",
    "HalfSplitter",
    "FixedFractionSplitter",
    "UnitSplitter",
]


@dataclass(frozen=True)
class WorkSplitter:
    """Base splitting policy.

    Attributes
    ----------
    alpha_min:
        The paper's ``alpha_0``: guaranteed lower bound on the smaller
        fraction of any split.  Drives the Appendix A transfer bound
        ``V(P) * log_{1/(1-alpha_0)} W``.
    """

    alpha_min: float = 0.1

    def __post_init__(self) -> None:
        check_probability(self.alpha_min, "alpha_min", inclusive=False)
        if self.alpha_min > 0.5:
            raise ValueError(f"alpha_min must be <= 0.5, got {self.alpha_min}")

    def fractions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Donated fractions for ``n`` simultaneous splits."""
        raise NotImplementedError

    def donation(self, w: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Integer donated amounts for donor work counts ``w``.

        Every donor must hold ``w >= 2``; the donation ``d`` satisfies
        ``1 <= d <= w - 1``, so both pieces are non-empty.
        """
        w = np.asarray(w)
        if np.any(w < 2):
            raise ValueError("all donors must hold at least 2 nodes to split")
        frac = self.fractions(len(w), rng)
        d = np.rint(frac * w).astype(w.dtype)
        return np.clip(d, 1, w - 1)


@dataclass(frozen=True)
class AlphaSplitter(WorkSplitter):
    """Donated fraction drawn uniformly from ``[alpha_min, alpha_max]``.

    The default ``[alpha_min, 0.5]`` models donating the smaller half of an
    unevenly split stack; widening ``alpha_max`` toward ``1 - alpha_min``
    models donating large bottom-of-stack subtrees.
    """

    alpha_max: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        check_probability(self.alpha_max, "alpha_max", inclusive=False)
        if not self.alpha_min <= self.alpha_max <= 1.0 - self.alpha_min:
            raise ValueError(
                f"alpha_max must lie in [alpha_min, 1 - alpha_min] = "
                f"[{self.alpha_min}, {1.0 - self.alpha_min}], got {self.alpha_max}"
            )

    def fractions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.alpha_min, self.alpha_max, size=n)


@dataclass(frozen=True)
class HalfSplitter(WorkSplitter):
    """Ideal splitter: always donate exactly half (``alpha = 0.5``)."""

    def fractions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, 0.5)


@dataclass(frozen=True)
class UnitSplitter(WorkSplitter):
    """Donate exactly one node per transfer — a *non*-alpha splitter.

    This deliberately violates the paper's alpha-splitting assumption: it
    models the first Frye-Myczkowski scheme, whose "poor splitting
    mechanism" (Section 8) gives each idle processor a single piece of
    work.  Every Appendix A bound fails under it, which the baseline
    benchmarks demonstrate.
    """

    def fractions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        raise TypeError("UnitSplitter donates fixed amounts, not fractions")

    def donation(self, w: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        w = np.asarray(w)
        if np.any(w < 2):
            raise ValueError("all donors must hold at least 2 nodes to split")
        return np.ones(len(w), dtype=w.dtype)


@dataclass(frozen=True)
class FixedFractionSplitter(WorkSplitter):
    """Always donate the fixed fraction ``fraction``.

    Used by ablations to study splitter quality: ``fraction`` near
    ``alpha_min`` gives the worst splits the paper's assumption allows.
    """

    fraction: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.alpha_min <= self.fraction <= 1.0 - self.alpha_min:
            raise ValueError(
                f"fraction must lie in [alpha_min, 1 - alpha_min], got {self.fraction}"
            )

    def fractions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.fraction)
