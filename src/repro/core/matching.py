"""Idle/busy matching schemes (Section 2).

Both schemes enumerate the idle and the busy processors with sum-scans and
pair equal ranks via rendezvous allocation.  They differ only in where the
busy enumeration *starts*:

- **nGP** (prior art, Powley/Korf/Ferguson and Mahanti/Daniels): always
  from processor 0.  Busy processors early in the machine order bear the
  donation burden repeatedly, which drives the Appendix B bound
  ``V(P) <= (log W)^{(2x-1)/(1-x)}``.
- **GP** (the paper's new scheme): from the first busy processor *after* a
  *global pointer* that remembers the last donor of the previous phase,
  wrapping around.  This rotates the burden, giving the much stronger
  worst case ``V(P) = ceil(1/(1-x))``.

Figure 2's worked example is reproduced verbatim in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# repro-lint: disable-file=R004 -- the matchers ARE the machine-level
# implementation of the LB phase: every scan they perform is priced into the
# ledger by the scheduler through Matcher.setup_scans, so calling the scan
# primitives directly here does not bypass cost accounting.
from repro.simd.scan import enumerate_mask, rendezvous

__all__ = ["MatchResult", "Matcher", "NGPMatcher", "GPMatcher"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one matching step.

    Attributes
    ----------
    donors / receivers:
        Equal-length index arrays; ``donors[r]`` gives work to
        ``receivers[r]``.
    busy_ranks:
        The enumeration assigned to busy PEs (``-1`` for non-busy) — kept
        for introspection and the Figure 2 walkthrough.
    idle_ranks:
        Likewise for idle PEs.
    """

    donors: np.ndarray
    receivers: np.ndarray
    busy_ranks: np.ndarray
    idle_ranks: np.ndarray

    def __len__(self) -> int:
        return len(self.donors)


class Matcher:
    """Base matching scheme.

    Subclasses implement :meth:`match`.  ``setup_scans`` is the number of
    sum-scan operations the scheme's setup step costs on the machine
    (Section 3.3: GP pays extra bookkeeping scans for the pointer).

    By default the enumeration and rendezvous primitives are the plain
    :mod:`repro.simd.scan` functions; :meth:`configure_kernels` reroutes
    them through the :mod:`repro.kernels` registry (the batched executor
    shares its workspace with every cell's matcher this way).
    """

    name: str = "abstract"
    setup_scans: int = 2
    kernel_backend: str = "numpy"

    def configure_kernels(self, backend: str, workspace=None) -> None:
        """Route rendezvous/enumeration through a kernel tier.

        ``backend`` is resolved like every other dispatch site
        (``"auto"`` picks the best available); a workspace is created on
        demand when a non-numpy tier needs one and none is supplied.
        """
        from repro.kernels.dispatch import get_kernel, resolve_backend
        from repro.kernels.workspace import KernelWorkspace

        resolved = resolve_backend(backend)
        self.kernel_backend = resolved
        if workspace is None and resolved != "numpy":
            workspace = KernelWorkspace()
        self._kernel_ws = workspace
        self._rendezvous_kernel = get_kernel("match.rendezvous", resolved)
        self._enumerate_kernel = get_kernel("scan.enumerate_mask", resolved)

    def _rendezvous(self, requesters, grantors, *, grantor_order=None):
        kernel = getattr(self, "_rendezvous_kernel", None)
        if kernel is None:
            return rendezvous(requesters, grantors, grantor_order=grantor_order)
        return kernel(
            requesters, grantors, grantor_order=grantor_order, ws=self._kernel_ws
        )

    def _enumerate(self, mask):
        kernel = getattr(self, "_enumerate_kernel", None)
        if kernel is None:
            return enumerate_mask(mask)
        return kernel(mask, ws=self._kernel_ws)

    def match(self, busy: np.ndarray, idle: np.ndarray) -> MatchResult:
        """Pair busy donors with idle receivers for one transfer round."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any cross-phase state (the GP pointer)."""

    @staticmethod
    def _validate(busy: np.ndarray, idle: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        busy = np.asarray(busy, dtype=bool)
        idle = np.asarray(idle, dtype=bool)
        if busy.shape != idle.shape or busy.ndim != 1:
            raise ValueError("busy and idle must be equal-length 1-D masks")
        if np.any(busy & idle):
            raise ValueError("a processor cannot be both busy and idle")
        return busy, idle


class NGPMatcher(Matcher):
    """The no-global-pointer scheme: enumerate busy PEs from processor 0."""

    name = "nGP"
    setup_scans = 2

    def match(self, busy: np.ndarray, idle: np.ndarray) -> MatchResult:
        busy, idle = self._validate(busy, idle)
        donors, receivers = self._rendezvous(idle, busy)
        return MatchResult(
            donors=donors,
            receivers=receivers,
            busy_ranks=self._enumerate(busy),
            idle_ranks=self._enumerate(idle),
        )


@dataclass
class GPMatcher(Matcher):
    """The global-pointer scheme (the paper's new matching algorithm).

    ``pointer`` holds the index of the last processor that donated work; a
    fresh matcher starts with the pointer on the last processor so that the
    first enumeration begins at processor 0, matching nGP's first phase.

    After each :meth:`match`, the pointer advances to the last donor
    (Section 2.2: "advance the global pointer to processor 1" in the
    Figure 2 example).  ``advance`` selects ablation variants:

    - ``"last_donor"`` — the paper's policy (full rotation speed);
    - ``"first_donor"`` — advance only past the first donor (slower
      rotation: with k pairs per phase, takes k times as many phases to
      cover the busy set);
    - ``"frozen"`` — never advance (degenerates to an offset nGP).
    """

    pointer: int | None = None
    advance: str = "last_donor"
    name: str = field(default="GP", init=False)
    setup_scans: int = field(default=3, init=False)

    def __post_init__(self) -> None:
        if self.advance not in ("last_donor", "first_donor", "frozen"):
            raise ValueError(
                "advance must be 'last_donor', 'first_donor' or 'frozen', "
                f"got {self.advance!r}"
            )

    def reset(self) -> None:
        self.pointer = None

    def rotated_busy_order(self, busy: np.ndarray) -> np.ndarray:
        """Busy indices ordered starting after the global pointer, wrapped."""
        busy_idx = np.flatnonzero(busy)
        if self.pointer is None or len(busy_idx) == 0:
            return busy_idx
        # First busy processor strictly after the pointer, wrapping around.
        start = int(np.searchsorted(busy_idx, self.pointer, side="right"))
        if start >= len(busy_idx):
            start = 0
        return np.concatenate([busy_idx[start:], busy_idx[:start]])

    def match(self, busy: np.ndarray, idle: np.ndarray) -> MatchResult:
        busy, idle = self._validate(busy, idle)
        order = self.rotated_busy_order(busy)
        donors, receivers = self._rendezvous(idle, busy, grantor_order=order)
        if len(donors) > 0:
            if self.advance == "last_donor":
                self.pointer = int(donors[-1])
            elif self.advance == "first_donor":
                self.pointer = int(donors[0])
            # "frozen": leave the pointer untouched.
        busy_ranks = np.full(len(busy), -1, dtype=np.int64)
        if len(order) > 0:
            busy_ranks[order] = np.arange(len(order))
        return MatchResult(
            donors=donors,
            receivers=receivers,
            busy_ranks=busy_ranks,
            idle_ranks=self._enumerate(idle),
        )
