"""Asynchronous MIMD work stealing (Section 9's comparison point).

The paper concludes that its SIMD schemes scale "no worse than ... the
best load balancing schemes on MIMD architectures" (global round robin /
random polling work stealing, isoefficiency ``O(P log P)`` with constant
communication — Kumar, Grama & Rao [17, 20]).  This module implements
that comparator as a stepped discrete-time simulation:

- one step = one node-expansion time ``U_calc``;
- every processor with work expands one node per step *independently*
  (no lock-step idling — the MIMD advantage);
- an idle processor issues a steal request to a victim chosen by global
  round robin (``"grr"``) or uniformly at random (``"random"``); the
  request takes ``steal_latency`` steps in flight, then takes an
  alpha-split of the victim's work — or fails and is re-issued, exactly
  the retry behaviour of the MIMD literature.

Efficiency is ``W / (P * makespan)``: idle waiting is the only overhead
(the donor services steals for free, modelling interrupt-driven MIMD
sends); ``steal_latency`` is where communication cost lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.splitting import AlphaSplitter, WorkSplitter
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int

__all__ = ["MimdResult", "MimdWorkStealing"]


@dataclass(frozen=True)
class MimdResult:
    """Outcome of one MIMD work-stealing run.

    ``makespan_steps`` is the number of steps until the last node is
    expanded; ``efficiency = W / (P * makespan_steps)``.
    ``termination_steps`` (when token detection is enabled) is the
    later step at which the distributed algorithm *knew* the run was
    over — the extra tail is the price of not being omniscient.
    """

    n_pes: int
    total_work: int
    makespan_steps: int
    n_steals: int
    n_failed_steals: int
    termination_steps: int | None = None

    @property
    def efficiency(self) -> float:
        return self.total_work / (self.n_pes * self.makespan_steps)

    @property
    def speedup(self) -> float:
        return self.total_work / self.makespan_steps


class MimdWorkStealing:
    """Stepped simulation of receiver-initiated MIMD work stealing.

    Parameters
    ----------
    total_work:
        ``W`` nodes, initially all on PE 0.
    n_pes:
        ``P``.
    policy:
        Victim selection: ``"grr"`` (global round robin) or ``"random"``.
    steal_latency:
        Steps a steal request spends in flight (round trip); the MIMD
        analogue of ``U_comm``.
    splitter:
        Donation policy on successful steals.
    """

    def __init__(
        self,
        total_work: int,
        n_pes: int,
        *,
        policy: str = "grr",
        steal_latency: int = 2,
        splitter: WorkSplitter | None = None,
        rng: int | np.random.Generator | None = None,
        termination: str = "omniscient",
    ) -> None:
        self.total_work = check_positive_int(total_work, "total_work")
        self.n_pes = check_positive_int(n_pes, "n_pes")
        if policy not in ("grr", "random"):
            raise ValueError(f"policy must be 'grr' or 'random', got {policy!r}")
        if termination not in ("omniscient", "token"):
            raise ValueError(
                f"termination must be 'omniscient' or 'token', got {termination!r}"
            )
        self.policy = policy
        self.steal_latency = check_positive_int(steal_latency, "steal_latency")
        self.splitter = splitter if splitter is not None else AlphaSplitter()
        self.rng = as_generator(rng)
        #: "omniscient": the simulator stops the clock at the last
        #: expansion. "token": a Dijkstra-style white/black token ring
        #: must *detect* termination — the clock runs until it does,
        #: pricing the real distributed tail.
        self.termination = termination

    def _pick_victims(self, thieves: np.ndarray, grr_counter: int) -> tuple[np.ndarray, int]:
        k = len(thieves)
        if self.policy == "grr":
            victims = (grr_counter + np.arange(k)) % self.n_pes
            grr_counter = (grr_counter + k) % self.n_pes
        else:
            victims = self.rng.integers(0, self.n_pes, size=k)
        # Never target yourself; the next processor is as good as random.
        self_hit = victims == thieves
        victims[self_hit] = (victims[self_hit] + 1) % self.n_pes
        return victims, grr_counter

    def run(self, *, max_steps: int | None = None) -> MimdResult:
        P = self.n_pes
        w = np.zeros(P, dtype=np.int64)
        w[0] = self.total_work
        # pending[i] > 0: request in flight; 0: no outstanding request.
        pending = np.zeros(P, dtype=np.int64)
        victim_of = np.full(P, -1, dtype=np.int64)
        expanded = 0
        steps = 0
        n_steals = 0
        n_failed = 0
        grr_counter = 1  # PE 0 holds the root; start polling there last.
        makespan = 0

        # Dijkstra-Feijen-van Gasteren token ring (termination="token"):
        # PEs are white until they donate work; the token moves one hop
        # per step while its holder is passive (no work), picking up any
        # black; a white token completing a lap of an all-passive white
        # ring at PE 0 proves termination.
        token_holder = 0
        token_black = False
        pe_black = np.zeros(P, dtype=bool)
        detected = False

        def running() -> bool:
            if self.termination == "omniscient":
                return expanded < self.total_work
            return not detected

        while running():
            if max_steps is not None and steps >= max_steps:
                raise RuntimeError(f"MIMD simulation exceeded max_steps={max_steps}")
            steps += 1

            active = w > 0
            expanded += int(active.sum())
            np.subtract(w, 1, out=w, where=active)
            if expanded >= self.total_work and makespan == 0:
                makespan = steps

            idle = w == 0
            # Tick requests already in flight (only meaningful while idle;
            # a PE that received work keeps no request).
            pending[~idle] = 0

            arriving = idle & (pending == 1)
            waiting = idle & (pending > 1)
            pending[waiting] -= 1

            # Resolve arrivals: one steal per victim per step; extra
            # thieves on the same victim fail and re-request.
            arrive_idx = np.flatnonzero(arriving)
            if len(arrive_idx) > 0:
                victims = victim_of[arrive_idx]
                order = np.argsort(victims, kind="stable")
                arrive_idx = arrive_idx[order]
                victims = victims[order]
                first = np.ones(len(victims), dtype=bool)
                first[1:] = victims[1:] != victims[:-1]
                winners = arrive_idx[first]
                win_victims = victims[first]
                can_give = w[win_victims] >= 2
                ok_thief = winners[can_give]
                ok_victim = win_victims[can_give]
                if len(ok_thief) > 0:
                    give = self.splitter.donation(w[ok_victim], self.rng)
                    w[ok_victim] -= give
                    w[ok_thief] += give
                    n_steals += len(ok_thief)
                    # Token rule: a donor may have re-activated a PE the
                    # token already passed — it turns black.
                    pe_black[ok_victim] = True
                n_failed += len(arrive_idx) - len(ok_thief)
                pending[arrive_idx] = 0
                pending[ok_thief] = 0

            # Idle PEs without an outstanding request issue one.  Under
            # token termination they keep polling through the tail (they
            # cannot know the work is gone) — the realistic behaviour the
            # omniscient mode elides.
            requesters = np.flatnonzero((w == 0) & (pending == 0))
            still_unknown = (
                expanded < self.total_work or self.termination == "token"
            )
            if still_unknown and len(requesters) > 0:
                victims, grr_counter = self._pick_victims(requesters, grr_counter)
                victim_of[requesters] = victims
                pending[requesters] = self.steal_latency

            if self.termination == "token":
                if w[token_holder] == 0:
                    token_black = token_black or bool(pe_black[token_holder])
                    pe_black[token_holder] = False
                    nxt = (token_holder - 1) % P
                    if nxt == 0:
                        # Token back at the initiator: a white lap with a
                        # passive white initiator proves termination.
                        if (
                            not token_black
                            and w[0] == 0
                            and not pe_black[0]
                        ):
                            detected = True
                        token_black = False  # relaunch a white token
                    token_holder = nxt

        return MimdResult(
            n_pes=P,
            total_work=self.total_work,
            makespan_steps=makespan if makespan else steps,
            n_steals=n_steals,
            n_failed_steals=n_failed,
            termination_steps=steps if self.termination == "token" else None,
        )
