"""Related-work baselines (Section 8 of the paper).

- :mod:`repro.baselines.fess_fegs` — Mahanti & Daniels' FESS and FEGS:
  trigger as soon as one processor idles; nGP-style matching; FESS does a
  single transfer per phase, FEGS redistributes until no processor is
  idle.
- :mod:`repro.baselines.frye` — Frye & Myczkowski's two schemes: the
  give-one-node scheme (poor splitting) and nearest-neighbour balancing.
- :mod:`repro.baselines.mimd` — an asynchronous MIMD work-stealing
  simulator (global round robin / random polling), supporting the
  paper's Section 9 claim that the SIMD schemes' scalability matches the
  best MIMD schemes.
"""

from repro.baselines.fess_fegs import IdleTrigger, fess_scheme, fegs_scheme
from repro.baselines.frye import frye_give_one_scheme, NearestNeighborScheduler
from repro.baselines.mimd import MimdWorkStealing, MimdResult

__all__ = [
    "IdleTrigger",
    "fess_scheme",
    "fegs_scheme",
    "frye_give_one_scheme",
    "NearestNeighborScheduler",
    "MimdWorkStealing",
    "MimdResult",
]
