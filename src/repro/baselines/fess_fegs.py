"""FESS and FEGS (Mahanti & Daniels [23]) — Section 8 baselines.

Both schemes "initiate a load balancing phase as soon as one processor
becomes idle", with nGP-style matching:

- **FESS** (For Each, Single Share): one work transfer per phase.  It
  performs nearly as many LB phases as node-expansion cycles, so its
  efficiency collapses as the LB-to-expansion cost ratio rises — the poor
  scalability the paper's analysis predicts.
- **FEGS** (For Each, Global Share): as many transfers per phase as needed
  to redistribute work evenly.  We model "evenly" as repeated matched
  rounds until no processor is idle; the workload's splitter controls
  piece quality.  (The paper's exact FEGS equalizes node counts globally;
  the repeated-rounds model preserves its defining behaviours — far fewer
  phases than FESS at a higher per-phase cost.)

Both are expressed as :class:`~repro.core.config.Scheme` objects, so the
standard scheduler, machine and metrics apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import Scheme
from repro.core.matching import NGPMatcher
from repro.core.triggering import Trigger, TriggerState
from repro.util.validation import check_positive_int

__all__ = ["IdleTrigger", "fess_scheme", "fegs_scheme"]


@dataclass
class IdleTrigger(Trigger):
    """Trigger as soon as at least ``min_idle`` processors are idle.

    ``min_idle=1`` is the FESS/FEGS policy; larger values give a simple
    hysteresis knob for ablations.
    """

    min_idle: int = 1
    name: str = field(init=False)

    def __post_init__(self) -> None:
        check_positive_int(self.min_idle, "min_idle")
        self.name = f"Idle{self.min_idle}"

    def after_cycle(self, state: TriggerState) -> bool:
        idle = state.n_pes - state.expanding
        self.last_r1 = float(idle)
        self.last_r2 = float(self.min_idle)
        return idle >= self.min_idle


def fess_scheme(*, min_idle: int = 1) -> Scheme:
    """FESS: idle-count trigger, nGP matching, single transfer per phase."""
    return Scheme(
        name="FESS",
        matcher_factory=NGPMatcher,
        trigger_factory=lambda initial_lb_cost: IdleTrigger(min_idle=min_idle),
        multiple_transfers=False,
    )


def fegs_scheme(*, min_idle: int = 1) -> Scheme:
    """FEGS: idle-count trigger, nGP matching, transfers until no idle."""
    return Scheme(
        name="FEGS",
        matcher_factory=NGPMatcher,
        trigger_factory=lambda initial_lb_cost: IdleTrigger(min_idle=min_idle),
        multiple_transfers=True,
    )
