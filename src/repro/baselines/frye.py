"""Frye & Myczkowski's CM-2 load-balancing schemes [6, 34] — Section 8.

Scheme 1 (**give-one**): on trigger, "each busy processor gives one piece
of work to as many idle processors as [it has] pieces of work" — i.e.
single-node donations.  Expressed as a standard scheme (nGP matching,
static trigger, multiple transfer rounds) run against a workload whose
splitter is :class:`~repro.core.splitting.UnitSplitter`; the paper calls
this "clearly ... a poor splitting mechanism", and the baseline bench
shows the resulting transfer blow-up.

Scheme 2 (**nearest neighbour**): after every node-expansion cycle, each
busy processor pushes a split of its work to an idle ring neighbour.  No
global trigger, no scans — only neighbour communication, priced at a
per-cycle constant.  Its isoefficiency is sensitive to splitter quality
(the paper cites ``O(P^{1 + 1/(2 alpha)})`` behaviour on a hypercube),
which the ablation bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme
from repro.core.interfaces import Workload
from repro.core.matching import NGPMatcher
from repro.core.metrics import RunMetrics
from repro.core.triggering import StaticTrigger
from repro.simd.machine import SimdMachine
from repro.util.validation import check_positive

__all__ = ["frye_give_one_scheme", "NearestNeighborScheduler"]


def frye_give_one_scheme(*, x: float = 0.75) -> Scheme:
    """Frye scheme 1: static trigger, nGP matching, one-node donations.

    Pair it with a workload constructed with ``UnitSplitter`` — the scheme
    object only controls trigger/matching/multiplicity; donation size is
    the workload's splitter.
    """
    return Scheme(
        name=f"Frye1-S{x:.2f}",
        matcher_factory=NGPMatcher,
        trigger_factory=lambda initial_lb_cost: StaticTrigger(x=x),
        multiple_transfers=True,
    )


@dataclass
class NearestNeighborScheduler:
    """Frye scheme 2: ring nearest-neighbour balancing every cycle.

    After each lock-step expansion cycle, every idle processor whose left
    ring neighbour is busy receives a split from it.  Each cycle with at
    least one transfer is charged ``neighbor_transfer_time`` of
    communication (a constant — neighbour sends need no router).

    Parameters
    ----------
    workload, machine:
        As for the core scheduler.
    neighbor_transfer_time:
        Seconds per neighbour-communication step; defaults to one tenth of
        the machine's full LB transfer cost.
    max_cycles:
        Safety cap.
    """

    workload: Workload
    machine: SimdMachine
    neighbor_transfer_time: float | None = None
    max_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.workload.n_pes != self.machine.n_pes:
            raise ValueError("workload and machine PE counts differ")
        if self.neighbor_transfer_time is None:
            self.neighbor_transfer_time = 0.1 * self.machine.cost.transfer_time(
                self.machine.n_pes
            )
        check_positive(self.neighbor_transfer_time, "neighbor_transfer_time")

    def run(self) -> RunMetrics:
        wl = self.workload
        machine = self.machine
        while not wl.done():
            if self.max_cycles is not None and machine.n_cycles >= self.max_cycles:
                break
            expanding = wl.expand_cycle()
            machine.charge_expansion_cycle(expanding)
            if wl.done():
                break
            busy = wl.busy_mask()
            idle = wl.idle_mask()
            # Idle PE i receives from ring neighbour i-1 when that
            # neighbour is busy; disjoint pairs by construction.
            receivers = np.flatnonzero(idle & np.roll(busy, 1))
            if len(receivers) == 0:
                continue
            donors = (receivers - 1) % machine.n_pes
            n = wl.transfer(donors, receivers)
            machine.charge_custom_phase(self.neighbor_transfer_time, n_transfers=n)

        return RunMetrics(
            scheme="Frye2-NN",
            n_pes=machine.n_pes,
            total_work=wl.total_expanded(),
            n_expand=machine.n_cycles,
            n_lb=machine.n_lb_phases,
            n_transfers=machine.n_transfers,
            n_init_lb=0,
            ledger=machine.ledger,
            trace=None,
        )
