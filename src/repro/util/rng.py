"""Seeded random-number-generator helpers — the library's only sanctioned
randomness entry point.

All stochastic components of the library accept either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Normalizing
through :func:`as_generator` keeps every experiment reproducible from a
single integer while letting tests inject their own generators; fan-out
(grid cells, per-PE streams) derives children with :func:`spawn_child`.

Lint rule R001 (``python -m repro lint``) enforces that no other module
calls ``random`` or ``numpy.random`` directly: a stray ``default_rng()``
elsewhere would silently break the lock-step determinism the paper's
scheme comparisons (and this repo's regression tables) depend on.  This
file is the rule's single exemption.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_child"]


def as_generator(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, or an existing generator
        (returned unchanged so callers can share a stream).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_child(base_seed: int, index: int) -> np.random.Generator:
    """Derive the ``index``-th independent child generator of ``base_seed``.

    Children are a pure function of ``(base_seed, index)`` — grid runners use
    this so cell ``i`` of a sweep sees the same stream no matter how many
    cells ran before it or in what order.  The mapping is also independent
    of the host process: the same ``(base_seed, index)`` yields the same
    stream in a fresh interpreter, under any ``PYTHONHASHSEED``, and across
    platforms (numpy's ``SeedSequence`` is a fixed integer-hash construction),
    so distributed or multi-process sweeps can shard cells freely.  The
    regression suite asserts this cross-process equality.
    """
    return np.random.default_rng(np.random.SeedSequence(base_seed, spawn_key=(index,)))
