"""Seeded random-number-generator helpers.

All stochastic components of the library accept either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Normalizing
through :func:`as_generator` keeps every experiment reproducible from a
single integer while letting tests inject their own generators.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_child"]


def as_generator(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, or an existing generator
        (returned unchanged so callers can share a stream).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_child(base_seed: int, index: int) -> np.random.Generator:
    """Derive the ``index``-th independent child generator of ``base_seed``.

    Children are a pure function of ``(base_seed, index)`` — grid runners use
    this so cell ``i`` of a sweep sees the same stream no matter how many
    cells ran before it or in what order.
    """
    return np.random.default_rng(np.random.SeedSequence(base_seed, spawn_key=(index,)))
