"""Terminal scatter/line plots for the figure artifacts.

Every paper figure the harness regenerates is a set of (x, y) series;
this renderer draws them on a character grid with axes and a legend —
enough to *see* the Figure 4/7 isoefficiency fans or the Figure 8
activity traces in a text file, no plotting dependency required.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

__all__ = ["ascii_plot"]

#: Per-series markers, cycled in insertion order.
MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log-scaled axes require positive values")
        return math.log10(value)
    return value


def _axis_range(values: Sequence[float]) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        pad = abs(lo) * 0.5 + 1.0
        return lo - pad, hi + pad
    return lo, hi


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
    logy: bool = False,
    title: str | None = None,
) -> str:
    """Render named point series on a character grid.

    Parameters
    ----------
    series:
        Label -> list of (x, y).  Empty series are skipped.
    width, height:
        Plot area size in characters (axes and legend are extra).
    logx, logy:
        Log-scale an axis (all values on it must be positive).
    """
    populated = {k: v for k, v in series.items() if v}
    if not populated:
        raise ValueError("ascii_plot needs at least one non-empty series")
    if width < 8 or height < 4:
        raise ValueError("plot area must be at least 8x4")

    xs = [_transform(x, logx) for pts in populated.values() for x, _ in pts]
    ys = [_transform(y, logy) for pts in populated.values() for _, y in pts]
    x_lo, x_hi = _axis_range(xs)
    y_lo, y_hi = _axis_range(ys)

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, pts) in enumerate(populated.items()):
        marker = MARKERS[idx % len(MARKERS)]
        for x, y in pts:
            tx = _transform(x, logx)
            ty = _transform(y, logy)
            col = round((tx - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((ty - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    def fmt(v: float, log: bool) -> str:
        return f"{10 ** v:.3g}" if log else f"{v:.3g}"

    lines: list[str] = []
    if title:
        lines.append(title)
    y_hi_lab, y_lo_lab = fmt(y_hi, logy), fmt(y_lo, logy)
    gutter = max(len(y_hi_lab), len(y_lo_lab))
    for r, row in enumerate(grid):
        if r == 0:
            label = y_hi_lab.rjust(gutter)
        elif r == height - 1:
            label = y_lo_lab.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_lo_lab, x_hi_lab = fmt(x_lo, logx), fmt(x_hi, logx)
    pad = width - len(x_lo_lab) - len(x_hi_lab)
    lines.append(" " * (gutter + 2) + x_lo_lab + " " * max(1, pad) + x_hi_lab)
    lines.append(f"{' ' * (gutter + 2)}x: {x_label}   y: {y_label}")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {label}" for i, label in enumerate(populated)
    )
    lines.append(" " * (gutter + 2) + legend)
    return "\n".join(lines)
