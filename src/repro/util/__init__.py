"""Shared utilities: seeded RNG handling, validation helpers, table
rendering, durable file publication."""

from repro.util.atomic import atomic_write_bytes, atomic_write_text, fsync_dir
from repro.util.rng import as_generator, spawn_child
from repro.util.validation import check_probability, check_positive, check_positive_int
from repro.util.tables import format_table

__all__ = [
    "as_generator",
    "spawn_child",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "check_probability",
    "check_positive",
    "check_positive_int",
    "format_table",
]
