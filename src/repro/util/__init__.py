"""Shared utilities: seeded RNG handling, validation helpers, table rendering."""

from repro.util.rng import as_generator, spawn_child
from repro.util.validation import check_probability, check_positive, check_positive_int
from repro.util.tables import format_table

__all__ = [
    "as_generator",
    "spawn_child",
    "check_probability",
    "check_positive",
    "check_positive_int",
    "format_table",
]
