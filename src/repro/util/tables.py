"""Plain-text table rendering for experiment reports.

The benchmark harness prints tables in the same row/column layout the paper
uses; this module owns the formatting so every table looks consistent.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table"]


def _cell(value: object, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec is None or isinstance(value, str):
        return str(value)
    return format(value, spec)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    formats: Sequence[str | None] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row tuples; ``None`` cells render as ``-``.
    formats:
        Optional per-column format specs (e.g. ``".2f"``) applied to
        non-string cells.
    title:
        Optional heading line printed above the table.
    """
    headers = [str(h) for h in headers]
    if formats is None:
        formats = [None] * len(headers)
    if len(formats) != len(headers):
        raise ValueError("formats length must match headers length")

    rendered = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        rendered.append([_cell(v, f) for v, f in zip(row, formats)])

    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
