"""Crash- and concurrency-safe file publication.

Every durable artifact in this repository (record stores, the
write-ahead cell journal, checkpoints, metrics snapshots, the serve
layer's shared record store) is published the same way: stage the
complete payload in a temp file, ``fsync`` it, ``os.replace`` it into
place, then ``fsync`` the parent directory.  This module is the single
implementation of that sequence, because the historical copy-pasted
pattern had two real bugs that only bite under concurrency or a crash:

- **Fixed-name temp files** — staging to ``<name>.tmp`` means two
  concurrent savers write the *same* sibling; one ``os.replace`` can
  publish the other's half-written payload, and the loser's replace
  fails with ``FileNotFoundError``.  :func:`atomic_write_bytes` stages
  through ``tempfile.mkstemp(dir=path.parent)``, whose name is unique
  per call, so any number of concurrent writers race only on *which
  complete payload wins*, never on partial content.
- **Missing fsyncs** — ``os.replace`` orders the rename, not the data:
  a crash right after replace can leave an empty or short target (data
  never hit disk), and a crash before the directory entry is durable
  can lose the *file itself* even though its bytes were synced.  The
  helper fsyncs the staged file before the replace and the parent
  directory after it (:func:`fsync_dir`).

The write is all-or-nothing: on any failure the staged temp file is
unlinked and the previous target (if any) is untouched.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["fsync_dir", "atomic_write_bytes", "atomic_write_text"]


def fsync_dir(path: str | Path) -> None:
    """Flush directory ``path``'s entry table to disk.

    ``os.replace`` makes a rename *atomic*, not *durable*: until the
    containing directory is fsynced, a crash can forget the new entry
    entirely — the failure mode the journal's "survives any crash"
    contract and the store's atomic-replace docstring both rule out.
    Call this after every ``os.replace`` that publishes durable state.

    Platforms whose directories cannot be opened (e.g. Windows) make
    this a silent no-op — there the rename-durability gap is unfixable
    from userspace, and refusing to save would be strictly worse.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Durably publish ``data`` at ``path`` via a unique staged temp file.

    The payload is written to a ``tempfile.mkstemp`` sibling (unique per
    call — concurrent writers can never clobber each other's staging),
    flushed and fsynced, moved into place with ``os.replace``, and the
    parent directory is fsynced so the entry survives a crash.  On any
    failure the temp file is removed and the previous ``path`` is left
    intact.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    return atomic_write_bytes(path, text.encode("utf-8"))
