"""Small argument-validation helpers shared across the library.

Raising early with a named-parameter message is cheaper to debug than a
numpy broadcasting error three calls deeper.
"""

from __future__ import annotations

__all__ = ["check_probability", "check_positive", "check_positive_int"]


def check_probability(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)``)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a strictly positive integer."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue
