"""The framework-free service core: cache logic, workers, observability.

:class:`ExperimentService` is everything the HTTP adapters delegate to.
Its cache discipline, end to end:

1. A submission is expanded to its cells with the *same* planning code
   an offline sweep uses (:func:`~repro.experiments.runner.plan_grid`,
   :func:`~repro.experiments.runner.cell_seed`), and every cell gets its
   content-addressed :func:`~repro.experiments.journal.cell_key`.
2. Cells already in the shared :class:`~repro.serve.store.RecordStore`
   are cache **hits**; a job whose cells all hit completes immediately
   — ``cache_hit`` true, nothing queued, nothing recomputed.
3. Anything else enters the bounded queue.  A grid job with *partial*
   hits pre-seeds a per-job write-ahead journal with the cached records
   and runs ``run_grid(journal=..., resume=True)`` — the existing
   resume machinery skips every seeded cell, so cached cells are never
   recomputed even inside a mixed job (the ``grid.resumed_cells``
   counter proves it).
4. Completed cells are published back to the store, so the next
   identical submission — from any worker of any service process
   sharing the directory — hits.

Every hit/miss increments ``serve.cache{result=...}`` on the
service-wide :class:`~repro.obs.registry.MetricsRegistry` (per *cell*,
the unit of caching); per-job run metrics are recorded into a private
registry and folded in afterwards, so worker threads never write one
registry concurrently.  Each job also streams a JSONL event file —
lifecycle :class:`~repro.serve.schemas.JobEvent` transitions, plus the
scheduler's own per-cycle events for solve jobs — served verbatim by
``GET /jobs/{id}/events``.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.errors import QueueFullError, RecordNotFoundError
from repro.obs import JsonlSink, MetricsRegistry, Observability
from repro.serve.queue import Job, JobQueue
from repro.serve.schemas import GridRequest, JobEvent, SolveRequest
from repro.serve.store import RecordStore

__all__ = ["ExperimentService"]


class ExperimentService:
    """Submit experiments, cache by content address, serve records.

    ``root`` holds everything the service persists: the shared record
    store under ``root/cells`` and per-job artifacts (event stream,
    write-ahead journal) under ``root/jobs/<job-id>``.  Several service
    processes may share one ``root`` — the store is concurrency-safe by
    construction.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        workers: int = 2,
        max_pending: int = 32,
    ) -> None:
        self.root = Path(root)
        self.store = RecordStore(self.root / "cells")
        self.jobs_dir = self.root / "jobs"
        self.queue = JobQueue(workers=workers, max_pending=max_pending)
        self.registry = MetricsRegistry()
        self._registry_lock = threading.Lock()

    # -- metrics -----------------------------------------------------------

    def _count(self, name: str, labels: dict | None = None, n: float = 1) -> None:
        with self._registry_lock:
            self.registry.counter(name, labels).inc(n)

    def _fold(self, job_registry: MetricsRegistry) -> None:
        with self._registry_lock:
            self.registry.fold(job_registry)

    def metrics(self) -> dict:
        """The service-wide registry snapshot (``GET /metrics``)."""
        with self._registry_lock:
            return self.registry.snapshot()

    # -- job plumbing ------------------------------------------------------

    def _job_dir(self, job: Job) -> Path:
        path = self.jobs_dir / job.id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def _emit(self, job: Job, status: str, detail: str = "") -> None:
        """Append one lifecycle event to the job's JSONL stream."""
        if job.events_path is None:
            job.events_path = self._job_dir(job) / "events.jsonl"
        sink = JsonlSink(job.events_path)
        sink.emit(JobEvent(cycle=job.next_seq(), status=status, detail=detail))
        sink.close()

    def _cell_keys(self, plans: list) -> list[str]:
        from repro.experiments.journal import cell_key

        return [
            cell_key(p.scheme.name, p.total_work, p.n_pes, p.seed)
            for p in plans
        ]

    # -- solve -------------------------------------------------------------

    def submit_solve(self, request: SolveRequest) -> dict:
        """Run (or serve from cache) one ``(scheme, W, P, seed)`` cell."""
        from repro.experiments.journal import cell_key

        self._count("serve.requests", {"endpoint": "solve"})
        key = cell_key(
            request.scheme, request.total_work, request.n_pes, request.seed
        )
        job = Job(
            id=self.queue.new_id(),
            kind="solve",
            request=request.to_dict(),
            keys=[key],
            n_cells=1,
        )
        if key in self.store:
            job.status = "done"
            job.cache_hit = True
            job.cached_cells = 1
            self._count("serve.cache", {"result": "hit"})
            self.queue.register(job)
            self._emit(job, "cache-hit", f"record {key[:12]} served from store")
            self._emit(job, "finished", "0 of 1 cells computed")
        else:
            # The "queued" event is written *before* the pool can start
            # the job, so the worker thread is the only writer of the
            # stream from here on (no interleaved appends).
            self._emit(job, "queued")
            self._submit(job, self._run_solve)
            self._count("serve.cache", {"result": "miss"})
        return job.view()

    def _submit(self, job: Job, fn) -> None:
        """Admit ``job`` to the queue; scrub its provisional event
        stream when backpressure refuses it (no orphan artifacts, no
        cache counters for a request that was never accepted)."""
        try:
            self.queue.submit(job, fn)
        except QueueFullError:
            if job.events_path is not None and job.events_path.exists():
                job.events_path.unlink()
            raise

    def _run_solve(self, job: Job) -> None:
        from repro.experiments.runner import GridRecord, run_divisible

        request = SolveRequest(**job.request)
        self._emit(job, "started")
        registry = MetricsRegistry()
        # One persistent sink for the whole run: the scheduler streams
        # its per-cycle/LB events into the same file the lifecycle
        # events use, in order, from this one thread.
        sink = JsonlSink(job.events_path)
        try:
            metrics = run_divisible(
                request.scheme,
                request.total_work,
                request.n_pes,
                seed=request.seed,
                obs=Observability(events=sink, metrics=registry),
            )
        finally:
            sink.close()
        record = GridRecord(
            metrics.scheme, request.n_pes, request.total_work, metrics
        )
        self.store.put(job.keys[0], record)
        job.computed_cells = 1
        self._fold(registry)
        self._emit(job, "finished", "1 of 1 cells computed")

    # -- grid --------------------------------------------------------------

    def submit_grid(self, request: GridRequest) -> dict:
        """Run (or serve from cache) a ``schemes x works x pes`` grid."""
        from repro.experiments.runner import plan_grid

        self._count("serve.requests", {"endpoint": "grid"})
        plans = plan_grid(
            list(request.schemes),
            list(request.works),
            list(request.pes),
            base_seed=request.base_seed,
        )
        keys = self._cell_keys(plans)
        job = Job(
            id=self.queue.new_id(),
            kind="grid",
            request=request.to_dict(),
            keys=keys,
            n_cells=len(keys),
        )
        hits = sum(1 for key in keys if key in self.store)
        misses = len(keys) - hits
        if misses == 0:
            job.status = "done"
            job.cache_hit = True
            job.cached_cells = hits
            self._count("serve.cache", {"result": "hit"}, hits)
            self.queue.register(job)
            self._emit(
                job, "cache-hit", f"all {hits} cells served from store"
            )
            self._emit(job, "finished", f"0 of {hits} cells computed")
        else:
            job.cached_cells = hits
            self._emit(
                job, "queued", f"{hits} of {len(keys)} cells already cached"
            )
            self._submit(job, self._run_grid)
            if hits:
                self._count("serve.cache", {"result": "hit"}, hits)
            self._count("serve.cache", {"result": "miss"}, misses)
        return job.view()

    def _run_grid(self, job: Job) -> None:
        from repro.experiments.journal import CellJournal
        from repro.experiments.runner import plan_grid, run_grid

        request = GridRequest(
            schemes=tuple(job.request["schemes"]),
            works=tuple(job.request["works"]),
            pes=tuple(job.request["pes"]),
            base_seed=job.request["base_seed"],
        )
        plans = plan_grid(
            list(request.schemes),
            list(request.works),
            list(request.pes),
            base_seed=request.base_seed,
        )
        journal_path = self._job_dir(job) / "journal.jrnl"
        journal = CellJournal(journal_path)
        # Pre-seed the job's write-ahead journal with every cached cell;
        # run_grid(resume=True) then skips exactly those — cached cells
        # are never recomputed, even inside a partially cached job.
        seeded = 0
        for plan, key in zip(plans, job.keys):
            record = self.store.get(key)
            if record is not None and key not in journal:
                journal.append(key, plan.index, record)
                seeded += 1
        self._emit(
            job,
            "started",
            f"{seeded} of {len(plans)} cells resumed from cache",
        )
        registry = MetricsRegistry()
        records = run_grid(
            list(request.schemes),
            list(request.works),
            list(request.pes),
            base_seed=request.base_seed,
            journal=journal_path,
            resume=True,
            registry=registry,
        )
        for key, record in zip(job.keys, records):
            if key not in self.store:
                self.store.put(key, record)
        job.cached_cells = seeded
        job.computed_cells = len(records) - seeded
        self._fold(registry)
        self._emit(
            job,
            "finished",
            f"{job.computed_cells} of {len(records)} cells computed",
        )

    # -- reads -------------------------------------------------------------

    def job(self, job_id: str) -> dict:
        """``GET /jobs/{id}`` — the job's current view (typed 404)."""
        self._count("serve.requests", {"endpoint": "jobs"})
        return self.queue.get(job_id).view()

    def job_events(self, job_id: str) -> str:
        """``GET /jobs/{id}/events`` — the raw JSONL stream so far."""
        self._count("serve.requests", {"endpoint": "events"})
        job = self.queue.get(job_id)
        if job.events_path is None or not job.events_path.exists():
            return ""
        return job.events_path.read_text()

    def record(self, key: str) -> dict:
        """``GET /records/{key}`` — the stored payload (typed 404)."""
        self._count("serve.requests", {"endpoint": "records"})
        payload = self.store.get_payload(key)
        if payload is None:
            raise RecordNotFoundError(f"no record under key {key!r}")
        return payload

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Testing/CLI helper: block until a job settles; return its view."""
        return self.queue.wait(job_id, timeout=timeout).view()

    def close(self) -> None:
        """Stop the worker pool (idempotent)."""
        self.queue.shutdown()
