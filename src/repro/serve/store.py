"""The shared, content-addressed record store behind the service cache.

One file per cell record, named by the cell's
:func:`~repro.experiments.journal.cell_key` (a SHA-256 hex digest over
``(scheme spec, W, P, seed, code_version)``) and sharded into 256
two-hex-character subdirectories so a store holding millions of cells
never puts them all in one directory.  Payloads reuse the ``store.py``
record schema verbatim (:func:`~repro.experiments.store.record_to_dict`
— repr-float round-trip, so a cached record reloads bit-identical to
the run that produced it).

**Concurrent-writer contract.**  Every ``put`` goes through
:func:`repro.util.atomic.atomic_write_bytes`: a unique staged temp
file, fsync, ``os.replace``, directory fsync.  Any number of service
workers (threads *or* processes on a shared filesystem) may put the
same key simultaneously; the winner is one *complete* payload — and by
the determinism contract all writers of one key carry identical bytes
anyway, so the race is invisible.  Readers see either the old record,
the new record, or (first write) nothing — never a torn file.

Corrupt or version-mismatched payloads raise the same typed
:class:`~repro.errors.RecordStoreError` as the offline store; a missing
key is simply a cache miss (``get`` returns ``None``).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.errors import BadRequestError, RecordStoreError
from repro.experiments.runner import GridRecord
from repro.experiments.store import (
    SCHEMA_VERSION,
    record_from_dict,
    record_to_dict,
)
from repro.util.atomic import atomic_write_text, fsync_dir

__all__ = ["RecordStore"]

#: A cell key is a SHA-256 hex digest — anything else is refused before
#: it can touch the filesystem (the HTTP layer passes keys verbatim).
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not _KEY_RE.match(key):
        raise BadRequestError(
            f"record key must be a 64-char lowercase hex digest, got {key!r}"
        )
    return key


class RecordStore:
    """Content-addressed ``key -> GridRecord`` store on a shared directory.

    ``root`` is created on first use.  The store is safe for concurrent
    readers and writers (see the module docstring); it holds no open
    handles and no in-memory state beyond the root path, so any number
    of service processes can share one directory.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where ``key``'s record lives (whether or not it exists yet)."""
        _check_key(key)
        return self.root / key[:2] / f"{key}.json"

    # -- writes ------------------------------------------------------------

    def put(self, key: str, record: GridRecord) -> Path:
        """Durably publish ``record`` under ``key`` (idempotent).

        The shard directory's entry in the store root is fsynced on
        first creation, completing the directory-durability chain from
        payload bytes up to the root.
        """
        path = self.path_for(key)
        existed = path.parent.is_dir()
        path.parent.mkdir(exist_ok=True)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "record": record_to_dict(record, traces=False),
        }
        atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True))
        if not existed:
            fsync_dir(self.root)
        return path

    # -- reads -------------------------------------------------------------

    def get_payload(self, key: str) -> dict | None:
        """The raw JSON payload under ``key``, or ``None`` on a miss.

        Raises :class:`~repro.errors.RecordStoreError` when the file
        exists but is unreadable, not valid JSON, structurally wrong, or
        written under an unsupported record schema.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise RecordStoreError(f"cannot read record {path}: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RecordStoreError(f"{path} is not valid JSON: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or "record" not in payload
        ):
            raise RecordStoreError(f"{path} is not a record payload for {key}")
        if payload.get("schema_version") != SCHEMA_VERSION:
            raise RecordStoreError(
                f"{path} has unsupported record schema version "
                f"{payload.get('schema_version')!r} (expected {SCHEMA_VERSION})"
            )
        return payload

    def get(self, key: str) -> GridRecord | None:
        """The record under ``key``, or ``None`` on a miss (typed
        ``RecordStoreError`` on corruption, like the offline store)."""
        payload = self.get_payload(key)
        if payload is None:
            return None
        try:
            return record_from_dict(payload["record"])
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise RecordStoreError(
                f"{self.path_for(key)} has a malformed record: {exc}"
            ) from exc

    def keys(self) -> list[str]:
        """Every key currently in the store, sorted."""
        return sorted(p.stem for p in self.root.glob("??/*.json"))

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))
