"""repro.serve — the content-addressed experiment service.

The ROADMAP's "millions of users" path: experiments are pure functions
of their content-addressed :func:`~repro.experiments.journal.cell_key`
``(scheme spec, W, P, seed, code_version)``, so a service that caches
records under that key serves traffic that scales with *distinct*
experiments, not with requests.  Identical re-submissions are answered
from the shared :class:`~repro.serve.store.RecordStore` — bit-identical
to a direct :func:`~repro.experiments.runner.run_grid` run, by the same
repr-float round-trip identity the write-ahead journal's resume
guarantee rests on — and never enter the worker queue.

Layers (each usable on its own):

- :mod:`repro.serve.store` — :class:`RecordStore`, the shared on-disk
  cache of per-cell records (durable writes via
  :mod:`repro.util.atomic`; safe under concurrent writers);
- :mod:`repro.serve.queue` — :class:`Job` / :class:`JobQueue`, a
  bounded worker pool with explicit :class:`~repro.errors.
  QueueFullError` backpressure;
- :mod:`repro.serve.service` — :class:`ExperimentService`, the
  framework-free core: submit/lookup/cache logic, per-job JSONL event
  streams, ``serve.*`` metrics;
- :mod:`repro.serve.schemas` — request parsing/validation and the
  :class:`JobEvent` lifecycle trace event;
- :mod:`repro.serve.app` — HTTP adapters: a dependency-free
  ``http.server`` backend that always works, and a FastAPI app factory
  used when FastAPI is installed (``repro serve`` picks automatically).

See ``docs/serve.md`` for the endpoint reference and deployment notes.
"""

from repro.serve.app import create_fastapi_app, create_server, have_fastapi
from repro.serve.queue import Job, JobQueue
from repro.serve.schemas import (
    GridRequest,
    JobEvent,
    SolveRequest,
    parse_grid_request,
    parse_solve_request,
)
from repro.serve.service import ExperimentService
from repro.serve.store import RecordStore

__all__ = [
    "ExperimentService",
    "RecordStore",
    "Job",
    "JobQueue",
    "JobEvent",
    "SolveRequest",
    "GridRequest",
    "parse_solve_request",
    "parse_grid_request",
    "create_server",
    "create_fastapi_app",
    "have_fastapi",
]
