"""Bounded job queue: jobs, states, and the worker pool.

Jobs run on a fixed :class:`~concurrent.futures.ThreadPoolExecutor`
(the compute inside each job is numpy kernels and, for grids, the
batched mega-arena — both release or amortize the GIL well enough for a
service whose point is *not* computing most requests).  Admission is
bounded: at most ``max_pending`` jobs may be queued-or-running, and the
next submission raises :class:`~repro.errors.QueueFullError` — explicit
backpressure instead of an unbounded backlog.  Cache hits bypass the
queue entirely (they are registered already-done), so a saturated
worker pool never blocks the cheap path.

A failed job is never lost: the exception's type and message land on
the job (``status="failed"``), and the HTTP layer serves them from
``GET /jobs/{id}`` — typed error reporting, not a dropped future.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ConfigError, JobNotFoundError, QueueFullError

__all__ = ["Job", "JobQueue"]

#: The job states ``GET /jobs/{id}`` reports.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted experiment and its lifecycle bookkeeping.

    ``keys`` holds the content-addressed cell key of every cell the job
    covers (one for a solve, the scheme-major list for a grid);
    ``cached_cells`` / ``computed_cells`` split them by how they were
    satisfied.  ``cache_hit`` is true only for the *whole-job* hit —
    every cell served from the store, nothing queued.
    """

    id: str
    kind: str  # "solve" | "grid"
    request: dict
    keys: list[str] = field(default_factory=list)
    status: str = "queued"
    cache_hit: bool = False
    n_cells: int = 0
    cached_cells: int = 0
    computed_cells: int = 0
    error: str | None = None
    error_type: str | None = None
    events_path: Path | None = None
    _seq: itertools.count = field(default_factory=itertools.count, repr=False)

    def next_seq(self) -> int:
        """Monotone sequence number for this job's lifecycle events."""
        return next(self._seq)

    def view(self) -> dict:
        """The job as its stable JSON response shape."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "request": self.request,
            "cache_hit": self.cache_hit,
            "n_cells": self.n_cells,
            "cached_cells": self.cached_cells,
            "computed_cells": self.computed_cells,
            "keys": list(self.keys),
        }
        if self.error is not None:
            out["error"] = self.error
            out["error_type"] = self.error_type
        return out


class JobQueue:
    """A registry of jobs plus a bounded worker pool.

    ``max_pending`` bounds queued-plus-running jobs (admission control);
    finished jobs stay in the registry for status/result lookups.
    """

    def __init__(self, workers: int = 2, max_pending: int = 32) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        self.workers = workers
        self.max_pending = max_pending
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._futures: dict[str, Future] = {}
        self._active = 0
        self._ids = itertools.count(1)

    def new_id(self) -> str:
        return f"job-{next(self._ids):06d}"

    @property
    def active(self) -> int:
        """Jobs currently queued or running."""
        with self._lock:
            return self._active

    def register(self, job: Job) -> Job:
        """Track a job that never enters the pool (a whole-job cache hit)."""
        with self._lock:
            self._jobs[job.id] = job
        return job

    def submit(self, job: Job, fn: Callable[[Job], None]) -> Job:
        """Admit ``job`` and run ``fn(job)`` on the pool.

        Raises :class:`~repro.errors.QueueFullError` when ``max_pending``
        jobs are already queued or running — the job is *not* registered
        in that case, so a rejected submission leaves no trace.
        """
        with self._lock:
            if self._active >= self.max_pending:
                raise QueueFullError(
                    f"job queue is full ({self._active} of {self.max_pending} "
                    "slots busy); retry later — cached re-submissions are "
                    "never queued"
                )
            self._active += 1
            self._jobs[job.id] = job
        future = self._pool.submit(self._run, job, fn)
        with self._lock:
            self._futures[job.id] = future
        return job

    def _run(self, job: Job, fn: Callable[[Job], None]) -> None:
        job.status = "running"
        try:
            fn(job)
            job.status = "done"
        except Exception as exc:  # typed error reporting, never a lost future
            job.status = "failed"
            job.error = str(exc)
            job.error_type = type(exc).__name__
        finally:
            with self._lock:
                self._active -= 1

    def get(self, job_id: str) -> Job:
        """The job under ``job_id``; typed 404 when unknown."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"unknown job id {job_id!r}")
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until ``job_id`` leaves the pool; return it.

        Failures are reported on the job (``status="failed"``), not
        re-raised — callers inspect the view, exactly like HTTP clients.
        """
        job = self.get(job_id)
        with self._lock:
            future = self._futures.get(job_id)
        if future is not None:
            future.result(timeout=timeout)
        return job

    def shutdown(self) -> None:
        """Stop the pool (running jobs finish; queued ones are dropped)."""
        self._pool.shutdown(wait=True, cancel_futures=True)
