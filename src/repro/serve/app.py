"""HTTP adapters: a dependency-free stdlib server and a FastAPI factory.

Both adapters are *thin*: every endpoint parses the payload with
:mod:`repro.serve.schemas` and delegates to the same
:class:`~repro.serve.service.ExperimentService` methods, and every
:class:`~repro.errors.ServeError` maps to its ``status`` with the same
``{"error", "detail"}`` JSON body — so the two backends are
wire-compatible and the test suite drives the stdlib one as a stand-in
for both.

Endpoints
---------

- ``POST /solve`` — submit one run; 200 with the job view (already
  ``done`` + ``cache_hit`` on a store hit).
- ``POST /grid`` — submit a grid; same semantics per cell.
- ``GET /jobs/{id}`` — job status/result view.
- ``GET /jobs/{id}/events`` — the job's JSONL event stream
  (``application/x-ndjson``; lifecycle + per-cycle events).
- ``GET /records/{key}`` — the stored record payload under a cell key.
- ``GET /metrics`` — the service registry snapshot (``serve.cache``
  hit/miss counters, ``grid.*`` operational counters, ledger gauges).
- ``GET /healthz`` — liveness + code version (what the cache keys pin).

The stdlib backend is a :class:`http.server.ThreadingHTTPServer`; it
exists so the service runs in environments without FastAPI installed
(FastAPI is an optional extra, never a hard dependency).  When FastAPI
*is* available, :func:`create_fastapi_app` builds the equivalent ASGI
app for uvicorn & friends; ``repro serve`` picks whichever is present.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import BadRequestError, ConfigError, ServeError
from repro.serve.schemas import parse_grid_request, parse_solve_request
from repro.serve.service import ExperimentService

__all__ = ["create_server", "serve_forever", "create_fastapi_app", "have_fastapi"]

#: Largest accepted request body; a grid submission is a few hundred
#: bytes, so anything near this is abuse, not a client.
MAX_BODY_BYTES = 1 << 20


def have_fastapi() -> bool:
    """Whether the optional FastAPI adapter can be built here."""
    try:  # pragma: no cover - depends on the host environment
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def _error_body(exc: Exception, status: int) -> dict:
    return {"error": type(exc).__name__, "detail": str(exc), "status": status}


def _dispatch_get(service: ExperimentService, path: str) -> tuple[int, object, str]:
    """Route one GET; returns ``(status, body, content_type)`` where a
    str body is served verbatim and anything else as JSON."""
    if path == "/healthz":
        from repro.experiments.journal import code_version

        return 200, {"ok": True, "code_version": code_version()}, "json"
    if path == "/metrics":
        return 200, service.metrics(), "json"
    if path.startswith("/jobs/"):
        rest = path[len("/jobs/"):]
        if rest.endswith("/events"):
            job_id = rest[: -len("/events")]
            return 200, service.job_events(job_id), "ndjson"
        if "/" not in rest and rest:
            return 200, service.job(rest), "json"
    if path.startswith("/records/"):
        key = path[len("/records/"):]
        if "/" not in key and key:
            return 200, service.record(key), "json"
    raise BadRequestError(f"no such endpoint: GET {path}")


def _dispatch_post(
    service: ExperimentService, path: str, payload: object
) -> tuple[int, object, str]:
    if path == "/solve":
        return 200, service.submit_solve(parse_solve_request(payload)), "json"
    if path == "/grid":
        return 200, service.submit_grid(parse_grid_request(payload)), "json"
    raise BadRequestError(f"no such endpoint: POST {path}")


class _Handler(BaseHTTPRequestHandler):
    """Stdlib request handler bound to ``self.server.service``."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; the service has
    # metrics for that.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _respond(self, status: int, body: object, content_type: str) -> None:
        if content_type == "ndjson":
            raw = str(body).encode("utf-8")
            ctype = "application/x-ndjson"
        else:
            raw = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
            ctype = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _handle(self, method: str) -> None:
        service: ExperimentService = self.server.service  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if method == "GET":
                status, body, ctype = _dispatch_get(service, path)
            else:
                length = int(self.headers.get("Content-Length") or 0)
                if length > MAX_BODY_BYTES:
                    raise BadRequestError(
                        f"request body of {length} bytes exceeds the "
                        f"{MAX_BODY_BYTES}-byte limit"
                    )
                raw = self.rfile.read(length) if length else b""
                try:
                    payload = json.loads(raw.decode("utf-8")) if raw else {}
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise BadRequestError(
                        f"request body is not valid JSON: {exc}"
                    ) from exc
                status, body, ctype = _dispatch_post(service, path, payload)
        except ServeError as exc:
            self._respond(exc.status, _error_body(exc, exc.status), "json")
            return
        except ConfigError as exc:
            # Library-level validation that slipped past the schemas
            # (e.g. planner limits) is still the client's fault.
            self._respond(400, _error_body(exc, 400), "json")
            return
        except Exception as exc:  # pragma: no cover - defensive 500
            self._respond(500, _error_body(exc, 500), "json")
            return
        self._respond(status, body, ctype)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying the service for its handlers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ExperimentService):
        super().__init__(address, _Handler)
        self.service = service


def create_server(
    service: ExperimentService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind the stdlib backend; ``port=0`` picks a free port (see
    ``server.server_address``).  Call ``serve_forever()`` to run."""
    return ServiceHTTPServer((host, port), service)


def serve_forever(server: ServiceHTTPServer) -> None:
    """Run until interrupted, then stop the worker pool cleanly."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()


def create_fastapi_app(service: ExperimentService):
    """Build the FastAPI app over ``service`` (requires fastapi).

    Wire-compatible with the stdlib backend: same routes, same JSON
    shapes, same typed error bodies.  Handlers are sync ``def``s —
    FastAPI runs them on its threadpool, and the service core is
    thread-safe — so the adapter adds no async plumbing of its own.
    """
    from fastapi import FastAPI, Request
    from fastapi.responses import JSONResponse, PlainTextResponse

    app = FastAPI(
        title="repro serve",
        description="Content-addressed experiment service for "
        "Karypis & Kumar (1992) tree-search reproductions.",
    )

    @app.exception_handler(ServeError)
    def _serve_error(request: Request, exc: ServeError) -> JSONResponse:
        return JSONResponse(
            status_code=exc.status, content=_error_body(exc, exc.status)
        )

    @app.exception_handler(ConfigError)
    def _config_error(request: Request, exc: ConfigError) -> JSONResponse:
        return JSONResponse(status_code=400, content=_error_body(exc, 400))

    @app.post("/solve")
    def solve(payload: dict) -> dict:
        return service.submit_solve(parse_solve_request(payload))

    @app.post("/grid")
    def grid(payload: dict) -> dict:
        return service.submit_grid(parse_grid_request(payload))

    @app.get("/jobs/{job_id}")
    def job(job_id: str) -> dict:
        return service.job(job_id)

    @app.get("/jobs/{job_id}/events")
    def job_events(job_id: str) -> PlainTextResponse:
        return PlainTextResponse(
            service.job_events(job_id), media_type="application/x-ndjson"
        )

    @app.get("/records/{key}")
    def record(key: str) -> dict:
        return service.record(key)

    @app.get("/metrics")
    def metrics() -> dict:
        return service.metrics()

    @app.get("/healthz")
    def healthz() -> dict:
        from repro.experiments.journal import code_version

        return {"ok": True, "code_version": code_version()}

    return app
