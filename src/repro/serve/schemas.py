"""Request shapes, payload validation, and the job-lifecycle event.

The service accepts plain JSON dicts (the HTTP adapters pass request
bodies through verbatim), and this module is the single place they are
validated: :func:`parse_solve_request` / :func:`parse_grid_request`
either return a typed request dataclass or raise
:class:`~repro.errors.BadRequestError` — the HTTP layers map that to a
400 with the exception text, so every malformed payload gets the same
typed answer on every backend.

Validation reuses the library's own authorities instead of duplicating
them: scheme specs are checked by actually building the scheme
(:func:`~repro.core.config.make_scheme`), so anything ``run_grid``
would accept is accepted here and nothing else.

:class:`JobEvent` is the serve layer's lifecycle record (queued /
started / finished / cache events), a registered
:class:`~repro.obs.events.TraceEvent` so job event streams interleave
cleanly with the scheduler's per-cycle events in one JSONL file and
round-trip through :func:`~repro.obs.events.read_jsonl_events`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import BadRequestError, ConfigError
from repro.obs.events import TraceEvent, register_event_type

__all__ = [
    "JobEvent",
    "SolveRequest",
    "GridRequest",
    "parse_solve_request",
    "parse_grid_request",
]

#: Upper bounds on one submission — a public service must refuse a
#: request that would pin a worker for hours before it starts running.
MAX_CELLS_PER_GRID = 4096
MAX_WORK_PER_CELL = 100_000_000
MAX_PES_PER_CELL = 1_000_000


@register_event_type
@dataclass(frozen=True)
class JobEvent(TraceEvent):
    """One job-lifecycle transition in a job's JSONL event stream.

    ``status`` is ``"queued"``, ``"started"``, ``"cache-hit"``,
    ``"finished"`` or ``"failed"``; ``cycle`` (inherited) carries the
    monotone per-job sequence number of the transition.
    """

    status: str = ""
    detail: str = ""

    kind = "job"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BadRequestError(message)


def _as_int(value: object, what: str) -> int:
    # bool subclasses int; a JSON true/false here is a client bug.
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{what} must be an integer, got {value!r}",
    )
    return value


def _check_scheme(spec: object) -> str:
    _require(isinstance(spec, str), f"scheme must be a string, got {spec!r}")
    from repro.core.config import make_scheme

    try:
        make_scheme(spec)
    except (ConfigError, ValueError) as exc:
        raise BadRequestError(f"unknown scheme spec {spec!r}: {exc}") from exc
    return spec


def _check_cell(total_work: int, n_pes: int) -> None:
    _require(
        1 <= total_work <= MAX_WORK_PER_CELL,
        f"total_work must be in [1, {MAX_WORK_PER_CELL}], got {total_work}",
    )
    _require(
        1 <= n_pes <= MAX_PES_PER_CELL,
        f"n_pes must be in [1, {MAX_PES_PER_CELL}], got {n_pes}",
    )


@dataclass(frozen=True)
class SolveRequest:
    """``POST /solve``: one run of ``scheme`` over ``(total_work, n_pes)``.

    ``seed`` is the run's RNG seed verbatim (a solve is a single cell,
    so no grid-index seed derivation applies).
    """

    scheme: str
    total_work: int
    n_pes: int
    seed: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class GridRequest:
    """``POST /grid``: the cross product ``schemes x works x pes``.

    Cells get their deterministic :func:`~repro.experiments.runner.
    cell_seed` from ``base_seed`` in scheme-major order — exactly what a
    direct ``run_grid`` call computes, which is what makes the cache key
    of every cell identical between the service and offline runs.
    """

    schemes: tuple[str, ...]
    works: tuple[int, ...]
    pes: tuple[int, ...]
    base_seed: int = 0

    def to_dict(self) -> dict:
        return {
            "schemes": list(self.schemes),
            "works": list(self.works),
            "pes": list(self.pes),
            "base_seed": self.base_seed,
        }


_SOLVE_KEYS = {"scheme", "total_work", "n_pes", "seed"}
_GRID_KEYS = {"schemes", "works", "pes", "base_seed"}


def _check_payload(payload: object, allowed: set[str], what: str) -> dict:
    _require(isinstance(payload, dict), f"{what} payload must be a JSON object")
    unknown = sorted(set(payload) - allowed)
    _require(not unknown, f"unknown {what} field(s): {', '.join(unknown)}")
    return payload


def parse_solve_request(payload: object) -> SolveRequest:
    """Validate a ``POST /solve`` body; raise ``BadRequestError`` on any
    defect (missing/unknown fields, wrong types, out-of-range sizes,
    unknown scheme spec)."""
    data = _check_payload(payload, _SOLVE_KEYS, "solve")
    _require("scheme" in data, "solve payload needs a 'scheme'")
    _require("total_work" in data, "solve payload needs a 'total_work'")
    _require("n_pes" in data, "solve payload needs an 'n_pes'")
    scheme = _check_scheme(data["scheme"])
    total_work = _as_int(data["total_work"], "total_work")
    n_pes = _as_int(data["n_pes"], "n_pes")
    seed = _as_int(data.get("seed", 0), "seed")
    _check_cell(total_work, n_pes)
    _require(seed >= 0, f"seed must be >= 0, got {seed}")
    return SolveRequest(scheme=scheme, total_work=total_work, n_pes=n_pes, seed=seed)


def _as_list(value: object, what: str) -> list:
    _require(
        isinstance(value, (list, tuple)) and len(value) > 0,
        f"{what} must be a non-empty list, got {value!r}",
    )
    return list(value)


def parse_grid_request(payload: object) -> GridRequest:
    """Validate a ``POST /grid`` body; raise ``BadRequestError`` on any
    defect, including a cross product larger than
    :data:`MAX_CELLS_PER_GRID` cells."""
    data = _check_payload(payload, _GRID_KEYS, "grid")
    for field in ("schemes", "works", "pes"):
        _require(field in data, f"grid payload needs '{field}'")
    schemes = tuple(_check_scheme(s) for s in _as_list(data["schemes"], "schemes"))
    works = tuple(_as_int(w, "works entry") for w in _as_list(data["works"], "works"))
    pes = tuple(_as_int(p, "pes entry") for p in _as_list(data["pes"], "pes"))
    base_seed = _as_int(data.get("base_seed", 0), "base_seed")
    _require(base_seed >= 0, f"base_seed must be >= 0, got {base_seed}")
    for w in works:
        for p in pes:
            _check_cell(w, p)
    n_cells = len(schemes) * len(works) * len(pes)
    _require(
        n_cells <= MAX_CELLS_PER_GRID,
        f"grid has {n_cells} cells; the limit is {MAX_CELLS_PER_GRID}",
    )
    return GridRequest(schemes=schemes, works=works, pes=pes, base_seed=base_seed)
