"""Typed exception hierarchy for the whole library.

Every error the library raises deliberately derives from
:class:`ReproError`, so callers can catch one base class at the top of a
long experiment instead of guessing which stdlib exception a given layer
uses.  Configuration mistakes additionally subclass :class:`ValueError`
(via :class:`ConfigError`) so historical ``except ValueError`` call sites
and tests keep working unchanged.

The fault/recovery subsystem (:mod:`repro.faults`) adds three concrete
failure categories:

- :class:`FaultInjectionError` — a fault plan is unsatisfiable at run
  time (e.g. every PE dead while unexpanded work remains);
- :class:`CheckpointCorruptError` — a checkpoint file failed its
  magic/length/CRC validation and must not be restored;
- :class:`GridCellError` — a ``run_grid`` cell failed permanently after
  the bounded retry budget; carries the structured per-cell report.

The persistence layer (:mod:`repro.experiments.store`,
:mod:`repro.obs.registry`) raises :class:`RecordStoreError` for corrupt
or version-mismatched payloads.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "FaultInjectionError",
    "CheckpointCorruptError",
    "GridCellError",
    "RecordStoreError",
]


class ReproError(Exception):
    """Base class of every deliberate error raised by this library."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration (bad sizes, thresholds, spec strings).

    Subclasses :class:`ValueError` so pre-hierarchy call sites that catch
    ``ValueError`` continue to work.
    """


class FaultInjectionError(ReproError):
    """A fault plan cannot be honored by the running machine."""


class CheckpointCorruptError(ReproError):
    """A checkpoint file failed integrity validation on load."""


class RecordStoreError(ReproError, ValueError):
    """A record file or metrics snapshot is corrupt or version-mismatched.

    Subclasses :class:`ValueError` so pre-hierarchy call sites that catch
    ``ValueError`` around ``load_records`` continue to work.
    """


class GridCellError(ReproError):
    """One or more ``run_grid`` cells failed after all retries.

    ``failures`` holds the structured :class:`~repro.experiments.runner.
    GridFailure` records when raised by the grid driver; a single-cell
    instance raised inside a worker (e.g. a per-cell timeout) carries an
    empty tuple.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)

    def __reduce__(self):
        # Keep worker-raised instances picklable across the process pool.
        return (type(self), (self.args[0], self.failures))
