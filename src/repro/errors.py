"""Typed exception hierarchy for the whole library.

Every error the library raises deliberately derives from
:class:`ReproError`, so callers can catch one base class at the top of a
long experiment instead of guessing which stdlib exception a given layer
uses.  Configuration mistakes additionally subclass :class:`ValueError`
(via :class:`ConfigError`) so historical ``except ValueError`` call sites
and tests keep working unchanged.

The fault/recovery subsystem (:mod:`repro.faults`) adds three concrete
failure categories:

- :class:`FaultInjectionError` — a fault plan is unsatisfiable at run
  time (e.g. every PE dead while unexpanded work remains);
- :class:`CheckpointCorruptError` — a checkpoint file failed its
  magic/length/CRC validation and must not be restored;
- :class:`JournalCorruptError` — a write-ahead cell journal
  (:mod:`repro.experiments.journal`) is corrupt beyond its recoverable
  torn tail; subclasses :class:`CheckpointCorruptError` so callers that
  already guard resume paths catch both;
- :class:`GridCellError` — one or more ``run_grid`` cells failed
  permanently after the bounded retry budget; carries the structured
  per-cell report, every *completed* record, and a typed quarantine
  summary, so a partially failed sweep degrades gracefully instead of
  discarding finished work.

The persistence layer (:mod:`repro.experiments.store`,
:mod:`repro.obs.registry`) raises :class:`RecordStoreError` for corrupt
or version-mismatched payloads.

The experiment service (:mod:`repro.serve`) adds a :class:`ServeError`
family that maps one-to-one onto HTTP responses:
:class:`BadRequestError` (400), :class:`JobNotFoundError` /
:class:`RecordNotFoundError` (404), and :class:`QueueFullError` (429,
the bounded job queue's backpressure signal).

Two :class:`UserWarning` categories accompany the hierarchy so silent
degradations become visible without aborting a sweep:
:class:`ExecutorFallbackWarning` (``run_grid(executor="auto")`` picked a
slower path than the batched executor) and
:class:`TimeoutUnenforcedWarning` (a per-cell timeout was requested on a
platform without ``signal.SIGALRM`` and cannot be enforced).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "FaultInjectionError",
    "CheckpointCorruptError",
    "JournalCorruptError",
    "GridCellError",
    "RecordStoreError",
    "ServeError",
    "BadRequestError",
    "JobNotFoundError",
    "RecordNotFoundError",
    "QueueFullError",
    "ExecutorFallbackWarning",
    "TimeoutUnenforcedWarning",
]


class ReproError(Exception):
    """Base class of every deliberate error raised by this library."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration (bad sizes, thresholds, spec strings).

    Subclasses :class:`ValueError` so pre-hierarchy call sites that catch
    ``ValueError`` continue to work.
    """


class FaultInjectionError(ReproError):
    """A fault plan cannot be honored by the running machine."""


class CheckpointCorruptError(ReproError):
    """A checkpoint file failed integrity validation on load."""


class JournalCorruptError(CheckpointCorruptError):
    """A write-ahead cell journal is corrupt beyond recovery.

    A *torn tail* (a crash mid-append leaving a prefix of the final
    frame) is recoverable by design and never raises; this error means
    an interior frame failed its CRC, the header is unreadable, or the
    schema version is unsupported — the file must not be replayed.
    """


class RecordStoreError(ReproError, ValueError):
    """A record file or metrics snapshot is corrupt or version-mismatched.

    Subclasses :class:`ValueError` so pre-hierarchy call sites that catch
    ``ValueError`` around ``load_records`` continue to work.
    """


class GridCellError(ReproError):
    """One or more ``run_grid`` cells failed after all retries.

    ``failures`` holds the structured :class:`~repro.experiments.runner.
    GridFailure` records when raised by the grid driver; a single-cell
    instance raised inside a worker (e.g. a per-cell timeout) carries an
    empty tuple.

    When the grid driver raises after quarantining poison cells it also
    attaches ``completed`` — every :class:`~repro.experiments.runner.
    GridRecord` that *did* finish, in scheme-major order — and
    ``quarantine``, a typed :class:`~repro.experiments.runner.
    QuarantineReport`.  Together with the write-ahead journal this makes
    a failed sweep resumable instead of lost.
    """

    def __init__(
        self,
        message: str,
        failures: tuple = (),
        completed: tuple = (),
        quarantine: object | None = None,
    ) -> None:
        super().__init__(message)
        self.failures = tuple(failures)
        self.completed = tuple(completed)
        self.quarantine = quarantine

    def __reduce__(self):
        # Keep worker-raised instances picklable across the process pool.
        return (
            type(self),
            (self.args[0], self.failures, self.completed, self.quarantine),
        )


class ServeError(ReproError):
    """Base of the experiment service's typed request/queue failures.

    Every subclass carries ``status`` — the HTTP status code the serve
    adapters answer with — so the framework-specific handlers contain
    no error-classification logic of their own.
    """

    status = 500


class BadRequestError(ServeError, ValueError):
    """A submitted job payload is malformed or fails validation (400)."""

    status = 400


class JobNotFoundError(ServeError):
    """``GET /jobs/{id}`` named a job the service has never seen (404)."""

    status = 404


class RecordNotFoundError(ServeError):
    """``GET /records/{key}`` named a key the store does not hold (404)."""

    status = 404


class QueueFullError(ServeError):
    """The bounded job queue refused a submission (429).

    Backpressure is explicit by design: when ``max_pending`` jobs are
    already queued or running, new work is rejected with this error
    instead of growing an unbounded backlog — the client retries, and
    cached re-submissions still succeed because cache hits never enter
    the queue.
    """

    status = 429


class ExecutorFallbackWarning(UserWarning):
    """``run_grid(executor="auto")`` fell back from the batched executor.

    Emitted with the concrete reason (unbatchable schemes, or per-cell
    hardening routed to the process pool) so the silent slow-path pick
    documented at the call site becomes visible; the same reason is
    recorded in the grid's metrics registry when one is attached.
    """


class TimeoutUnenforcedWarning(UserWarning):
    """A per-cell grid timeout cannot be enforced on this platform.

    The in-worker watchdog uses ``signal.SIGALRM`` (POSIX only); where
    it is missing the timeout bound silently did not hold historically.
    Now the first affected ``run_grid`` call warns once per process and
    the grid metadata records ``grid.timeout_enforced = 0``.
    """
