"""Deterministic synthetic irregular trees.

A reproducible stand-in for "unstructured tree" workloads: the shape of
the tree is a pure function of ``(seed, node id)`` through a splitmix64
hash, so serial and parallel searches see the identical tree no matter
how subtrees migrate between processors — the property the validation
tests rely on.

Branching is hash-drawn in ``[0, max_branching]`` (uniform, so the mean
is ``max_branching / 2``); ``depth_limit`` guarantees finiteness.  Goals
appear independently with ``goal_density`` probability, again decided by
hash.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.search.problem import SearchProblem
from repro.util.validation import check_positive_int

__all__ = ["SyntheticTreeProblem"]

_MASK = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One step of the splitmix64 mixer — a high-quality 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK


class TreeNode(NamedTuple):
    """A synthetic tree node: its hash identity and depth."""

    uid: int
    depth: int


class SyntheticTreeProblem(SearchProblem):
    """A finite, irregular, fully deterministic random tree.

    Parameters
    ----------
    seed:
        Tree identity; different seeds give independent trees.
    max_branching:
        Children per node are uniform in ``[0, max_branching]``.
    depth_limit:
        Nodes at this depth are leaves; with mean branching ``b/2`` the
        expected size is roughly ``(b/2)^depth_limit``.
    goal_density:
        Per-node goal probability (0 disables goals — an exhaustive
        search, the paper's finite-space-no-solution case).
    """

    def __init__(
        self,
        seed: int,
        *,
        max_branching: int = 4,
        depth_limit: int = 12,
        goal_density: float = 0.0,
    ) -> None:
        self.seed = int(seed)
        self.max_branching = check_positive_int(max_branching, "max_branching")
        self.depth_limit = check_positive_int(depth_limit, "depth_limit")
        if not 0.0 <= goal_density <= 1.0:
            raise ValueError(f"goal_density must be in [0, 1], got {goal_density}")
        self.goal_density = float(goal_density)
        self._goal_cut = int(goal_density * (_MASK + 1))

    def initial_state(self) -> TreeNode:
        return TreeNode(_splitmix64(self.seed), 0)

    def expand(self, state: TreeNode) -> list[TreeNode]:
        if state.depth >= self.depth_limit:
            return []
        h = _splitmix64(state.uid ^ 0xA5A5A5A5A5A5A5A5)
        # Root always branches fully so small trees still parallelize.
        if state.depth == 0:
            n_children = self.max_branching
        else:
            n_children = h % (self.max_branching + 1)
        return [
            TreeNode(_splitmix64(state.uid * 1315423911 + i + 1), state.depth + 1)
            for i in range(n_children)
        ]

    def is_goal(self, state: TreeNode) -> bool:
        if self._goal_cut == 0 or state.depth == 0:
            return False
        return _splitmix64(state.uid ^ 0x5DEECE66D) < self._goal_cut

    def heuristic(self, state: TreeNode) -> int:
        return 0

    # -- sizing helper -------------------------------------------------------

    def count_nodes(self, *, max_nodes: int = 10_000_000) -> int:
        """Exact node count by full traversal (for experiment sizing)."""
        count = 0
        stack = [self.initial_state()]
        while stack:
            node = stack.pop()
            count += 1
            if count > max_nodes:
                raise RuntimeError(f"tree exceeds max_nodes={max_nodes}")
            if not self.is_goal(node):
                stack.extend(self.expand(node))
        return count
