"""Concrete search problems.

- :mod:`repro.problems.npuzzle` — the generalized sliding-tile puzzle with
  the Manhattan-distance heuristic (the paper's 15-puzzle is ``side=4``).
- :mod:`repro.problems.fifteen_puzzle` — 15-puzzle instance library and
  helpers (scrambles of calibrated difficulty, classic hard instances).
- :mod:`repro.problems.nqueens` — N-queens backtracking (a pure
  unstructured backtracking tree, no heuristic pruning).
- :mod:`repro.problems.synthetic` — deterministic random trees: identical
  structure under any traversal order, sized by construction.
"""

from repro.problems.npuzzle import SlidingPuzzle, PuzzleState, manhattan_distance
from repro.problems.fifteen_puzzle import (
    FifteenPuzzle,
    scrambled_fifteen_puzzle,
    BENCH_INSTANCES,
)
from repro.problems.nqueens import NQueensProblem
from repro.problems.synthetic import SyntheticTreeProblem
from repro.problems.knapsack import KnapsackProblem, KnapsackState
from repro.problems.tsp import TSPProblem, TourState
from repro.problems.coloring import GraphColoringProblem

__all__ = [
    "KnapsackProblem",
    "KnapsackState",
    "TSPProblem",
    "TourState",
    "GraphColoringProblem",
    "SlidingPuzzle",
    "PuzzleState",
    "manhattan_distance",
    "FifteenPuzzle",
    "scrambled_fifteen_puzzle",
    "BENCH_INSTANCES",
    "NQueensProblem",
    "SyntheticTreeProblem",
]
