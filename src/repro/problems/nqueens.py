"""N-queens backtracking — a pure unstructured backtracking tree.

The paper cites backtracking (Horowitz & Sahni [13]) as a canonical
depth-first workload.  States are prefixes of a column assignment; the
successor generator keeps only non-attacking placements, so the tree is
highly irregular: most branches die early, a few run deep — exactly the
shape that stresses load balancing.

The heuristic ``n - len(placed)`` counts the queens still to place; it is
exact on depth, so IDA* jumps straight to bound ``n`` and finishes in one
iteration that enumerates every solution.
"""

from __future__ import annotations

from repro.search.problem import SearchProblem
from repro.util.validation import check_positive_int

__all__ = ["NQueensProblem"]


class NQueensProblem(SearchProblem):
    """Place ``n`` mutually non-attacking queens, one per row.

    A state is the tuple of column indices of queens already placed on
    rows ``0 .. len(state)-1``.
    """

    def __init__(self, n: int) -> None:
        self.n = check_positive_int(n, "n")

    def initial_state(self) -> tuple[int, ...]:
        return ()

    def expand(self, state: tuple[int, ...]) -> list[tuple[int, ...]]:
        row = len(state)
        if row >= self.n:
            return []
        out = []
        for col in range(self.n):
            if self._safe(state, row, col):
                out.append(state + (col,))
        return out

    def is_goal(self, state: tuple[int, ...]) -> bool:
        return len(state) == self.n

    def heuristic(self, state: tuple[int, ...]) -> int:
        return self.n - len(state)

    @staticmethod
    def _safe(state: tuple[int, ...], row: int, col: int) -> bool:
        for r, c in enumerate(state):
            if c == col or abs(c - col) == row - r:
                return False
        return True
