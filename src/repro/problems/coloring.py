"""Graph k-coloring by backtracking.

Another of the introduction's AI/combinatorial workloads: assign one of
``k`` colors to each vertex so no edge is monochromatic.  Vertices are
ordered by decreasing degree (the standard backtracking order — fail
early on the constrained part of the graph); the successor generator
keeps only non-conflicting assignments, so the tree is highly irregular
and prunes unpredictably — exactly the load-balancing stress the paper
targets.

Instances come from seeded Erdos-Renyi graphs via networkx; ground
truth for tests is brute-force enumeration on small graphs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.search.problem import SearchProblem
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int

__all__ = ["GraphColoringProblem"]


class GraphColoringProblem(SearchProblem):
    """Count (or find) proper ``k``-colorings of a graph.

    A state is the tuple of colors assigned to the first ``len(state)``
    vertices in the search order.  The first vertex's color is fixed to
    0 (symmetry breaking: colorings identical up to a color swap of the
    first vertex are not re-counted... only the first vertex is pinned,
    a cheap partial break that keeps counts exact for comparison when
    applied consistently to serial and parallel runs).

    Parameters
    ----------
    graph:
        Any networkx graph (nodes are relabelled internally).
    n_colors:
        ``k``.
    symmetry_break:
        Pin vertex 0 to color 0 (default off, so counts equal the full
        brute-force count).
    """

    def __init__(
        self,
        graph: nx.Graph,
        n_colors: int,
        *,
        symmetry_break: bool = False,
    ) -> None:
        self.n_colors = check_positive_int(n_colors, "n_colors")
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must have at least one node")
        # Order vertices by decreasing degree; precompute, for each
        # vertex, its already-ordered neighbours (the only ones a new
        # assignment can conflict with).
        order = sorted(graph.nodes, key=lambda v: (-graph.degree(v), v))
        index = {v: i for i, v in enumerate(order)}
        self.n_vertices = len(order)
        self.earlier_neighbors: list[tuple[int, ...]] = [
            tuple(sorted(index[u] for u in graph.neighbors(v) if index[u] < i))
            for i, v in enumerate(order)
        ]
        self.symmetry_break = symmetry_break

    @classmethod
    def random(
        cls,
        n_vertices: int,
        n_colors: int,
        *,
        edge_probability: float = 0.4,
        rng: int | np.random.Generator | None = None,
        symmetry_break: bool = False,
    ) -> "GraphColoringProblem":
        """A seeded Erdos-Renyi instance."""
        check_positive_int(n_vertices, "n_vertices")
        gen = as_generator(rng)
        seed = int(gen.integers(0, 2**31 - 1))
        graph = nx.gnp_random_graph(n_vertices, edge_probability, seed=seed)
        return cls(graph, n_colors, symmetry_break=symmetry_break)

    # -- SearchProblem -----------------------------------------------------

    def initial_state(self) -> tuple[int, ...]:
        return ()

    def expand(self, state: tuple[int, ...]) -> list[tuple[int, ...]]:
        v = len(state)
        if v >= self.n_vertices:
            return []
        if v == 0 and self.symmetry_break:
            return [(0,)]
        forbidden = {state[u] for u in self.earlier_neighbors[v]}
        return [
            state + (color,)
            for color in range(self.n_colors)
            if color not in forbidden
        ]

    def is_goal(self, state: tuple[int, ...]) -> bool:
        return len(state) == self.n_vertices

    def heuristic(self, state: tuple[int, ...]) -> int:
        """Vertices still uncolored — exact on depth, so IDA* is one-shot."""
        return self.n_vertices - len(state)

    # -- reference ------------------------------------------------------------

    def count_colorings_brute_force(self) -> int:
        """Exact proper-coloring count by full k^n enumeration.

        Independent of the search code path (no pruning, no expand), so
        tests can use it as ground truth.  Honors ``symmetry_break``.
        """
        import itertools

        if self.n_colors**self.n_vertices > 2_000_000:
            raise ValueError("brute force limited to k^n <= 2e6")
        count = 0
        first_colors = [0] if self.symmetry_break else range(self.n_colors)
        for first in first_colors:
            for rest in itertools.product(
                range(self.n_colors), repeat=self.n_vertices - 1
            ):
                assignment = (first, *rest)
                if all(
                    assignment[v] != assignment[u]
                    for v in range(self.n_vertices)
                    for u in self.earlier_neighbors[v]
                ):
                    count += 1
        return count
