"""Symmetric TSP by depth-first branch and bound.

The operations-research workload of the paper's introduction
(Papadimitriou & Steiglitz [27]).  The decision tree extends a partial
tour city by city from city 0; the admissible bound adds, for every
city still to be left (the current city and all unvisited ones), its
cheapest available outgoing edge — a classical lower bound that keeps
the tree irregular without being trivially tight.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.search.branch_and_bound import BnBProblem
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int

__all__ = ["TourState", "TSPProblem"]


class TourState(NamedTuple):
    """A partial tour starting at city 0."""

    tour: tuple[int, ...]
    cost: float


class TSPProblem(BnBProblem):
    """Minimize the length of a closed tour over all cities.

    Parameters
    ----------
    distances:
        Symmetric (n, n) matrix with zero diagonal.
    """

    sense = "min"

    def __init__(self, distances) -> None:
        d = np.asarray(distances, dtype=np.float64)
        if d.ndim != 2 or d.shape[0] != d.shape[1] or d.shape[0] < 2:
            raise ValueError("distances must be a square matrix of size >= 2")
        if not np.allclose(d, d.T):
            raise ValueError("distances must be symmetric")
        if np.any(np.diag(d) != 0):
            raise ValueError("distances must have a zero diagonal")
        if np.any(d < 0):
            raise ValueError("distances must be non-negative")
        self.d = d
        self.n = d.shape[0]
        # Cheapest incident edge per city (excluding the zero diagonal).
        off = d + np.where(np.eye(self.n, dtype=bool), np.inf, 0.0)
        self._min_edge = off.min(axis=1)

    # -- instance generation -----------------------------------------------

    @classmethod
    def random_euclidean(
        cls, n_cities: int, *, rng: int | np.random.Generator | None = None
    ) -> "TSPProblem":
        """Cities uniform in the unit square, Euclidean distances."""
        check_positive_int(n_cities, "n_cities")
        gen = as_generator(rng)
        pts = gen.random((n_cities, 2))
        diff = pts[:, None, :] - pts[None, :, :]
        return cls(np.sqrt((diff**2).sum(axis=2)))

    # -- BnBProblem ----------------------------------------------------------

    def initial_state(self) -> TourState:
        return TourState((0,), 0.0)

    def expand(self, state: TourState) -> list[TourState]:
        if len(state.tour) >= self.n:
            return []
        current = state.tour[-1]
        visited = set(state.tour)
        children = []
        # Nearest-first ordering: good incumbents early, like the
        # knapsack's take-first branch.
        candidates = sorted(
            (c for c in range(self.n) if c not in visited),
            key=lambda c: self.d[current, c],
        )
        for c in candidates:
            children.append(
                TourState(state.tour + (c,), state.cost + self.d[current, c])
            )
        return children

    def objective(self, state: TourState) -> float | None:
        if len(state.tour) == self.n:
            return state.cost + self.d[state.tour[-1], 0]
        return None

    def bound(self, state: TourState) -> float:
        """Partial cost + cheapest-outgoing-edge sum for open cities.

        Every city outside the partial tour, plus the tour's current
        endpoint, must still be *left* once; each such departure costs
        at least that city's cheapest incident edge.
        """
        if len(state.tour) == self.n:
            return state.cost + self.d[state.tour[-1], 0]
        visited = set(state.tour)
        total = state.cost + self._min_edge[state.tour[-1]]
        for c in range(self.n):
            if c not in visited:
                total += self._min_edge[c]
        return total

    # -- reference solution ---------------------------------------------------

    def solve_held_karp(self) -> float:
        """Exact optimum by Held-Karp dynamic programming (O(2^n n^2)).

        Independent ground truth for tests; practical to ~15 cities.
        """
        n = self.n
        if n > 18:
            raise ValueError("Held-Karp reference limited to 18 cities")
        full = 1 << (n - 1)  # subsets of cities 1..n-1
        inf = np.inf
        cost = np.full((full, n - 1), inf)
        for j in range(n - 1):
            cost[1 << j, j] = self.d[0, j + 1]
        for mask in range(1, full):
            for j in range(n - 1):
                if not mask & (1 << j) or cost[mask, j] == inf:
                    continue
                base = cost[mask, j]
                for k in range(n - 1):
                    if mask & (1 << k):
                        continue
                    new = base + self.d[j + 1, k + 1]
                    idx = mask | (1 << k)
                    if new < cost[idx, k]:
                        cost[idx, k] = new
        best = min(
            cost[full - 1, j] + self.d[j + 1, 0] for j in range(n - 1)
        )
        return float(best)
