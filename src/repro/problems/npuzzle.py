"""The generalized sliding-tile puzzle (Nilsson [26], Korf [15]).

A ``side x side`` tray holds ``side^2 - 1`` numbered tiles and one blank;
a move slides a tile adjacent to the blank into it.  IDA* with the
Manhattan-distance heuristic is the paper's benchmark workload
(``side=4`` — the 15-puzzle).

The state carries the previous blank position so the successor generator
can refuse to undo the last move — the standard pruning that removes the
trivial 2-cycles of the naive tree.  Goal testing ignores that component.

Besides the per-node ``SearchProblem`` interface, the puzzle exposes a
*vectorizable* view consumed by the flat search arena
(:mod:`repro.search.arena`): states encode to fixed-width ``uint8`` rows
(:meth:`SlidingPuzzle.encode_state` / :meth:`~SlidingPuzzle.decode_state`)
and three precomputed tables drive batched expansion —
:meth:`~SlidingPuzzle.move_table` (blank destinations per position, in
generation order), :meth:`~SlidingPuzzle.manhattan_table` (per
tile-position Manhattan contributions, the delta table for O(1)
incremental ``h`` updates), and :meth:`~SlidingPuzzle.goal_row`.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import NamedTuple

import numpy as np

from repro.search.problem import SearchProblem
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int

__all__ = ["PuzzleState", "SlidingPuzzle", "manhattan_distance", "linear_conflicts"]


class PuzzleState(NamedTuple):
    """An immutable puzzle node.

    Attributes
    ----------
    tiles:
        Row-major tile values, 0 is the blank.
    blank:
        Index of the blank in ``tiles``.
    prev_blank:
        Blank index before the last move (``-1`` at the root) — used to
        forbid the move that would undo the previous one.
    """

    tiles: tuple[int, ...]
    blank: int
    prev_blank: int


def _neighbor_table(side: int) -> tuple[tuple[int, ...], ...]:
    """Precomputed blank destinations for each blank position."""
    table = []
    for pos in range(side * side):
        r, c = divmod(pos, side)
        moves = []
        if r > 0:
            moves.append(pos - side)
        if c > 0:
            moves.append(pos - 1)
        if c < side - 1:
            moves.append(pos + 1)
        if r < side - 1:
            moves.append(pos + side)
        table.append(tuple(moves))
    return tuple(table)


def manhattan_distance(tiles: Sequence[int], side: int) -> int:
    """Sum over non-blank tiles of the row+column distance to goal slot.

    The goal layout is ``1, 2, ..., side^2-1, 0`` (blank last).
    """
    total = 0
    for pos, tile in enumerate(tiles):
        if tile == 0:
            continue
        goal_pos = tile - 1
        total += abs(pos // side - goal_pos // side) + abs(pos % side - goal_pos % side)
    return total


def linear_conflicts(tiles: Sequence[int], side: int) -> int:
    """Added moves from the linear-conflict heuristic (Hansson et al.).

    Two tiles conflict when both belong to the line (row or column)
    they currently occupy but in reversed order; resolving a conflict
    forces one of them off the line and back — at least two extra moves
    beyond Manhattan distance.  Per line, conflicts are charged by
    greedily removing the most-conflicted tile, the standard admissible
    accounting.  Returns the total *added* moves (a multiple of 2).
    """
    total = 0

    def line_penalty(entries: list[tuple[int, int]]) -> int:
        # entries: (position-in-line, goal-position-in-line).
        conflicts = {
            i: {
                j
                for j in range(len(entries))
                if i != j
                and (entries[i][0] - entries[j][0])
                * (entries[i][1] - entries[j][1])
                < 0
            }
            for i in range(len(entries))
        }
        penalty = 0
        while any(conflicts.values()):
            worst = max(conflicts, key=lambda k: len(conflicts[k]))
            for other in conflicts[worst]:
                conflicts[other].discard(worst)
            conflicts[worst] = set()
            penalty += 2
        return penalty

    for r in range(side):
        row = []
        for c in range(side):
            tile = tiles[r * side + c]
            if tile != 0 and (tile - 1) // side == r:
                row.append((c, (tile - 1) % side))
        total += line_penalty(row)
    for c in range(side):
        col = []
        for r in range(side):
            tile = tiles[r * side + c]
            if tile != 0 and (tile - 1) % side == c:
                col.append((r, (tile - 1) // side))
        total += line_penalty(col)
    return total


class SlidingPuzzle(SearchProblem):
    """A sliding-tile puzzle instance.

    Parameters
    ----------
    tiles:
        Initial row-major layout; must be a permutation of
        ``0 .. side^2-1``.
    side:
        Board side; inferred from ``len(tiles)`` when omitted.
    heuristic_name:
        ``"manhattan"`` (the paper's choice) or ``"linear_conflict"``
        (Manhattan + linear conflicts — strictly stronger, still
        admissible; an ablation for heuristic quality vs load balance).

    Raises
    ------
    ValueError
        For malformed layouts.  Unsolvable instances are accepted
        (construction-time parity is reported by :meth:`is_solvable`) —
        searching one simply exhausts the reachable half of the space.
    """

    def __init__(
        self,
        tiles: Sequence[int],
        *,
        side: int | None = None,
        heuristic_name: str = "manhattan",
    ) -> None:
        if heuristic_name not in ("manhattan", "linear_conflict"):
            raise ValueError(
                "heuristic_name must be 'manhattan' or 'linear_conflict', "
                f"got {heuristic_name!r}"
            )
        self.heuristic_name = heuristic_name
        tiles = tuple(int(t) for t in tiles)
        if side is None:
            side = int(round(len(tiles) ** 0.5))
        check_positive_int(side, "side")
        if side * side != len(tiles):
            raise ValueError(
                f"tiles length {len(tiles)} is not side^2 for side={side}"
            )
        if sorted(tiles) != list(range(side * side)):
            raise ValueError("tiles must be a permutation of 0..side^2-1")
        self.side = side
        self.tiles = tiles
        self.goal_tiles = tuple(list(range(1, side * side)) + [0])
        self._neighbors = _neighbor_table(side)
        # Per-(tile, position) Manhattan contribution, for O(1) child
        # heuristic updates during expansion.
        n = side * side
        self._dist = [[0] * n for _ in range(n)]
        for tile in range(1, n):
            goal_pos = tile - 1
            for pos in range(n):
                self._dist[tile][pos] = abs(pos // side - goal_pos // side) + abs(
                    pos % side - goal_pos % side
                )

    # -- SearchProblem -----------------------------------------------------

    def initial_state(self) -> PuzzleState:
        return PuzzleState(self.tiles, self.tiles.index(0), -1)

    def expand(self, state: PuzzleState) -> list[PuzzleState]:
        tiles, blank, prev = state
        out = []
        for dest in self._neighbors[blank]:
            if dest == prev:
                continue
            lst = list(tiles)
            lst[blank] = lst[dest]
            lst[dest] = 0
            out.append(PuzzleState(tuple(lst), dest, blank))
        return out

    def is_goal(self, state: PuzzleState) -> bool:
        return state.tiles == self.goal_tiles

    def heuristic(self, state: PuzzleState) -> int:
        tiles = state.tiles
        dist = self._dist
        total = 0
        for pos, tile in enumerate(tiles):
            if tile:
                total += dist[tile][pos]
        if self.heuristic_name == "linear_conflict":
            total += linear_conflicts(tiles, self.side)
        return total

    # -- vectorizable view (consumed by repro.search.arena) -----------------
    #
    # The arena backend recognizes problems by these methods (duck typing:
    # no import cycle between problems/ and search/).  All tables are
    # cached, read-only numpy arrays.

    @property
    def state_width(self) -> int:
        """Cells per encoded state row (``side ** 2``); rows are uint8,
        so only boards up to ``side = 16`` (tile values < 256) encode."""
        return self.side * self.side

    def supports_arena_backend(self) -> bool:
        """True when the vectorized expansion kernel is exact for this
        instance: the incremental delta table covers Manhattan only, and
        tile values must fit the uint8 codec."""
        return self.heuristic_name == "manhattan" and self.state_width <= 256

    def move_table(self) -> np.ndarray:
        """``(side^2, 4)`` int32: blank destinations per blank position,
        padded with ``-1``, columns in *generation order* (the exact order
        :meth:`expand` emits children) so batched and per-node expansion
        visit identical trees."""
        if not hasattr(self, "_move_table"):
            n = self.state_width
            table = np.full((n, 4), -1, dtype=np.int32)
            for pos, moves in enumerate(self._neighbors):
                table[pos, : len(moves)] = moves
            table.setflags(write=False)
            self._move_table = table
        return self._move_table

    def manhattan_table(self) -> np.ndarray:
        """``(side^2, side^2)`` int32 ``D[tile, pos]``: tile ``tile``'s
        Manhattan contribution when sitting at ``pos`` (row 0, the blank,
        is all zeros).  Moving tile ``t`` from ``src`` into the blank at
        ``dst`` changes ``h`` by ``D[t, dst] - D[t, src]`` — the O(1)
        incremental update the arena kernel applies per child."""
        if not hasattr(self, "_manhattan_table"):
            table = np.asarray(self._dist, dtype=np.int32)
            table.setflags(write=False)
            self._manhattan_table = table
        return self._manhattan_table

    def goal_row(self) -> np.ndarray:
        """The goal layout as an encoded uint8 row (vector goal tests)."""
        if not hasattr(self, "_goal_row"):
            row = np.asarray(self.goal_tiles, dtype=np.uint8)
            row.setflags(write=False)
            self._goal_row = row
        return self._goal_row

    def encode_state(self, state: PuzzleState) -> tuple[np.ndarray, int, int]:
        """Encode a :class:`PuzzleState` as ``(tiles_row, blank, prev)``
        with ``tiles_row`` a ``(side^2,)`` uint8 array."""
        return np.asarray(state.tiles, dtype=np.uint8), state.blank, state.prev_blank

    def decode_state(
        self, tiles_row: np.ndarray, blank: int, prev_blank: int
    ) -> PuzzleState:
        """Inverse of :meth:`encode_state` (arena snapshots back to the
        hashable per-node representation)."""
        return PuzzleState(
            tuple(int(t) for t in tiles_row), int(blank), int(prev_blank)
        )

    # -- instance utilities --------------------------------------------------

    def is_solvable(self) -> bool:
        """Parity test: can the goal be reached from ``tiles``?

        Odd boards: solvable iff the inversion count is even.  Even boards
        (the 15-puzzle): solvable iff inversions plus the blank's row from
        the bottom (1-based) is odd.
        """
        seq = [t for t in self.tiles if t != 0]
        inversions = sum(
            1
            for i in range(len(seq))
            for j in range(i + 1, len(seq))
            if seq[i] > seq[j]
        )
        if self.side % 2 == 1:
            return inversions % 2 == 0
        blank_row_from_bottom = self.side - (self.tiles.index(0) // self.side)
        return (inversions + blank_row_from_bottom) % 2 == 1

    @classmethod
    def scrambled(
        cls,
        side: int,
        n_moves: int,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> "SlidingPuzzle":
        """Instance generated by an ``n_moves`` random walk from the goal.

        Never undoes the previous move, so difficulty grows with
        ``n_moves``; always solvable by construction.
        """
        check_positive_int(side, "side")
        gen = as_generator(rng)
        neighbors = _neighbor_table(side)
        tiles = list(range(1, side * side)) + [0]
        blank = side * side - 1
        prev = -1
        for _ in range(n_moves):
            options = [d for d in neighbors[blank] if d != prev]
            dest = int(options[gen.integers(0, len(options))])
            tiles[blank] = tiles[dest]
            tiles[dest] = 0
            prev, blank = blank, dest
        return cls(tiles, side=side)
