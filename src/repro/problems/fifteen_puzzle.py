"""15-puzzle instance library (Section 5's benchmark domain).

The paper solves instances from Korf's classic 100-instance set on the
CM-2; those require hundreds of millions of expansions and days of pure
Python, so the bundled :data:`BENCH_INSTANCES` are seeded scrambles of
graded difficulty whose search spaces fit the simulated machine at
reduced scale.  Ground-truth optimal costs and node counts are computed
in-run by serial IDA* — the library ships no unverifiable constants.
"""

from __future__ import annotations

import numpy as np

from repro.problems.npuzzle import SlidingPuzzle

__all__ = ["FifteenPuzzle", "scrambled_fifteen_puzzle", "BENCH_INSTANCES"]


class FifteenPuzzle(SlidingPuzzle):
    """The 4x4 sliding puzzle: ``SlidingPuzzle`` fixed to ``side=4``."""

    def __init__(self, tiles, *, heuristic_name: str = "manhattan") -> None:
        super().__init__(tiles, side=4, heuristic_name=heuristic_name)

    @classmethod
    def from_string(cls, text: str) -> "FifteenPuzzle":
        """Parse the Korf-style instance format: 16 whitespace-separated
        tile numbers in row-major order, 0 for the blank.

        Example: ``"1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 0"`` is the goal.
        """
        tokens = text.split()
        if len(tokens) != 16:
            raise ValueError(
                f"a 15-puzzle instance needs 16 tiles, got {len(tokens)}"
            )
        try:
            tiles = [int(t) for t in tokens]
        except ValueError:
            raise ValueError(f"non-integer tile in instance: {text!r}") from None
        return cls(tiles)


def scrambled_fifteen_puzzle(
    n_moves: int, *, rng: int | np.random.Generator | None = None
) -> FifteenPuzzle:
    """A solvable 15-puzzle instance, ``n_moves`` random steps from goal."""
    base = SlidingPuzzle.scrambled(4, n_moves, rng=rng)
    return FifteenPuzzle(base.tiles)


def _bench_instances() -> dict[str, FifteenPuzzle]:
    """Fixed-seed instances of graded difficulty.

    The scramble length controls the IDA* tree size roughly
    geometrically; these four span ~1e2 to ~1e5 serial expansions —
    the reduced-scale analogue of the paper's four problem sizes
    (Table 2's W column).
    """
    spec = {
        "tiny": (12, 101),
        "small": (22, 202),
        "medium": (34, 303),
        "large": (46, 404),
    }
    return {
        name: scrambled_fifteen_puzzle(moves, rng=seed)
        for name, (moves, seed) in spec.items()
    }


#: Named benchmark instances, ordered easy to hard.
BENCH_INSTANCES: dict[str, FifteenPuzzle] = _bench_instances()
