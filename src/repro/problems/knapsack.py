"""0/1 knapsack by depth-first branch and bound.

The combinatorial-optimization workload the paper's introduction cites
(Horowitz & Sahni [13]).  The decision tree fixes items in
value-density order — at each level, take or skip the next item — and
prunes with the classic fractional-relaxation bound: the best packing
of the remaining capacity if items could be split.  The bound is exact
on the relaxation, hence admissible for the 0/1 problem.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.search.branch_and_bound import BnBProblem
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int

__all__ = ["KnapsackState", "KnapsackProblem"]


class KnapsackState(NamedTuple):
    """A decision-tree node: items 0..index-1 decided.

    ``value``/``weight`` accumulate the taken items.
    """

    index: int
    weight: int
    value: int


class KnapsackProblem(BnBProblem):
    """Maximize value within a weight capacity.

    Parameters
    ----------
    weights, values:
        Item data (positive integers).  Items are internally sorted by
        value density, the order the fractional bound requires.
    capacity:
        Knapsack capacity.
    """

    sense = "max"

    def __init__(self, weights, values, capacity: int) -> None:
        weights = [int(w) for w in weights]
        values = [int(v) for v in values]
        if len(weights) != len(values) or not weights:
            raise ValueError("weights and values must be equal-length, non-empty")
        if any(w <= 0 for w in weights) or any(v <= 0 for v in values):
            raise ValueError("weights and values must be positive")
        self.capacity = check_positive_int(capacity, "capacity")
        order = sorted(
            range(len(weights)), key=lambda i: values[i] / weights[i], reverse=True
        )
        self.weights = tuple(weights[i] for i in order)
        self.values = tuple(values[i] for i in order)
        self.n_items = len(weights)

    # -- instance generation -----------------------------------------------

    @classmethod
    def random(
        cls,
        n_items: int,
        *,
        rng: int | np.random.Generator | None = None,
        max_weight: int = 100,
        capacity_fraction: float = 0.5,
        correlated: bool = True,
    ) -> "KnapsackProblem":
        """A seeded random instance.

        ``correlated=True`` gives values near weights (the classically
        *hard* family — bounds stay tight, trees stay bushy).
        """
        check_positive_int(n_items, "n_items")
        gen = as_generator(rng)
        weights = gen.integers(1, max_weight + 1, size=n_items)
        if correlated:
            values = weights + gen.integers(1, max_weight // 2 + 1, size=n_items)
        else:
            values = gen.integers(1, max_weight + 1, size=n_items)
        capacity = max(1, int(capacity_fraction * weights.sum()))
        return cls(weights.tolist(), values.tolist(), capacity)

    # -- BnBProblem ----------------------------------------------------------

    def initial_state(self) -> KnapsackState:
        return KnapsackState(0, 0, 0)

    def expand(self, state: KnapsackState) -> list[KnapsackState]:
        if state.index >= self.n_items:
            return []
        i = state.index
        children = []
        # "Take" first: depth-first finds good incumbents early.
        if state.weight + self.weights[i] <= self.capacity:
            children.append(
                KnapsackState(
                    i + 1, state.weight + self.weights[i], state.value + self.values[i]
                )
            )
        children.append(KnapsackState(i + 1, state.weight, state.value))
        return children

    def objective(self, state: KnapsackState) -> float | None:
        if state.index >= self.n_items:
            return float(state.value)
        return None

    def bound(self, state: KnapsackState) -> float:
        """Fractional relaxation from ``state.index`` onward."""
        room = self.capacity - state.weight
        total = float(state.value)
        for i in range(state.index, self.n_items):
            w = self.weights[i]
            if w <= room:
                room -= w
                total += self.values[i]
            else:
                total += self.values[i] * (room / w)
                break
        return total

    # -- reference solution ---------------------------------------------------

    def solve_dp(self) -> int:
        """Exact optimum by dynamic programming (O(n * capacity)).

        Ground truth for tests — independent of any search code.
        """
        best = np.zeros(self.capacity + 1, dtype=np.int64)
        for w, v in zip(self.weights, self.values):
            if w > self.capacity:
                continue
            # The RHS snapshots the pre-update array, so each item is
            # used at most once (0/1 semantics).
            best[w:] = np.maximum(best[w:], best[:-w] + v)
        return int(best[-1])
