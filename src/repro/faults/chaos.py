"""Deterministic crash injection for the ``run_grid`` process pool.

:class:`GridChaos` is a test hook shipped inside the worker payload: it
names one grid cell (by flat index) and a crash ``kind``, and fires on
the configured attempt numbers only.  Because the trigger is a pure
function of ``(index, attempt)`` — no randomness, no clocks — chaos runs
are exactly reproducible and the retried attempt is guaranteed clean,
which is what lets the hardened grid assert that a retried cell's record
equals the serial oracle's.

Both pooled executors honor it: the per-cell ``"process"`` path calls
:meth:`GridChaos.maybe_trigger` right before the cell's simulation, and
the sharded ``"batched"`` path calls it at shard start for every cell
index the shard carries with the *shard's* attempt number — so the same
``GridChaos(index=...)`` crashes the same logical work on either
executor, and a shard retried after a crash runs clean.

Kinds:

- ``"exit"`` — hard-kill the worker process (``os._exit``), which the
  parent observes as ``BrokenProcessPool``; exercises pool respawn;
- ``"raise"`` — raise a :class:`~repro.errors.GridCellError` inside the
  worker; exercises per-cell retry accounting;
- ``"hang"`` — sleep past any per-cell timeout; exercises the in-worker
  alarm path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import ConfigError, GridCellError

__all__ = ["GridChaos", "CHAOS_KINDS"]

CHAOS_KINDS = ("exit", "raise", "hang")

# How long a "hang" sleeps; far past any sane per-cell timeout but small
# enough that an un-timed-out test still finishes.
_HANG_SECONDS = 120.0


@dataclass(frozen=True)
class GridChaos:
    """Crash cell ``index`` with ``kind`` on the listed ``attempts``."""

    index: int
    kind: str = "exit"
    attempts: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ConfigError(
                f"chaos kind must be one of {CHAOS_KINDS}, got {self.kind!r}"
            )
        if self.index < 0:
            raise ConfigError(f"chaos cell index must be >= 0, got {self.index}")
        if not self.attempts or any(a < 0 for a in self.attempts):
            raise ConfigError(
                f"chaos attempts must be non-empty and >= 0, got {self.attempts}"
            )

    def maybe_trigger(self, index: int, attempt: int) -> None:
        """Fire the configured crash if ``(index, attempt)`` matches.

        Runs inside the pool worker, before the cell's simulation starts.
        """
        if index != self.index or attempt not in self.attempts:
            return
        if self.kind == "exit":
            # Bypass all cleanup so the parent sees an abrupt worker death,
            # exactly like an OOM kill or segfault would look.
            os._exit(1)
        if self.kind == "raise":
            raise GridCellError(
                f"chaos: injected failure in cell {index} (attempt {attempt})"
            )
        time.sleep(_HANG_SECONDS)
