"""Mutable per-run state of an injected :class:`~repro.faults.plan.FaultPlan`.

A :class:`FaultRuntime` is created by ``FaultPlan.start(n_pes)`` and
threaded through the scheduler loop.  It owns:

- the **alive/dead masks** — who still participates in expansion cycles
  and LB matching;
- the **quarantine** — the frontiers extracted from dead PEs, parked
  until the next LB phase re-donates them to idle alive PEs through the
  normal GP/nGP matching path;
- the **drop/dup decision stream** — a dedicated RNG (seeded from the
  plan, independent of the workload's tree-shape RNG) that decides which
  matched transfers are lost in flight or delivered twice;
- the **conservation ledger** — counts of quarantined, recovered,
  dropped and duplicated work that the runtime sanitizer balances.

All bookkeeping here is work-*neutral*: a dropped transfer leaves the
payload on the donor, a duplicated one is deduplicated on receipt, and a
quarantined frontier is re-injected verbatim, so fault-injected runs
explore exactly the nodes the fault-free run explores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import FaultInjectionError
from repro.obs.events import EventSink, FaultEvent
from repro.util.rng import spawn_child

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.faults.plan import FaultPlan

__all__ = ["FaultRuntime", "FaultReport"]

# Child-stream index for the drop/dup decision RNG.  FaultPlan.random
# uses index 0 for plan construction; the runtime must not share it.
_DECISION_STREAM = 1


@dataclass(frozen=True)
class FaultReport:
    """Immutable end-of-run summary of what the fault layer did."""

    pe_deaths: int
    nodes_quarantined: int
    nodes_recovered: int
    transfers_dropped: int
    transfers_duplicated: int
    max_slowdown: float

    @property
    def any_faults(self) -> bool:
        """Whether any fault actually fired during the run."""
        return (
            self.pe_deaths > 0
            or self.transfers_dropped > 0
            or self.transfers_duplicated > 0
            or self.max_slowdown > 1.0
        )


class FaultRuntime:
    """Live fault state for one machine run.

    Shared across the per-bound schedulers of a ``ParallelIDAStar`` run:
    deaths key off the cumulative ``SimdMachine.n_cycles`` axis and a PE
    stays dead for every subsequent iteration.
    """

    def __init__(self, plan: "FaultPlan", n_pes: int) -> None:
        self.plan = plan
        self.n_pes = n_pes
        self.alive = np.ones(n_pes, dtype=bool)
        # pe -> (workload payload, entry count); insertion order preserved
        # so recovery donations are deterministic.
        self._quarantine: dict[int, tuple[Any, int]] = {}
        self._pending_failures = sorted(
            plan.failures, key=lambda f: (f.cycle, f.pe)
        )
        self._rng = spawn_child(plan.seed, _DECISION_STREAM)
        #: Optional event sink (bound by ``Scheduler`` from ``obs.events``);
        #: strictly observational — emission never touches the decision RNG.
        self.observer: EventSink | None = None
        self._last_cycle = 0
        self.pe_deaths = 0
        self.nodes_quarantined = 0
        self.nodes_recovered = 0
        self.transfers_dropped = 0
        self.transfers_duplicated = 0
        self.max_slowdown = 1.0

    # -- fail-stop deaths ----------------------------------------------------

    @property
    def dead(self) -> np.ndarray:
        """Boolean mask of fail-stopped PEs."""
        return ~self.alive

    @property
    def any_dead(self) -> bool:
        return not bool(self.alive.all())

    def new_deaths(self, cycle: int) -> list[int]:
        """PEs whose fail-stop cycle has arrived; marks them dead.

        Idempotent per PE: each failure is reported exactly once, on the
        first call whose ``cycle`` has reached its death cycle.
        """
        self._last_cycle = cycle
        fired: list[int] = []
        while self._pending_failures and self._pending_failures[0].cycle <= cycle:
            failure = self._pending_failures.pop(0)
            if self.alive[failure.pe]:
                self.alive[failure.pe] = False
                self.pe_deaths += 1
                fired.append(failure.pe)
                self._emit("death", failure.pe)
        return fired

    def _emit(self, event: str, pe: int, entries: int = 0) -> None:
        if self.observer is not None:
            self.observer.emit(
                FaultEvent(cycle=self._last_cycle, event=event, pe=pe, entries=entries)
            )

    def __getstate__(self) -> dict:
        # Observers are not checkpointed (the obs contract): a resumed
        # run re-attaches fresh sinks via Scheduler(obs=...).
        state = self.__dict__.copy()
        state["observer"] = None
        return state

    # -- quarantine ----------------------------------------------------------

    def quarantine(self, pe: int, payload: Any, n_entries: int) -> None:
        """Park the surviving frontier of dead PE ``pe``."""
        if n_entries < 0:
            raise FaultInjectionError(
                f"negative quarantine size {n_entries} from PE {pe}"
            )
        if pe in self._quarantine:
            raise FaultInjectionError(
                f"PE {pe} already has a quarantined frontier"
            )
        self._quarantine[pe] = (payload, n_entries)
        self.nodes_quarantined += n_entries
        self._emit("quarantine", pe, n_entries)

    def quarantine_mask(self) -> np.ndarray:
        """Boolean mask of dead PEs holding a quarantined frontier."""
        mask = np.zeros(self.n_pes, dtype=bool)
        for pe, (_, n_entries) in self._quarantine.items():
            if n_entries > 0:
                mask[pe] = True
        return mask

    @property
    def has_quarantine(self) -> bool:
        return any(n for _, n in self._quarantine.values())

    @property
    def quarantined_entries(self) -> int:
        """Work units currently parked in quarantine."""
        return sum(n for _, n in self._quarantine.values())

    def release(self, pe: int) -> tuple[Any, int]:
        """Remove and return PE ``pe``'s quarantined ``(payload, n_entries)``."""
        payload, n_entries = self._quarantine.pop(pe)
        self.nodes_recovered += n_entries
        self._emit("release", pe, n_entries)
        return payload, n_entries

    # -- transfer perturbation -----------------------------------------------

    def filter_transfers(
        self, donors: np.ndarray, receivers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Apply in-flight drop/duplication to one round of matched pairs.

        Returns ``(donors_kept, receivers_kept, n_dropped, n_duplicated)``.
        Dropped pairs are removed (the donor keeps its work and the pair
        is re-matched on a later phase); duplicated pairs are delivered
        once — the second copy is detected and discarded — but counted so
        the scheduler can charge the extra traffic.
        """
        n = len(donors)
        if n == 0 or (
            self.plan.drop_probability == 0.0
            and self.plan.dup_probability == 0.0
        ):
            return donors, receivers, 0, 0
        draws = self._rng.random(n)
        dropped = draws < self.plan.drop_probability
        dup_draws = self._rng.random(n)
        duplicated = (~dropped) & (dup_draws < self.plan.dup_probability)
        n_dropped = int(dropped.sum())
        n_duplicated = int(duplicated.sum())
        self.transfers_dropped += n_dropped
        self.transfers_duplicated += n_duplicated
        if self.observer is not None:
            for pe in donors[dropped].tolist():
                self._emit("perturb", int(pe), 1)
            for pe in donors[duplicated].tolist():
                self._emit("perturb", int(pe), 2)
        keep = ~dropped
        return donors[keep], receivers[keep], n_dropped, n_duplicated

    # -- stragglers ----------------------------------------------------------

    def slowdown(self, cycle: int) -> float:
        """Lock-step stretch factor of expansion cycle ``cycle``.

        The SIMD machine advances at the pace of its slowest live PE, so
        this is the max factor over alive stragglers active at ``cycle``
        (1.0 when none are).
        """
        factor = 1.0
        for s in self.plan.stragglers:
            if self.alive[s.pe] and s.active_at(cycle):
                factor = max(factor, s.factor)
        if factor > self.max_slowdown:
            self.max_slowdown = factor
        return factor

    # -- invariants ----------------------------------------------------------

    def check_conservation(self) -> None:
        """Raise unless quarantined == recovered + still-parked work."""
        parked = self.quarantined_entries
        if self.nodes_quarantined != self.nodes_recovered + parked:
            raise FaultInjectionError(
                f"fault conservation violated: quarantined "
                f"{self.nodes_quarantined} != recovered "
                f"{self.nodes_recovered} + parked {parked}"
            )

    def report(self) -> FaultReport:
        """Snapshot the counters into an immutable report."""
        return FaultReport(
            pe_deaths=self.pe_deaths,
            nodes_quarantined=self.nodes_quarantined,
            nodes_recovered=self.nodes_recovered,
            transfers_dropped=self.transfers_dropped,
            transfers_duplicated=self.transfers_duplicated,
            max_slowdown=self.max_slowdown,
        )
