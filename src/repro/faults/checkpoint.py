"""Checkpoint/resume for scheduled runs.

A checkpoint is the *complete* state of a run at a cycle boundary:
workload arrays (stacks, arena windows, RNG streams), machine ledger and
counters, the matcher (GP pointer included), the trigger's accumulators,
the trace so far, and the live fault runtime (alive mask, quarantine,
drop/dup RNG).  Restoring it and continuing the loop is bit-identical to
never having stopped — the resume-vs-straight-through equivalence the
test suite asserts.

On-disk format::

    MAGIC (11 bytes) | crc32 (u32 LE) | payload length (u64 LE) | payload

where the payload is a pickle of one dict.  The scheme is stored as its
spec string and rebuilt on load (``Scheme`` objects close over factory
functions and do not pickle — the same reason ``run_grid`` workers
rebuild schemes from specs).  Writes go through
:func:`repro.util.atomic.atomic_write_bytes` — a unique fsynced temp
file in the target directory, ``os.replace``, then a parent-directory
fsync — so a crash mid-write can never clobber the previous good
checkpoint, and a crash right after the write cannot lose the new one
either.  Any framing or CRC mismatch on
load raises :class:`~repro.errors.CheckpointCorruptError` — a torn or
truncated file is refused, never half-restored.

This module must not import :mod:`repro.core` at module level (the
scheduler imports us for :class:`CheckpointConfig`); the loader imports
it lazily.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import CheckpointCorruptError, ConfigError
from repro.util.atomic import atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import RunMetrics
    from repro.core.scheduler import Scheduler

__all__ = [
    "CheckpointConfig",
    "FRAME_HEADER",
    "frame_payload",
    "try_parse_frame",
    "parse_frame",
    "write_checkpoint",
    "load_checkpoint",
    "load_scheduler",
    "resume_run",
]

MAGIC = b"REPROCKPT1\n"
#: One CRC frame header: crc32 of the payload (u32 LE), payload length
#: (u64 LE).  Shared by checkpoints (one frame per file) and the
#: write-ahead cell journal (many frames per file).
FRAME_HEADER = struct.Struct("<IQ")
_HEADER = FRAME_HEADER  # historical alias
_VERSION = 1


def frame_payload(blob: bytes) -> bytes:
    """CRC-frame one payload: ``crc32 | length | payload`` bytes."""
    return FRAME_HEADER.pack(zlib.crc32(blob), len(blob)) + blob


def try_parse_frame(raw: bytes, offset: int) -> tuple[str, bytes | None, int]:
    """Parse one CRC frame at ``offset`` without raising.

    Returns ``(status, payload, next_offset)`` where status is:

    - ``"ok"`` — intact frame; ``payload`` is its bytes and
      ``next_offset`` the first byte after it;
    - ``"short"`` — the buffer ends before the frame does (a torn tail:
      the only artifact an interrupted append can leave);
    - ``"crc"`` — the frame is complete but its payload fails the CRC
      (bit rot or an interleaved writer — never a clean crash).

    On non-``"ok"`` statuses ``payload`` is ``None`` and ``next_offset``
    echoes ``offset`` (the last known-good boundary).
    """
    header_end = offset + FRAME_HEADER.size
    if header_end > len(raw):
        return "short", None, offset
    crc, length = FRAME_HEADER.unpack_from(raw, offset)
    payload_end = header_end + length
    if payload_end > len(raw):
        return "short", None, offset
    payload = raw[header_end:payload_end]
    if zlib.crc32(payload) != crc:
        return "crc", None, offset
    return "ok", payload, payload_end


def parse_frame(
    raw: bytes,
    offset: int,
    *,
    where: str,
    error: type[CheckpointCorruptError] = CheckpointCorruptError,
) -> tuple[bytes, int]:
    """Like :func:`try_parse_frame` but raising ``error`` on any defect."""
    status, payload, next_offset = try_parse_frame(raw, offset)
    if status == "short":
        raise error(f"{where} is truncated (incomplete frame at byte {offset})")
    if status == "crc":
        raise error(f"{where} failed its CRC check (frame at byte {offset})")
    assert payload is not None
    return payload, next_offset


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often a scheduled run checkpoints itself.

    ``every`` counts expansion cycles on the machine ledger; the file at
    ``path`` is atomically replaced at each write, so it always holds the
    latest complete checkpoint.
    """

    path: str | Path
    every: int = 100

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ConfigError(f"checkpoint every must be >= 1, got {self.every}")


def write_checkpoint(scheduler: "Scheduler", path: str | Path) -> None:
    """Serialize a scheduler's full run state to ``path`` atomically."""
    scheme = scheduler.scheme
    payload: dict[str, Any] = {
        "version": _VERSION,
        "scheme": scheme.name if hasattr(scheme, "name") else str(scheme),
        "workload": scheduler.workload,
        "machine": scheduler.machine,
        "matcher": scheduler.matcher,
        "trigger": scheduler.trigger,
        "trace_obj": scheduler._trace_obj,
        "n_init_lb": scheduler._n_init_lb,
        "fault_runtime": scheduler._faults,
        "kwargs": {
            "init_threshold": scheduler.init_threshold,
            "trace": scheduler.trace,
            "max_cycles": scheduler.max_cycles,
            "charge_collectives": scheduler.charge_collectives,
            "sanitize": scheduler.sanitize,
        },
    }
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    framed = MAGIC + frame_payload(blob)
    atomic_write_bytes(Path(path), framed)
    # Observability is optional and strictly observational; getattr keeps
    # this callable for scheduler-like objects without an obs field.
    obs = getattr(scheduler, "obs", None)
    if obs is not None and obs.metrics is not None:
        obs.metrics.counter("checkpoint.writes").inc()
        obs.metrics.counter("checkpoint.bytes").inc(len(framed))
        obs.metrics.gauge("checkpoint.last_bytes").set(len(framed))


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read and validate a checkpoint file; return its payload dict."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointCorruptError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    if not raw.startswith(MAGIC):
        raise CheckpointCorruptError(
            f"{path} is not a checkpoint file (bad magic)"
        )
    blob, end = parse_frame(raw, len(MAGIC), where=str(path))
    if end != len(raw):
        raise CheckpointCorruptError(
            f"{path} has {len(raw) - end} trailing bytes after its frame"
        )
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointCorruptError(
            f"{path} payload does not unpickle: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise CheckpointCorruptError(
            f"{path} has unsupported checkpoint version "
            f"{payload.get('version') if isinstance(payload, dict) else '?'}"
        )
    return payload


def load_scheduler(
    path: str | Path, *, checkpoint: CheckpointConfig | None = None
) -> "Scheduler":
    """Rebuild a :class:`~repro.core.scheduler.Scheduler` mid-run.

    The returned scheduler's :meth:`run` continues the loop from the
    checkpointed cycle.  Pass ``checkpoint`` to keep checkpointing the
    resumed run (defaults to off).
    """
    from repro.core.scheduler import Scheduler

    payload = load_checkpoint(path)
    scheduler = Scheduler(
        payload["workload"],
        payload["machine"],
        payload["scheme"],
        faults=payload["fault_runtime"],
        checkpoint=checkpoint,
        **payload["kwargs"],
    )
    scheduler.matcher = payload["matcher"]
    scheduler.trigger = payload["trigger"]
    scheduler._trace_obj = payload["trace_obj"]
    scheduler._n_init_lb = payload["n_init_lb"]
    scheduler._resumed = True
    scheduler._last_checkpoint_cycle = payload["machine"].n_cycles
    return scheduler


def resume_run(
    path: str | Path, *, checkpoint: CheckpointConfig | None = None
) -> "RunMetrics":
    """Load a checkpoint and run it to completion; return the metrics."""
    return load_scheduler(path, checkpoint=checkpoint).run()
