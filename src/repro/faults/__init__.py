"""Fault injection, recovery, and checkpoint/resume.

The paper's CM-2 never loses a processor; a production-scale descendant
will.  This package makes failure a first-class, *deterministic* part of
the simulation:

- :mod:`repro.faults.plan` — immutable, seeded fault plans (fail-stop PE
  death, stragglers, dropped/duplicated transfers);
- :mod:`repro.faults.runtime` — the live per-run fault state the
  scheduler drives (alive masks, quarantine, conservation ledger);
- :mod:`repro.faults.checkpoint` — CRC-framed, atomically written
  checkpoints restoring a run bit-identically;
- :mod:`repro.faults.chaos` — deterministic crash injection for the
  ``run_grid`` process pool (test hook).

Because recovery re-donates quarantined frontiers through the regular
GP/nGP matching path and every perturbation is work-conserving, a
fault-injected search returns exactly the fault-free results — only the
ledger's ``T_recovery`` line shows the price paid.
"""

from __future__ import annotations

from repro.faults.chaos import GridChaos
from repro.faults.checkpoint import (
    CheckpointConfig,
    load_checkpoint,
    load_scheduler,
    resume_run,
    write_checkpoint,
)
from repro.faults.plan import FaultPlan, PEFailure, Straggler
from repro.faults.runtime import FaultReport, FaultRuntime

__all__ = [
    "FaultPlan",
    "PEFailure",
    "Straggler",
    "FaultRuntime",
    "FaultReport",
    "CheckpointConfig",
    "write_checkpoint",
    "load_checkpoint",
    "load_scheduler",
    "resume_run",
    "GridChaos",
]
