"""Deterministic, seeded fault plans for the simulated SIMD machine.

A :class:`FaultPlan` is an immutable description of *what goes wrong and
when* during a scheduled run:

- **fail-stop PE death** (:class:`PEFailure`) — processor ``pe`` stops
  participating at the start of expansion cycle ``cycle``; its surviving
  frontier is quarantined by the scheduler and re-donated to idle alive
  PEs through the regular GP/nGP matching path;
- **stragglers** (:class:`Straggler`) — a PE whose SIMD micro-cycles run
  ``factor``x slower over a cycle window; the lock-step machine waits, so
  every affected expansion cycle stretches to ``factor * U_calc`` and
  the extra wait is charged as idle time;
- **dropped / duplicated work transfers** — each matched LB transfer is
  independently dropped (sender-side retry: the donor keeps the work and
  the pair is retried at a later phase) or duplicated (the receiver-side
  dedup discards the second copy) with the plan's probabilities.  Both
  cost recovery time but never lose or double-count work, so a
  fault-injected search still returns exactly the fault-free results.

Plans are pure data: the same plan + the same seed + the same workload
always produce the same run.  Stochastic plans come from
:meth:`FaultPlan.random`; CLI specs like ``"kill=2,drop=0.1,seed=7"``
parse through :meth:`FaultPlan.from_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.util.rng import spawn_child

__all__ = ["PEFailure", "Straggler", "FaultPlan"]


@dataclass(frozen=True)
class PEFailure:
    """Fail-stop death of processor ``pe`` at expansion cycle ``cycle``.

    Cycles are counted on the machine ledger (``SimdMachine.n_cycles``),
    so in multi-iteration drivers like ``ParallelIDAStar`` a death is a
    one-time event on the *cumulative* cycle axis and the PE stays dead
    for the rest of the whole run.
    """

    cycle: int
    pe: int

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ConfigError(f"failure cycle must be >= 0, got {self.cycle}")
        if self.pe < 0:
            raise ConfigError(f"failure pe must be >= 0, got {self.pe}")


@dataclass(frozen=True)
class Straggler:
    """PE ``pe`` runs ``factor``x slower on cycles in
    ``[start_cycle, end_cycle)`` (``end_cycle=None`` means forever)."""

    pe: int
    factor: float
    start_cycle: int = 0
    end_cycle: int | None = None

    def __post_init__(self) -> None:
        if self.pe < 0:
            raise ConfigError(f"straggler pe must be >= 0, got {self.pe}")
        if self.factor < 1.0:
            raise ConfigError(
                f"straggler factor must be >= 1 (1 = nominal speed), "
                f"got {self.factor}"
            )
        if self.start_cycle < 0:
            raise ConfigError(
                f"straggler start_cycle must be >= 0, got {self.start_cycle}"
            )
        if self.end_cycle is not None and self.end_cycle <= self.start_cycle:
            raise ConfigError(
                f"straggler window [{self.start_cycle}, {self.end_cycle}) is empty"
            )

    def active_at(self, cycle: int) -> bool:
        """Whether this straggler slows expansion cycle ``cycle``."""
        if cycle < self.start_cycle:
            return False
        return self.end_cycle is None or cycle < self.end_cycle


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded description of the faults injected into a run.

    Parameters
    ----------
    failures:
        Fail-stop PE deaths (at most one per PE).
    stragglers:
        Slowed-cycle windows.
    drop_probability:
        Chance each matched LB transfer is dropped in flight (donor
        retains the work; retried on a later phase).
    dup_probability:
        Chance each *delivered* transfer arrives twice (the duplicate is
        detected and discarded at extra cost).
    seed:
        Seed of the drop/dup decision stream (independent of the
        workload's RNG, so fault decisions never perturb tree shapes).
    """

    failures: tuple[PEFailure, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    drop_probability: float = 0.0
    dup_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name, p in (
            ("drop_probability", self.drop_probability),
            ("dup_probability", self.dup_probability),
        ):
            if not 0.0 <= p < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {p}")
        pes = [f.pe for f in self.failures]
        if len(pes) != len(set(pes)):
            raise ConfigError("a PE can fail-stop at most once per plan")

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.failures
            and not self.stragglers
            and self.drop_probability == 0.0
            and self.dup_probability == 0.0
        )

    def start(self, n_pes: int):
        """Instantiate the mutable per-run state for a machine of ``n_pes``.

        Validates that every named PE exists and that the plan leaves at
        least one survivor.
        """
        from repro.faults.runtime import FaultRuntime

        for f in self.failures:
            if f.pe >= n_pes:
                raise ConfigError(
                    f"fault plan kills PE {f.pe} but the machine has "
                    f"only {n_pes} PEs"
                )
        for s in self.stragglers:
            if s.pe >= n_pes:
                raise ConfigError(
                    f"fault plan slows PE {s.pe} but the machine has "
                    f"only {n_pes} PEs"
                )
        if len(self.failures) >= n_pes:
            raise ConfigError(
                f"fault plan kills all {n_pes} PEs; at least one must survive"
            )
        return FaultRuntime(self, n_pes)

    # -- constructors --------------------------------------------------------

    @classmethod
    def random(
        cls,
        n_pes: int,
        *,
        n_failures: int = 0,
        n_stragglers: int = 0,
        max_cycle: int = 200,
        slow_factor: float = 4.0,
        drop_probability: float = 0.0,
        dup_probability: float = 0.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """A seeded random plan: distinct victim PEs, death cycles and
        straggler windows drawn uniformly in ``[0, max_cycle)``.

        A pure function of its arguments (victims come from
        ``spawn_child(seed, 0)``), so two calls with equal arguments build
        equal plans on any host.
        """
        if n_failures >= n_pes:
            raise ConfigError(
                f"cannot kill {n_failures} of {n_pes} PEs; at least one "
                "must survive"
            )
        if n_failures + n_stragglers > n_pes:
            raise ConfigError(
                f"{n_failures} failures + {n_stragglers} stragglers exceed "
                f"{n_pes} PEs"
            )
        rng = spawn_child(seed, 0)
        victims = rng.choice(n_pes, size=n_failures + n_stragglers, replace=False)
        failures = tuple(
            PEFailure(cycle=int(rng.integers(0, max_cycle)), pe=int(pe))
            for pe in victims[:n_failures]
        )
        stragglers = []
        for pe in victims[n_failures:]:
            start = int(rng.integers(0, max_cycle))
            stragglers.append(
                Straggler(
                    pe=int(pe),
                    factor=slow_factor,
                    start_cycle=start,
                    end_cycle=start + int(rng.integers(1, max_cycle + 1)),
                )
            )
        return cls(
            failures=failures,
            stragglers=tuple(stragglers),
            drop_probability=drop_probability,
            dup_probability=dup_probability,
            seed=seed,
        )

    @classmethod
    def from_spec(cls, spec: str, n_pes: int) -> "FaultPlan":
        """Parse a CLI fault spec into a plan.

        The spec is a comma-separated ``key=value`` list:

        - ``kill=N`` — N random fail-stop deaths; ``kill=PE:CYCLE+PE:CYCLE``
          names explicit deaths instead;
        - ``straggle=N`` — N random slowed PEs; ``slow=F`` their factor;
        - ``drop=P`` / ``dup=P`` — transfer drop/duplication probabilities;
        - ``window=C`` — cycle horizon for the random draws (default 200);
        - ``seed=S`` — the fault decision seed.

        Example: ``"kill=2,drop=0.1,dup=0.05,seed=7"``.
        """
        n_failures = 0
        explicit: list[PEFailure] = []
        n_stragglers = 0
        slow_factor = 4.0
        drop = dup = 0.0
        window = 200
        seed = 0
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ConfigError(
                    f"fault spec token {token!r} is not key=value (spec {spec!r})"
                )
            key, value = (part.strip() for part in token.split("=", 1))
            try:
                if key == "kill":
                    if ":" in value:
                        for pair in value.split("+"):
                            pe_s, cycle_s = pair.split(":", 1)
                            explicit.append(
                                PEFailure(cycle=int(cycle_s), pe=int(pe_s))
                            )
                    else:
                        n_failures = int(value)
                elif key == "straggle":
                    n_stragglers = int(value)
                elif key == "slow":
                    slow_factor = float(value)
                elif key == "drop":
                    drop = float(value)
                elif key == "dup":
                    dup = float(value)
                elif key == "window":
                    window = int(value)
                elif key == "seed":
                    seed = int(value)
                else:
                    raise ConfigError(
                        f"unknown fault spec key {key!r} (spec {spec!r})"
                    )
            except ValueError as exc:
                if isinstance(exc, ConfigError):
                    raise
                raise ConfigError(
                    f"bad fault spec value {value!r} for key {key!r}: {exc}"
                ) from None
        if explicit and n_failures:
            raise ConfigError(
                "fault spec mixes kill=N with explicit kill=PE:CYCLE entries"
            )
        plan = cls.random(
            n_pes,
            n_failures=n_failures,
            n_stragglers=n_stragglers,
            max_cycle=window,
            slow_factor=slow_factor,
            drop_probability=drop,
            dup_probability=dup,
            seed=seed,
        )
        if explicit:
            plan = cls(
                failures=tuple(explicit),
                stragglers=plan.stragglers,
                drop_probability=drop,
                dup_probability=dup,
                seed=seed,
            )
        return plan
