"""JSON persistence for experiment records.

Isoefficiency studies (Figures 4/7) need grids of runs that are cheap
to re-analyze without re-running; this module round-trips
:class:`~repro.experiments.runner.GridRecord` lists through a stable
JSON schema, versioned so stale files fail loudly instead of silently
misparsing.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.core.metrics import RunMetrics
from repro.experiments.runner import GridRecord
from repro.simd.machine import TimeLedger

__all__ = ["save_records", "load_records", "to_triples"]

_SCHEMA_VERSION = 1


def _record_to_dict(record: GridRecord) -> dict:
    m = record.metrics
    return {
        "scheme": record.scheme,
        "n_pes": record.n_pes,
        "total_work": record.total_work,
        "n_expand": m.n_expand,
        "n_lb": m.n_lb,
        "n_transfers": m.n_transfers,
        "n_init_lb": m.n_init_lb,
        "ledger": {
            "t_calc": m.ledger.t_calc,
            "t_idle": m.ledger.t_idle,
            "t_lb": m.ledger.t_lb,
            "elapsed": m.ledger.elapsed,
        },
    }


def _record_from_dict(data: dict) -> GridRecord:
    ledger = TimeLedger(**data["ledger"])
    metrics = RunMetrics(
        scheme=data["scheme"],
        n_pes=data["n_pes"],
        total_work=data["total_work"],
        n_expand=data["n_expand"],
        n_lb=data["n_lb"],
        n_transfers=data["n_transfers"],
        n_init_lb=data["n_init_lb"],
        ledger=ledger,
        trace=None,
    )
    return GridRecord(
        scheme=data["scheme"],
        n_pes=data["n_pes"],
        total_work=data["total_work"],
        metrics=metrics,
    )


def save_records(records: Iterable[GridRecord], path: str | Path) -> Path:
    """Write records to ``path`` as versioned JSON (traces are dropped)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": _SCHEMA_VERSION,
        "records": [_record_to_dict(r) for r in records],
    }
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_records(path: str | Path) -> list[GridRecord]:
    """Read records written by :func:`save_records`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported record schema version {version!r} "
            f"(expected {_SCHEMA_VERSION})"
        )
    return [_record_from_dict(d) for d in payload["records"]]


def to_triples(records: Iterable[GridRecord]) -> list[tuple[int, float, float]]:
    """``(P, W, E)`` triples — the input of
    :func:`repro.analysis.isoefficiency.isoefficiency_points`."""
    return [(r.n_pes, float(r.total_work), r.efficiency) for r in records]
