"""JSON persistence for experiment records.

Isoefficiency studies (Figures 4/7) need grids of runs that are cheap
to re-analyze without re-running; this module round-trips
:class:`~repro.experiments.runner.GridRecord` lists through a stable
JSON schema, versioned so stale files fail loudly instead of silently
misparsing.

Two durability guarantees:

- **Atomic, concurrency-safe replace** — :func:`save_records` stages
  the payload through :func:`repro.util.atomic.atomic_write_text`: a
  *unique* ``mkstemp`` temp file (concurrent savers to the same path
  can never clobber each other's staging), fsynced before the
  ``os.replace`` and with the parent directory fsynced after it — so a
  crash mid-write leaves the previous file intact, a crash right after
  the replace cannot leave a short or unsynced target, and any number
  of concurrent writers race only on which *complete* payload wins.
  This is the concurrent-writer contract the serve layer's shared
  :class:`~repro.serve.store.RecordStore` builds on.
- **Typed load errors** — :func:`load_records` raises
  :class:`~repro.errors.RecordStoreError` (a ``ReproError`` that also
  subclasses ``ValueError``) on unreadable, corrupt, or
  version-mismatched payloads, never a bare ``json.JSONDecodeError``
  (nor a bare ``ValueError``/``AttributeError`` from a structurally
  valid payload holding malformed values).

Traces are dropped by default (a full per-cycle series dwarfs the
record it annotates); pass ``traces=True`` to persist each record's
ring-buffer contents and get them back from :func:`load_records`.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.core.metrics import RunMetrics, Trace
from repro.errors import RecordStoreError
from repro.experiments.runner import GridRecord
from repro.simd.machine import TimeLedger
from repro.util.atomic import atomic_write_text

__all__ = [
    "SCHEMA_VERSION",
    "record_to_dict",
    "record_from_dict",
    "save_records",
    "load_records",
    "to_triples",
]

#: Written by :func:`save_records`.  v2 added ``t_recovery``,
#: ``n_recovery`` and optional per-record traces.  Public because the
#: write-ahead cell journal folds it into its content-addressed
#: ``code_version`` (a record-schema bump must invalidate cached cells).
SCHEMA_VERSION = 2
_SCHEMA_VERSION = SCHEMA_VERSION  # historical alias

#: Accepted by :func:`load_records` (v1 files predate the recovery
#: ledger line and never carry traces).
_SUPPORTED_VERSIONS = frozenset({1, 2})


def _trace_to_dict(trace: Trace) -> dict:
    return {
        "maxlen": trace.maxlen,
        "busy_per_cycle": trace.busy_per_cycle,
        "expanding_per_cycle": trace.expanding_per_cycle,
        "trigger_r1": trace.trigger_r1,
        "trigger_r2": trace.trigger_r2,
        "lb_cycle_indices": trace.lb_cycle_indices,
        "n_cycles_recorded": trace.n_cycles_recorded,
        "n_lb_recorded": trace.n_lb_recorded,
    }


def _trace_from_dict(data: dict) -> Trace:
    trace = Trace(maxlen=data["maxlen"])
    for busy, expanding, r1, r2 in zip(
        data["busy_per_cycle"],
        data["expanding_per_cycle"],
        data["trigger_r1"],
        data["trigger_r2"],
    ):
        trace.record_cycle(busy, expanding, r1, r2)
    for index in data["lb_cycle_indices"]:
        trace.record_lb(index)
    # Rebuild the dropped-count bookkeeping: the file holds only the
    # retained window, but the recorded totals survive verbatim.
    trace.n_cycles_recorded = data["n_cycles_recorded"]
    trace.n_lb_recorded = data["n_lb_recorded"]
    return trace


def record_to_dict(record: GridRecord, *, traces: bool = False) -> dict:
    """One record as its stable JSON-schema dict (shared with the journal).

    The dict round-trips **bit-identically** through
    :func:`record_from_dict`: ints are exact and floats serialize via
    ``repr`` (shortest round-trip), so a reloaded ledger equals the
    original float-for-float — the property the journal's
    resume-identity guarantee rests on.
    """
    m = record.metrics
    out = {
        "scheme": record.scheme,
        "n_pes": record.n_pes,
        "total_work": record.total_work,
        "n_expand": m.n_expand,
        "n_lb": m.n_lb,
        "n_transfers": m.n_transfers,
        "n_init_lb": m.n_init_lb,
        "n_recovery": m.n_recovery,
        "ledger": {
            "t_calc": m.ledger.t_calc,
            "t_idle": m.ledger.t_idle,
            "t_lb": m.ledger.t_lb,
            "t_recovery": m.ledger.t_recovery,
            "elapsed": m.ledger.elapsed,
        },
    }
    if traces and m.trace is not None:
        out["trace"] = _trace_to_dict(m.trace)
    return out


def record_from_dict(data: dict) -> GridRecord:
    """Rebuild a :class:`GridRecord` written by :func:`record_to_dict`."""
    ledger_data = dict(data["ledger"])
    ledger_data.setdefault("t_recovery", 0.0)  # absent in v1 files
    ledger = TimeLedger(**ledger_data)
    trace_data = data.get("trace")
    metrics = RunMetrics(
        scheme=data["scheme"],
        n_pes=data["n_pes"],
        total_work=data["total_work"],
        n_expand=data["n_expand"],
        n_lb=data["n_lb"],
        n_transfers=data["n_transfers"],
        n_init_lb=data["n_init_lb"],
        ledger=ledger,
        trace=_trace_from_dict(trace_data) if trace_data is not None else None,
        n_recovery=data.get("n_recovery", 0),
    )
    return GridRecord(
        scheme=data["scheme"],
        n_pes=data["n_pes"],
        total_work=data["total_work"],
        metrics=metrics,
    )


def save_records(
    records: Iterable[GridRecord],
    path: str | Path,
    *,
    traces: bool = False,
) -> Path:
    """Write records to ``path`` as versioned JSON, atomically.

    Traces are dropped unless ``traces=True`` (each record then carries
    its ring-buffer window; evicted cycles stay evicted).  The payload
    is staged in a *unique* fsynced temp file and moved into place with
    ``os.replace`` (parent directory fsynced after), so an interrupted
    save never clobbers ``path``, a crash never loses the replace, and
    concurrent savers to the same path are safe — see
    :func:`repro.util.atomic.atomic_write_bytes`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "records": [record_to_dict(r, traces=traces) for r in records],
    }
    return atomic_write_text(path, json.dumps(payload, indent=1))


def load_records(path: str | Path) -> list[GridRecord]:
    """Read records written by :func:`save_records`.

    Raises
    ------
    RecordStoreError
        When the file is unreadable, not valid JSON, structurally not a
        record payload, or carries an unsupported schema version.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise RecordStoreError(f"cannot read record file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise RecordStoreError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "records" not in payload:
        raise RecordStoreError(f"{path} is not a record payload")
    version = payload.get("schema_version")
    if version not in _SUPPORTED_VERSIONS:
        supported = sorted(_SUPPORTED_VERSIONS)
        raise RecordStoreError(
            f"unsupported record schema version {version!r} "
            f"(expected one of {supported})"
        )
    try:
        return [record_from_dict(d) for d in payload["records"]]
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        # The broad catch is deliberate: a structurally valid payload can
        # still hold malformed *values* (a ledger serialized as a string
        # raises ValueError from dict(); a trace with maxlen 0 raises
        # ValueError from Trace), and those must surface as the same
        # typed RecordStoreError as any other corruption.
        raise RecordStoreError(f"{path} has malformed records: {exc}") from exc


def to_triples(records: Iterable[GridRecord]) -> list[tuple[int, float, float]]:
    """``(P, W, E)`` triples — the input of
    :func:`repro.analysis.isoefficiency.isoefficiency_points`."""
    return [(r.n_pes, float(r.total_work), r.efficiency) for r in records]
