"""The ``python -m repro bench`` harness — tracks the perf trajectory.

Times the hot kernels and a small Figure-4-style grid, then writes
``BENCH_kernels.json`` so every PR can compare against the last recorded
numbers:

- **expand_cycle kernel** — node-expansion throughput of the stack-model
  backends at machine width, measured in a warmed (work-spread) state:
  the list backend with its per-node sampler (the historical
  implementation), the list backend with the batched sampler (isolates
  the RNG-batching win), and the flat arena (adds the vectorized
  storage win).
- **full run** — one complete scheduler run per backend, plus a
  bit-identity check between the list (batched) and arena runs.
- **grid** — a small static-trigger isoefficiency grid (Figure 4's
  shape) executed serially and with ``run_grid(n_jobs=...)``, plus a
  record-identity check between the two.

All wall-clock numbers are host measurements, so the JSON embeds the
host fingerprint (platform, Python, numpy, CPU count); a grid speedup
only means something relative to ``cpu_count``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.scheduler import Scheduler
from repro.experiments.runner import run_grid
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine
from repro.workmodel.stackmodel import StackWorkload

__all__ = [
    "BENCH_PATH",
    "bench_expand_kernel",
    "bench_full_run",
    "bench_grid",
    "run_bench",
    "render_bench",
]

BENCH_PATH = "BENCH_kernels.json"

#: (backend, sampler) variants timed by the kernel/full-run benches.
_VARIANTS = (
    ("list-pernode", "list", "pernode"),
    ("list-batched", "list", "batched"),
    ("arena", "arena", "batched"),
)


def _host_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _warmed_workload(
    backend: str, sampler: str, *, work: int, n_pes: int, seed: int, warm_cycles: int
) -> StackWorkload:
    """A stack workload after ``warm_cycles`` scheduled cycles of spread.

    The warmup is deterministic and identical across variants (same seed,
    same scheme), so every backend is timed from the same tree state.
    """
    workload = StackWorkload(work, n_pes, rng=seed, backend=backend, sampler=sampler)
    machine = SimdMachine(n_pes, CostModel())
    Scheduler(workload, machine, "GP-S0.75", max_cycles=warm_cycles).run()
    return workload


def bench_expand_kernel(
    *,
    n_pes: int = 4096,
    work_per_pe: int = 400,
    warm_cycles: int = 64,
    time_cycles: int = 60,
    seed: int = 0,
) -> dict:
    """Throughput of ``expand_cycle`` per backend variant at width ``n_pes``."""
    work = n_pes * work_per_pe
    backends: dict[str, dict] = {}
    for name, backend, sampler in _VARIANTS:
        workload = _warmed_workload(
            backend, sampler, work=work, n_pes=n_pes, seed=seed, warm_cycles=warm_cycles
        )
        expanded_before = workload.total_expanded()
        cycles = 0
        t0 = time.perf_counter()
        while cycles < time_cycles and not workload.done():
            workload.expand_cycle()
            cycles += 1
        dt = time.perf_counter() - t0
        backends[name] = {
            "cycles": cycles,
            "nodes_per_s": (workload.total_expanded() - expanded_before) / dt,
            "ms_per_cycle": dt / max(cycles, 1) * 1e3,
        }
    return {
        "n_pes": n_pes,
        "total_work": work,
        "warm_cycles": warm_cycles,
        "time_cycles": time_cycles,
        "backends": backends,
        "speedup_arena_vs_list": (
            backends["arena"]["nodes_per_s"] / backends["list-pernode"]["nodes_per_s"]
        ),
        "speedup_arena_vs_list_batched": (
            backends["arena"]["nodes_per_s"] / backends["list-batched"]["nodes_per_s"]
        ),
    }


def bench_full_run(
    *,
    n_pes: int = 4096,
    work_per_pe: int = 100,
    seed: int = 0,
    scheme: str = "GP-S0.75",
) -> dict:
    """Wall-clock of one complete scheduled stack-model run per variant."""
    work = n_pes * work_per_pe
    seconds: dict[str, float] = {}
    metrics: dict[str, object] = {}
    for name, backend, sampler in _VARIANTS:
        workload = StackWorkload(
            work, n_pes, rng=seed, backend=backend, sampler=sampler
        )
        machine = SimdMachine(n_pes, CostModel())
        t0 = time.perf_counter()
        metrics[name] = Scheduler(workload, machine, scheme).run()
        seconds[name] = time.perf_counter() - t0
    return {
        "n_pes": n_pes,
        "total_work": work,
        "scheme": scheme,
        "seconds": seconds,
        "speedup_arena_vs_list": seconds["list-pernode"] / seconds["arena"],
        # Same batched RNG stream => the runs must be indistinguishable.
        "metrics_identical": metrics["list-batched"] == metrics["arena"],
    }


def bench_grid(
    *,
    n_jobs: int = 4,
    schemes: tuple[str, ...] = ("GP-S0.90", "nGP-S0.80"),
    works: tuple[int, ...] = (58_866, 190_948, 379_601),
    pes: tuple[int, ...] = (512,),
    seed: int = 0,
) -> dict:
    """A small Figure-4-style grid, serial vs process-parallel.

    The defaults take SMALL_SCALE's machine width and its smaller Table 2
    work sizes.  A >= ``n_jobs``-way speedup needs that many free cores;
    the host block records ``cpu_count`` for exactly that reason.
    """
    t0 = time.perf_counter()
    serial = run_grid(list(schemes), list(works), list(pes), base_seed=seed)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_grid(
        list(schemes), list(works), list(pes), base_seed=seed, n_jobs=n_jobs
    )
    parallel_s = time.perf_counter() - t0
    return {
        "schemes": list(schemes),
        "works": list(works),
        "pes": list(pes),
        "cells": len(serial),
        "n_jobs": n_jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "records_identical": serial == parallel,
    }


def run_bench(
    *,
    smoke: bool = False,
    n_pes: int | None = None,
    n_jobs: int = 4,
    seed: int = 0,
    out: str | Path = BENCH_PATH,
) -> dict:
    """Run every bench and persist the JSON report to ``out``.

    ``smoke`` shrinks each bench to a few seconds total (CI uses it per
    commit); full mode is the number that the acceptance thresholds and
    the perf trajectory track.
    """
    if n_pes is None:
        n_pes = 256 if smoke else 4096
    kernel_kwargs = (
        {"work_per_pe": 80, "warm_cycles": 32, "time_cycles": 20}
        if smoke
        else {}
    )
    grid_kwargs = (
        {"works": (2_000, 4_000), "pes": (32,), "n_jobs": min(n_jobs, 2)}
        if smoke
        else {"n_jobs": n_jobs}
    )
    report = {
        "schema": 1,
        "generated_unix": time.time(),
        "smoke": smoke,
        "seed": seed,
        "host": _host_info(),
        "kernels": {
            "expand_cycle": bench_expand_kernel(n_pes=n_pes, seed=seed, **kernel_kwargs),
            "full_run": bench_full_run(
                n_pes=n_pes, seed=seed, work_per_pe=20 if smoke else 100
            ),
        },
        "grid": bench_grid(seed=seed, **grid_kwargs),
    }
    path = Path(out)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def render_bench(report: dict) -> str:
    """A terse human summary of one bench report."""
    kernel = report["kernels"]["expand_cycle"]
    full = report["kernels"]["full_run"]
    grid = report["grid"]
    lines = [
        f"expand_cycle kernel @ P={kernel['n_pes']}:",
    ]
    for name, row in kernel["backends"].items():
        lines.append(
            f"  {name:13s} {row['nodes_per_s']:>12,.0f} nodes/s"
            f"  ({row['ms_per_cycle']:.3f} ms/cycle)"
        )
    lines += [
        f"  arena speedup vs list: {kernel['speedup_arena_vs_list']:.1f}x"
        f" (vs list-batched: {kernel['speedup_arena_vs_list_batched']:.1f}x)",
        f"full run @ P={full['n_pes']}, W={full['total_work']}: "
        f"arena {full['seconds']['arena']:.2f}s, "
        f"list {full['seconds']['list-pernode']:.2f}s "
        f"({full['speedup_arena_vs_list']:.1f}x); "
        f"bit-identical: {full['metrics_identical']}",
        f"grid {grid['cells']} cells, n_jobs={grid['n_jobs']}: "
        f"serial {grid['serial_s']:.2f}s, parallel {grid['parallel_s']:.2f}s "
        f"({grid['speedup']:.2f}x on {report['host']['cpu_count']} CPUs); "
        f"record-identical: {grid['records_identical']}",
    ]
    return "\n".join(lines)
