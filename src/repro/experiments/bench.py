"""The ``python -m repro bench`` harness — tracks the perf trajectory.

Times the hot kernels and a small Figure-4-style grid, then writes
``BENCH_kernels.json`` so every PR can compare against the last recorded
numbers:

- **expand_cycle kernel** — node-expansion throughput of the stack-model
  backends at machine width, measured in a warmed (work-spread) state:
  the list backend with its per-node sampler (the historical
  implementation), the list backend with the batched sampler (isolates
  the RNG-batching win), and the flat arena (adds the vectorized
  storage win).
- **full run** — one complete scheduler run per backend, plus a
  bit-identity check between the list (batched) and arena runs.
- **kernel tiers** — the same warmed ``expand_cycle`` measured across
  the :mod:`repro.kernels` dispatch tiers on the arena backend
  (``numpy`` reference vs ``fused`` zero-allocation vs ``jit`` when
  numba is importable), with an end-state identity check across tiers
  and the ``jit_note`` explaining the fallback on numba-less hosts.
- **grid** — a small static-trigger isoefficiency grid (Figure 4's
  shape) executed serially and with ``run_grid(n_jobs=...)``, plus a
  record-identity check between the two.

The *search* section (written separately as ``BENCH_search.json``)
covers the real 15-puzzle workload the same way:

- **search expansion kernel** — ``SearchWorkload.expand_cycle``
  throughput per backend (plain list, flat arena) from identically
  warmed stack states, with backend bit-identity (per-PE counts,
  expansions, next bound) asserted on the timed states in the same run.
  (The ``list-memo`` variant was retired: it benched *slower* than the
  plain list — see :mod:`repro.search.memo`.)
- **full parallel IDA*** — a complete run on a fixed bench instance per
  backend, asserting expansion-count/bound/solution identity across
  backends and against serial IDA*.

``python -m repro bench --compare OLD.json NEW.json`` diffs two saved
reports metric by metric (:func:`compare_bench`), prints per-section
speedup deltas, and exits nonzero when any metric regressed past
``--tolerance`` — the perf ratchet next to lint's baseline ratchet.

All wall-clock numbers are host measurements, so the JSON embeds the
host fingerprint (platform, Python, numpy, CPU count); a grid speedup
only means something relative to ``cpu_count``.

Every timed section runs **best-of-N** (default ``repeats=3``) after an
untimed warmup pass: a single ``perf_counter`` sample is at the mercy
of allocator warmup, frequency scaling and CI noisy neighbours, and the
minimum over repeats is the standard robust estimator of a kernel's
achievable time.  Each repeat rebuilds its state from the same seed, so
all repeats time identical work.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.scheduler import Scheduler
from repro.experiments.runner import run_grid
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine
from repro.workmodel.stackmodel import StackWorkload

__all__ = [
    "BENCH_PATH",
    "BENCH_SEARCH_PATH",
    "DEFAULT_REPEATS",
    "bench_expand_kernel",
    "bench_full_run",
    "bench_kernel_tiers",
    "bench_grid",
    "bench_search_kernel",
    "bench_search_full",
    "run_bench",
    "run_search_bench",
    "render_bench",
    "render_search_bench",
    "compare_bench",
    "render_compare",
]

BENCH_PATH = "BENCH_kernels.json"
BENCH_SEARCH_PATH = "BENCH_search.json"

#: Timed repeats per section (best-of-N); one extra untimed warmup pass
#: always precedes them.
DEFAULT_REPEATS = 3


def _check_repeats(repeats: int) -> None:
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

#: (backend, sampler) variants timed by the kernel/full-run benches.
_VARIANTS = (
    ("list-pernode", "list", "pernode"),
    ("list-batched", "list", "batched"),
    ("arena", "arena", "batched"),
)


def _host_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _warmed_workload(
    backend: str,
    sampler: str,
    *,
    work: int,
    n_pes: int,
    seed: int,
    warm_cycles: int,
    kernel_backend: str = "numpy",
) -> StackWorkload:
    """A stack workload after ``warm_cycles`` scheduled cycles of spread.

    The warmup is deterministic and identical across variants (same seed,
    same scheme), so every backend is timed from the same tree state.
    """
    workload = StackWorkload(
        work,
        n_pes,
        rng=seed,
        backend=backend,
        sampler=sampler,
        kernel_backend=kernel_backend,
    )
    machine = SimdMachine(n_pes, CostModel())
    Scheduler(workload, machine, "GP-S0.75", max_cycles=warm_cycles).run()
    return workload


def bench_expand_kernel(
    *,
    n_pes: int = 4096,
    work_per_pe: int = 400,
    warm_cycles: int = 64,
    time_cycles: int = 60,
    seed: int = 0,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Throughput of ``expand_cycle`` per backend variant at width ``n_pes``.

    Best-of-``repeats``: each repeat rebuilds the identically warmed
    workload from the same seed and re-times the same cycles; repeat 0
    is an untimed warmup pass.
    """
    _check_repeats(repeats)
    work = n_pes * work_per_pe
    backends: dict[str, dict] = {}
    for name, backend, sampler in _VARIANTS:
        best: dict | None = None
        for rep in range(repeats + 1):
            workload = _warmed_workload(
                backend,
                sampler,
                work=work,
                n_pes=n_pes,
                seed=seed,
                warm_cycles=warm_cycles,
            )
            expanded_before = workload.total_expanded()
            cycles = 0
            t0 = time.perf_counter()
            while cycles < time_cycles and not workload.done():
                workload.expand_cycle()
                cycles += 1
            dt = time.perf_counter() - t0
            row = {
                "cycles": cycles,
                "nodes_per_s": (workload.total_expanded() - expanded_before) / dt,
                "ms_per_cycle": dt / max(cycles, 1) * 1e3,
            }
            if rep and (best is None or row["ms_per_cycle"] < best["ms_per_cycle"]):
                best = row
        assert best is not None
        backends[name] = best
    return {
        "n_pes": n_pes,
        "total_work": work,
        "warm_cycles": warm_cycles,
        "time_cycles": time_cycles,
        "repeats": repeats,
        "backends": backends,
        "speedup_arena_vs_list": (
            backends["arena"]["nodes_per_s"] / backends["list-pernode"]["nodes_per_s"]
        ),
        "speedup_arena_vs_list_batched": (
            backends["arena"]["nodes_per_s"] / backends["list-batched"]["nodes_per_s"]
        ),
    }


def bench_full_run(
    *,
    n_pes: int = 4096,
    work_per_pe: int = 100,
    seed: int = 0,
    scheme: str = "GP-S0.75",
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Wall-clock of one complete scheduled stack-model run per variant.

    Best-of-``repeats`` full runs (identical by construction — same
    seed, same scheme); repeat 0 is an untimed warmup pass.
    """
    _check_repeats(repeats)
    work = n_pes * work_per_pe
    seconds: dict[str, float] = {}
    metrics: dict[str, object] = {}
    for name, backend, sampler in _VARIANTS:
        best: float | None = None
        for rep in range(repeats + 1):
            workload = StackWorkload(
                work, n_pes, rng=seed, backend=backend, sampler=sampler
            )
            machine = SimdMachine(n_pes, CostModel())
            t0 = time.perf_counter()
            metrics[name] = Scheduler(workload, machine, scheme).run()
            dt = time.perf_counter() - t0
            if rep and (best is None or dt < best):
                best = dt
        assert best is not None
        seconds[name] = best
    return {
        "n_pes": n_pes,
        "total_work": work,
        "scheme": scheme,
        "repeats": repeats,
        "seconds": seconds,
        "speedup_arena_vs_list": seconds["list-pernode"] / seconds["arena"],
        # Same batched RNG stream => the runs must be indistinguishable.
        "metrics_identical": metrics["list-batched"] == metrics["arena"],
    }


def bench_kernel_tiers(
    *,
    n_pes: int = 4096,
    work_per_pe: int = 400,
    warm_cycles: int = 64,
    time_cycles: int = 60,
    seed: int = 0,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Arena ``expand_cycle`` throughput per :mod:`repro.kernels` tier.

    Times the identically warmed arena workload under each dispatchable
    tier — ``numpy`` (the reference), ``fused`` (the zero-allocation
    workspace path) and ``jit`` when numba is importable — and asserts
    the end states (expansion count, per-PE stack windows, RNG position)
    are bit-identical across tiers: the speedup only means something if
    every tier did exactly the same work.  Best-of-``repeats`` per tier
    (repeat 0 untimed warmup).
    """
    from repro.kernels.dispatch import HAVE_NUMBA, available_backends, jit_note

    _check_repeats(repeats)
    work = n_pes * work_per_pe
    tiers: dict[str, dict] = {}
    end_states: dict[str, tuple] = {}
    for tier in available_backends():
        best: dict | None = None
        for rep in range(repeats + 1):
            workload = _warmed_workload(
                "arena",
                "batched",
                work=work,
                n_pes=n_pes,
                seed=seed,
                warm_cycles=warm_cycles,
                kernel_backend=tier,
            )
            expanded_before = workload.total_expanded()
            cycles = 0
            t0 = time.perf_counter()
            while cycles < time_cycles and not workload.done():
                workload.expand_cycle()
                cycles += 1
            dt = time.perf_counter() - t0
            row = {
                "cycles": cycles,
                "nodes_per_s": (workload.total_expanded() - expanded_before) / dt,
                "ms_per_cycle": dt / max(cycles, 1) * 1e3,
            }
            if rep and (best is None or row["ms_per_cycle"] < best["ms_per_cycle"]):
                best = row
            end_states[tier] = (
                workload.total_expanded(),
                workload.stacks,
                workload.rng.bit_generator.state,
            )
        assert best is not None
        tiers[tier] = best
    reference = end_states["numpy"]
    records_identical = all(state == reference for state in end_states.values())
    if not records_identical:
        raise RuntimeError(
            "kernel tiers diverged during the tier bench; the timing "
            "numbers would compare different trees"
        )
    return {
        "n_pes": n_pes,
        "total_work": work,
        "warm_cycles": warm_cycles,
        "time_cycles": time_cycles,
        "repeats": repeats,
        "jit_available": HAVE_NUMBA,
        "jit_note": jit_note(),
        "tiers": tiers,
        "speedup_fused_vs_numpy": (
            tiers["fused"]["nodes_per_s"] / tiers["numpy"]["nodes_per_s"]
        ),
        "records_identical": records_identical,
    }


def bench_grid(
    *,
    n_jobs: int = 4,
    schemes: tuple[str, ...] = ("GP-S0.90", "nGP-S0.80"),
    works: tuple[int, ...] = (58_866, 190_948, 379_601),
    pes: tuple[int, ...] = (512,),
    seed: int = 0,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """A small Figure-4-style grid: serial vs batched vs process-parallel.

    The defaults take SMALL_SCALE's machine width and its smaller Table 2
    work sizes.  The headline ``speedup`` is the in-process mega-arena
    executor against the per-cell serial oracle — it does not need free
    cores, so it must beat 1.0 even on a 1-core CI host.
    ``speedup_process`` is the per-cell pool, which *does* need
    ``n_jobs`` free cores (the host block records ``cpu_count`` for
    exactly that reason).  All paths report best-of-``repeats`` (repeat
    0 untimed warmup); the grids themselves are deterministic, so every
    repeat computes the same records.
    """
    _check_repeats(repeats)
    grid_args = (list(schemes), list(works), list(pes))
    timings: dict[str, float | None] = {
        "serial": None, "batched": None, "process": None,
    }
    records: dict[str, list] = {}

    def time_one(name: str, rep: int, **kwargs) -> None:
        t0 = time.perf_counter()
        records[name] = run_grid(*grid_args, base_seed=seed, **kwargs)
        dt = time.perf_counter() - t0
        best = timings[name]
        if rep and (best is None or dt < best):
            timings[name] = dt

    for rep in range(repeats + 1):
        time_one("serial", rep, executor="serial")
        time_one("batched", rep, executor="batched")
        time_one("process", rep, executor="process", n_jobs=n_jobs)
    serial_s, batched_s, process_s = (
        timings["serial"], timings["batched"], timings["process"],
    )
    assert serial_s is not None and batched_s is not None
    assert process_s is not None
    return {
        "schemes": list(schemes),
        "works": list(works),
        "pes": list(pes),
        "cells": len(records["serial"]),
        "n_jobs": n_jobs,
        "repeats": repeats,
        "serial_s": serial_s,
        "batched_s": batched_s,
        "process_s": process_s,
        "speedup": serial_s / batched_s,
        "speedup_process": serial_s / process_s,
        "records_identical": (
            records["serial"] == records["batched"] == records["process"]
        ),
    }


# -- real-search benches (the BENCH_search.json section) -------------------

#: (name, backend, kernel_backend) variants timed by the search kernel
#: bench.  The old ``list-memo`` variant was retired after it benched
#: *slower* than the plain list backend (whole-state hashing beat
#: recomputing h) — the regression now lives on as lint rule R102's memo
#: check.  ``arena-fused`` runs the same arena through the
#: :mod:`repro.kernels` fused tier (workspace scratch, no per-cycle
#: allocation).
_SEARCH_VARIANTS = (
    ("list", "list", "numpy"),
    ("arena", "arena", "numpy"),
    ("arena-fused", "arena", "fused"),
)


def _warmed_search_workload(
    problem,
    bound: int,
    backend: str,
    *,
    n_pes: int,
    warm_cycles: int,
    kernel_backend: str = "numpy",
):
    """A ``SearchWorkload`` after ``warm_cycles`` scheduled spread cycles.

    The warmup is deterministic and identical across variants (same
    instance, bound and scheme), so every backend is timed from the same
    — vector-identical — stack state.
    """
    from repro.search.parallel import SearchWorkload

    workload = SearchWorkload(
        problem, bound, n_pes, backend=backend, kernel_backend=kernel_backend
    )
    machine = SimdMachine(n_pes, CostModel())
    Scheduler(
        workload, machine, "GP-S0.75", init_threshold=0.9, max_cycles=warm_cycles
    ).run()
    return workload


def bench_search_kernel(
    *,
    n_pes: int = 1024,
    scramble: int = 44,
    instance_seed: int = 505,
    bound_slack: int = 20,
    warm_cycles: int = 96,
    time_cycles: int = 48,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Throughput of the real-search ``expand_cycle`` per backend.

    One fixed 15-puzzle instance, one generous cost bound (root ``h``
    plus ``bound_slack``, wide enough that the tree outlives the timing
    window), warmed through the scheduler so the cycle touches ~all PEs.
    Best-of-``repeats`` (repeat 0 untimed warmup); each repeat rebuilds
    the identical warmed state.  After timing, the end states of all
    variants are asserted identical — the timed work was the same work.
    """
    from repro.problems.fifteen_puzzle import scrambled_fifteen_puzzle

    _check_repeats(repeats)
    problem = scrambled_fifteen_puzzle(scramble, rng=instance_seed)
    bound = problem.heuristic(problem.initial_state()) + bound_slack
    backends: dict[str, dict] = {}
    end_states: dict[str, tuple] = {}
    for name, backend, kernel_backend in _SEARCH_VARIANTS:
        best: dict | None = None
        for rep in range(repeats + 1):
            workload = _warmed_search_workload(
                problem,
                bound,
                backend,
                n_pes=n_pes,
                warm_cycles=warm_cycles,
                kernel_backend=kernel_backend,
            )
            expanded_before = workload.total_expanded()
            cycles = 0
            t0 = time.perf_counter()
            while cycles < time_cycles and not workload.done():
                workload.expand_cycle()
                cycles += 1
            dt = time.perf_counter() - t0
            nodes = workload.total_expanded() - expanded_before
            row = {
                "cycles": cycles,
                "nodes": nodes,
                "nodes_per_s": nodes / dt,
                "ms_per_cycle": dt / max(cycles, 1) * 1e3,
            }
            if rep and (best is None or row["ms_per_cycle"] < best["ms_per_cycle"]):
                best = row
            end_states[name] = (
                workload.total_expanded(),
                workload.next_bound,
                workload._counts().tolist(),
            )
        assert best is not None
        backends[name] = best
    reference = end_states["list"]
    identical = all(state == reference for state in end_states.values())
    if not identical:
        raise RuntimeError(
            "search backends diverged during the kernel bench; the timing "
            "numbers would compare different trees"
        )
    return {
        "n_pes": n_pes,
        "scramble": scramble,
        "bound": bound,
        "warm_cycles": warm_cycles,
        "time_cycles": time_cycles,
        "repeats": repeats,
        "backends": backends,
        "backends_identical": identical,
        "speedup_arena_vs_list": (
            backends["arena"]["nodes_per_s"] / backends["list"]["nodes_per_s"]
        ),
        "speedup_fused_vs_arena": (
            backends["arena-fused"]["nodes_per_s"]
            / backends["arena"]["nodes_per_s"]
        ),
    }


def _profile_expand_spans(problem, n_pes: int) -> dict:
    """Span-profile one full IDA* run per backend (expand spans only).

    Explains the small-instance ``speedup_arena_vs_list`` floor: per
    lock-step cycle the arena kernel issues a fixed ~25 numpy dispatches
    regardless of how few PEs are busy, so when the frontier is tiny
    (few nodes per cycle) the list oracle's per-node Python cost
    undercuts the arena's per-cycle dispatch cost.  The recorded
    ``us_per_cycle`` pair quantifies that floor on this host; the dense
    ``expansion_kernel`` section shows the same kernel winning ~12x once
    every PE is busy.
    """
    from repro.obs.profile import Profiler, activate, deactivate
    from repro.search.parallel import ParallelIDAStar

    spans: dict[str, dict] = {}
    for name, backend, kernel_backend in _SEARCH_VARIANTS:
        def run():
            return ParallelIDAStar(
                problem,
                n_pes,
                "GP-S0.75",
                backend=backend,
                kernel_backend=kernel_backend,
            ).run()

        run()
        profiler = Profiler()
        activate(profiler)
        try:
            run()
        finally:
            deactivate()
        agg = profiler.totals()[f"expand.search.{backend}"]
        spans[name] = {
            "cycles": agg["count"],
            "seconds": agg["seconds"],
            "us_per_cycle": 1e6 * agg["seconds"] / agg["count"],
        }
    spans["note"] = (
        "arena expand pays a fixed numpy-dispatch cost per cycle; on "
        "sparse frontiers (few busy PEs) the per-node list oracle is at "
        "or below that floor.  The fused tier narrows it with a "
        "per-row loop when <= 3 PEs are busy (and scratch reuse above "
        "that); the dense expansion_kernel section shows the full "
        "crossover"
    )
    return spans


def bench_search_full(
    *,
    instance: str = "small",
    n_pes: int = 256,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Wall-clock of one complete parallel IDA* run per backend.

    Runs the fixed bench instance to optimality on both backends
    (best-of-``repeats``, repeat 0 untimed warmup), asserts (in-run)
    that expansions, bounds and solutions are identical across backends
    *and* match serial IDA* node for node, and reports the list
    backend's heuristic-memo hit rate.
    """
    from repro.problems.fifteen_puzzle import BENCH_INSTANCES
    from repro.search.ida_star import ida_star
    from repro.search.parallel import ParallelIDAStar

    _check_repeats(repeats)
    problem = BENCH_INSTANCES[instance]
    seconds: dict[str, float] = {}
    results: dict[str, object] = {}
    for backend in ("list", "arena"):
        best: float | None = None
        for rep in range(repeats + 1):
            t0 = time.perf_counter()
            results[backend] = ParallelIDAStar(
                problem, n_pes, "GP-S0.75", backend=backend
            ).run()
            dt = time.perf_counter() - t0
            if rep and (best is None or dt < best):
                best = dt
        assert best is not None
        seconds[backend] = best
    list_result, arena_result = results["list"], results["arena"]
    serial = ida_star(problem)
    identical = (
        list_result.total_expanded == arena_result.total_expanded
        and list_result.bounds == arena_result.bounds
        and list_result.solution_cost == arena_result.solution_cost
        and list_result.solutions == arena_result.solutions
        and list_result.per_iteration_expanded == arena_result.per_iteration_expanded
    )
    serial_parity = (
        list_result.total_expanded == serial.total_expanded
        and list_result.solution_cost == serial.solution_cost
    )
    if not (identical and serial_parity):
        raise RuntimeError(
            f"parallel IDA* diverged on {instance!r}: backends identical="
            f"{identical}, serial parity={serial_parity}"
        )
    return {
        "expand_span_profile": _profile_expand_spans(problem, n_pes),
        "instance": instance,
        "n_pes": n_pes,
        "repeats": repeats,
        "total_expanded": list_result.total_expanded,
        "solution_cost": list_result.solution_cost,
        "bounds": list(list_result.bounds),
        "seconds": seconds,
        "speedup_arena_vs_list": seconds["list"] / seconds["arena"],
        "backends_identical": identical,
        "serial_parity": serial_parity,
    }


def run_search_bench(
    *,
    smoke: bool = False,
    n_pes: int | None = None,
    repeats: int = DEFAULT_REPEATS,
    out: str | Path = BENCH_SEARCH_PATH,
) -> dict:
    """Run the real-search benches and persist ``BENCH_search.json``."""
    if n_pes is None:
        n_pes = 256 if smoke else 1024
    kernel_kwargs = (
        {"bound_slack": 14, "warm_cycles": 48, "time_cycles": 16}
        if smoke
        else {}
    )
    full_kwargs = {"instance": "tiny", "n_pes": 64} if smoke else {}
    report = {
        "schema": 1,
        "generated_unix": time.time(),
        "smoke": smoke,
        "host": _host_info(),
        "search": {
            "expansion_kernel": bench_search_kernel(
                n_pes=n_pes, repeats=repeats, **kernel_kwargs
            ),
            "full_ida": bench_search_full(repeats=repeats, **full_kwargs),
        },
    }
    path = Path(out)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def run_bench(
    *,
    smoke: bool = False,
    n_pes: int | None = None,
    n_jobs: int = 4,
    seed: int = 0,
    repeats: int = DEFAULT_REPEATS,
    out: str | Path = BENCH_PATH,
    search_out: str | Path | None = BENCH_SEARCH_PATH,
) -> dict:
    """Run every bench; persist ``out`` (kernels) and ``search_out``.

    ``smoke`` shrinks each bench to a few seconds total (CI uses it per
    commit); full mode is the number that the acceptance thresholds and
    the perf trajectory track.  ``search_out=None`` skips the search
    section.
    """
    if n_pes is None:
        n_pes = 256 if smoke else 4096
    kernel_kwargs = (
        {"work_per_pe": 80, "warm_cycles": 32, "time_cycles": 20}
        if smoke
        else {}
    )
    grid_kwargs = (
        {"works": (2_000, 4_000), "pes": (32,), "n_jobs": min(n_jobs, 2)}
        if smoke
        else {"n_jobs": n_jobs}
    )
    report = {
        "schema": 1,
        "generated_unix": time.time(),
        "smoke": smoke,
        "seed": seed,
        "host": _host_info(),
        "kernels": {
            "expand_cycle": bench_expand_kernel(
                n_pes=n_pes, seed=seed, repeats=repeats, **kernel_kwargs
            ),
            "full_run": bench_full_run(
                n_pes=n_pes,
                seed=seed,
                work_per_pe=20 if smoke else 100,
                repeats=repeats,
            ),
            "fused": bench_kernel_tiers(
                n_pes=n_pes, seed=seed, repeats=repeats, **kernel_kwargs
            ),
        },
        "grid": bench_grid(seed=seed, repeats=repeats, **grid_kwargs),
    }
    path = Path(out)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if search_out is not None:
        report["search_report"] = run_search_bench(
            smoke=smoke, repeats=repeats, out=search_out
        )
    return report


def render_bench(report: dict) -> str:
    """A terse human summary of one bench report."""
    kernel = report["kernels"]["expand_cycle"]
    full = report["kernels"]["full_run"]
    fused = report["kernels"]["fused"]
    grid = report["grid"]
    lines = [
        f"expand_cycle kernel @ P={kernel['n_pes']}:",
    ]
    for name, row in kernel["backends"].items():
        lines.append(
            f"  {name:13s} {row['nodes_per_s']:>12,.0f} nodes/s"
            f"  ({row['ms_per_cycle']:.3f} ms/cycle)"
        )
    lines += [
        f"  arena speedup vs list: {kernel['speedup_arena_vs_list']:.1f}x"
        f" (vs list-batched: {kernel['speedup_arena_vs_list_batched']:.1f}x)",
        f"kernel tiers (arena expand_cycle) @ P={fused['n_pes']}:",
    ]
    for name, row in fused["tiers"].items():
        lines.append(
            f"  {name:13s} {row['nodes_per_s']:>12,.0f} nodes/s"
            f"  ({row['ms_per_cycle']:.3f} ms/cycle)"
        )
    lines.append(
        f"  fused speedup vs numpy: {fused['speedup_fused_vs_numpy']:.2f}x;"
        f" records identical: {fused['records_identical']}"
    )
    if fused["jit_note"]:
        lines.append(f"  note: {fused['jit_note']}")
    lines += [
        f"full run @ P={full['n_pes']}, W={full['total_work']}: "
        f"arena {full['seconds']['arena']:.2f}s, "
        f"list {full['seconds']['list-pernode']:.2f}s "
        f"({full['speedup_arena_vs_list']:.1f}x); "
        f"bit-identical: {full['metrics_identical']}",
        f"grid {grid['cells']} cells, n_jobs={grid['n_jobs']}: "
        f"serial {grid['serial_s']:.2f}s, batched {grid['batched_s']:.2f}s "
        f"({grid['speedup']:.2f}x), process {grid['process_s']:.2f}s "
        f"({grid['speedup_process']:.2f}x on {report['host']['cpu_count']} "
        f"CPUs); record-identical: {grid['records_identical']}",
    ]
    return "\n".join(lines)


def render_search_bench(report: dict) -> str:
    """A terse human summary of one search-bench report."""
    kernel = report["search"]["expansion_kernel"]
    full = report["search"]["full_ida"]
    lines = [
        f"search expand_cycle kernel @ P={kernel['n_pes']}, "
        f"bound={kernel['bound']}:",
    ]
    for name, row in kernel["backends"].items():
        lines.append(
            f"  {name:13s} {row['nodes_per_s']:>12,.0f} nodes/s"
            f"  ({row['ms_per_cycle']:.3f} ms/cycle)"
        )
    lines += [
        f"  arena speedup vs list: {kernel['speedup_arena_vs_list']:.1f}x"
        f" (fused vs arena: {kernel['speedup_fused_vs_arena']:.2f}x);"
        f" backends identical: {kernel['backends_identical']}",
        f"full parallel IDA* ({full['instance']}, P={full['n_pes']}, "
        f"W={full['total_expanded']}): "
        f"arena {full['seconds']['arena']:.2f}s, "
        f"list {full['seconds']['list']:.2f}s "
        f"({full['speedup_arena_vs_list']:.1f}x); "
        f"identical: {full['backends_identical']}, "
        f"serial parity: {full['serial_parity']}",
    ]
    return "\n".join(lines)


# -- report comparison (the ``bench --compare`` ratchet) -------------------

#: Leaf metric keys worth diffing, with the direction that is *better*.
#: ``seconds``-style timings appear as ``{"seconds": {"arena": ...}}`` so
#: the parent key carries the semantics; both spellings are listed.
_COMPARE_DIRECTIONS = {
    "nodes_per_s": "higher",
    "ms_per_cycle": "lower",
    "serial_s": "lower",
    "parallel_s": "lower",
    "batched_s": "lower",
    "process_s": "lower",
    "seconds": "lower",
}

#: Report bookkeeping that must never be compared, even if a nested key
#: happens to collide with a metric name (e.g. a future ``host.seconds``):
#: wall-clock stamps and machine descriptions vary across hosts/runs and
#: would make committed BENCH_*.json diffs noisy.
_NON_METRIC_KEYS = frozenset({"generated_unix", "host", "schema"})


def _metric_direction(path: tuple[str, ...]) -> str | None:
    """Better-direction of the metric at ``path``, or None if not a metric."""
    leaf = path[-1]
    if leaf in _COMPARE_DIRECTIONS:
        return _COMPARE_DIRECTIONS[leaf]
    if leaf.startswith("speedup"):
        return "higher"
    if len(path) >= 2 and path[-2] in _COMPARE_DIRECTIONS:
        return _COMPARE_DIRECTIONS[path[-2]]
    return None


def _metric_leaves(node, path: tuple[str, ...] = ()) -> dict[tuple[str, ...], float]:
    """All comparable numeric leaves of a bench report, keyed by path."""
    out: dict[tuple[str, ...], float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if str(key) in _NON_METRIC_KEYS:
                continue
            out.update(_metric_leaves(value, path + (str(key),)))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        if _metric_direction(path) is not None and path:
            out[path] = float(node)
    return out


def compare_bench(
    old: dict, new: dict, *, tolerance: float = 0.10, ratios_only: bool = False
) -> dict:
    """Diff two bench reports metric by metric.

    Returns ``{"rows": [...], "dropped": [...], "added": [...],
    "worst_regression": float, "tolerance": float, "ok": bool}``.  Each
    row carries the dotted section path, both values, the new/old ratio
    and a ``regression`` fraction — how much *worse* the new value is in
    the metric's bad direction (0.0 when equal or improved).  ``ok`` is
    False when any regression exceeds ``tolerance``.  Sections present
    in only one report (a retired or new variant) are listed, not
    compared — retiring a backend must not read as a regression.

    ``ratios_only`` restricts the comparison to ``speedup*`` leaves —
    same-host ratios that transfer across machines — so a report
    committed on one host can gate CI runs on another without absolute
    wall-clock noise (this is what the CI bench gate uses).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    old_leaves = _metric_leaves(old)
    new_leaves = _metric_leaves(new)
    if ratios_only:
        old_leaves = {
            p: v for p, v in old_leaves.items() if p[-1].startswith("speedup")
        }
        new_leaves = {
            p: v for p, v in new_leaves.items() if p[-1].startswith("speedup")
        }
    rows: list[dict] = []
    for path in sorted(old_leaves.keys() & new_leaves.keys()):
        before, after = old_leaves[path], new_leaves[path]
        direction = _metric_direction(path)
        if before <= 0:
            continue
        ratio = after / before
        if direction == "higher":
            regression = max(0.0, 1.0 - ratio)
            improvement = max(0.0, ratio - 1.0)
        else:
            regression = max(0.0, ratio - 1.0)
            improvement = max(0.0, 1.0 - ratio)
        rows.append(
            {
                "section": ".".join(path),
                "old": before,
                "new": after,
                "ratio": ratio,
                "direction": direction,
                "regression": regression,
                "improvement": improvement,
            }
        )
    worst = max((row["regression"] for row in rows), default=0.0)
    return {
        "rows": rows,
        "dropped": sorted(".".join(p) for p in old_leaves.keys() - new_leaves.keys()),
        "added": sorted(".".join(p) for p in new_leaves.keys() - old_leaves.keys()),
        "worst_regression": worst,
        "tolerance": tolerance,
        "ok": worst <= tolerance,
    }


def render_compare(result: dict) -> str:
    """Human summary of one :func:`compare_bench` result."""
    lines = []
    width = max((len(r["section"]) for r in result["rows"]), default=10)
    for row in result["rows"]:
        if row["regression"] > 0:
            signed = -row["regression"]
        else:
            signed = row["improvement"]
        flag = ""
        if row["regression"] > result["tolerance"]:
            flag = "  << REGRESSED"
        lines.append(
            f"  {row['section']:<{width}}  {row['old']:>14,.3f} -> "
            f"{row['new']:>14,.3f}  {signed:+8.1%}{flag}"
        )
    for path in result["dropped"]:
        lines.append(f"  {path:<{width}}  (dropped in new report)")
    for path in result["added"]:
        lines.append(f"  {path:<{width}}  (new in new report)")
    verdict = "within tolerance" if result["ok"] else "REGRESSION"
    lines.append(
        f"{len(result['rows'])} metric(s) compared; worst regression "
        f"{result['worst_regression']:.1%} vs tolerance "
        f"{result['tolerance']:.1%} -> {verdict}"
    )
    return "\n".join(lines)
