"""Plan/execute batched grid execution: many cells per kernel call.

``run_grid`` historically advanced its (scheme, W, P) cells one at a
time — each cell a full :class:`~repro.core.scheduler.Scheduler` run
whose per-cycle numpy calls operate on one cell's ``P``-wide vectors.
On small cells the numpy dispatch overhead per call dominates, and the
process-parallel path only made it worse on few-core hosts (spawn +
rebuild per cell).  This module is the *execute* half of the planner /
executor split that fixes it:

- the **plan** (:class:`CellPlan`, built by ``run_grid``) enumerates the
  cells in scheme-major order with their deterministic ``cell_seed``
  streams and resolved init thresholds, and marks which cells the
  batched executor supports (:func:`is_batchable`);
- the **executor** (:class:`MegaGridExecutor`) packs every planned cell
  into one :class:`~repro.workmodel.mega.MegaArena` and advances *all*
  of them per iteration with single full-width kernels — one
  ``expand_all`` + two segmented reductions per lock-step cycle — while
  the per-cell trigger state (S^x / D_P / D_K accumulators) and the time
  ledgers advance as vectors over the cell axis.

Only the *infrequent* events drop to per-cell Python: an LB phase runs
the cell's own matcher/splitter on its arena slice exactly as the serial
scheduler would, and a finished cell snapshots its
:class:`~repro.core.metrics.RunMetrics`.

**Record identity is the contract.**  Every float accumulation, RNG
draw, matcher decision and ledger charge happens in the same per-cell
order with the same operands as the serial oracle, so the returned
``RunMetrics`` are bit-for-bit equal to ``run_divisible`` on the same
``cell_seed`` — the regression suite asserts this across all six paper
schemes.  The executor therefore supports exactly the feature set the
grid uses (no faults, checkpoints, traces or cycle caps) and refuses
anything else loudly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme
from repro.core.matching import GPMatcher, Matcher, NGPMatcher
from repro.core.metrics import RunMetrics
from repro.core.splitting import AlphaSplitter, WorkSplitter
from repro.core.triggering import DKTrigger, DPTrigger, StaticTrigger
from repro.errors import ConfigError
from repro.kernels.dispatch import resolve_backend
from repro.kernels.workspace import KernelWorkspace
from repro.obs.profile import span
from repro.simd.cost import CostModel
from repro.simd.machine import TimeLedger
from repro.util.rng import as_generator
from repro.workmodel.mega import MegaArena

__all__ = ["CellPlan", "is_batchable", "MegaGridExecutor", "run_batched_cells"]

#: Mirrors the scheduler's hard safety cap on transfer rounds per phase.
_MAX_ROUNDS_FACTOR = 4

#: Trigger kinds on the vectorized cell axis.
_KIND_STATIC, _KIND_DP, _KIND_DK = 0, 1, 2


@dataclass(frozen=True)
class CellPlan:
    """One planned grid cell: everything needed to execute it anywhere.

    ``index`` is the cell's scheme-major grid index (the seed-order
    contract); ``init_threshold`` is already resolved (the planner
    applies the ``"auto"`` convention), so serial, batched and sharded
    executors cannot disagree about it.
    """

    index: int
    scheme: Scheme
    n_pes: int
    total_work: int
    seed: int
    init_threshold: float | None


def is_batchable(scheme: Scheme, *, initial_lb_cost: float = 1.0) -> bool:
    """Whether the batched executor can run cells of ``scheme``.

    Supported: the Table 1 matcher/trigger families (GP / nGP matching,
    S^x / D_P / D_K triggering).  Baseline schemes with opaque factories
    fall back to the serial path.
    """
    try:
        matcher, trigger = scheme.build(initial_lb_cost)
    except Exception:
        return False
    return isinstance(matcher, (GPMatcher, NGPMatcher)) and isinstance(
        trigger, (StaticTrigger, DPTrigger, DKTrigger)
    )


class _CellRun:
    """Per-cell Python-side state: matcher, RNG stream, phase bookkeeping."""

    __slots__ = (
        "plan",
        "matcher",
        "multiple_transfers",
        "rng",
        "init_target",
        "in_init",
    )

    def __init__(self, plan: CellPlan, matcher: Matcher, multiple: bool) -> None:
        self.plan = plan
        self.matcher = matcher
        self.multiple_transfers = multiple
        # The serial path hands DivisibleWorkload the cell seed; the
        # splitter is that workload's only RNG consumer, so seeding the
        # per-cell stream identically keeps every donation draw aligned.
        self.rng = as_generator(plan.seed)
        self.init_target = (
            None
            if plan.init_threshold is None
            else plan.init_threshold * plan.n_pes
        )
        self.in_init = plan.init_threshold is not None


class MegaGridExecutor:
    """Advance many planned grid cells in lock-step over one MegaArena.

    Parameters
    ----------
    cells:
        The planned cells to run (any order; results key off
        ``CellPlan.index``).  Every scheme must satisfy
        :func:`is_batchable`.
    cost_model / splitter:
        Shared across cells exactly as ``run_grid`` shares them.
    sanitize:
        Assert per-cycle invariants on the packed state: work
        conservation across every cell, non-negative counts, and each
        finished cell's ledger identity.  Cheap (vectorized over cells)
        but on by default only in tests.
    kernel_backend:
        Tier for the mega kernels and every cell matcher's rendezvous —
        ``"numpy"`` (reference, default), ``"fused"``, ``"jit"`` or
        ``"auto"``.  One :class:`~repro.kernels.KernelWorkspace` is
        shared by the arena and all matchers.
    on_cell_done:
        Called as ``on_cell_done(plan, metrics)`` the cycle each cell
        finishes — the write-ahead journal's hook, so an in-process
        batched grid is durable cell-by-cell, not only at the end.
        Strictly observational: the callback receives the finalized
        metrics and must not mutate them.
    """

    def __init__(
        self,
        cells: Sequence[CellPlan],
        *,
        cost_model: CostModel | None = None,
        splitter: WorkSplitter | None = None,
        sanitize: bool = False,
        kernel_backend: str = "numpy",
        on_cell_done: "Callable[[CellPlan, RunMetrics], None] | None" = None,
    ) -> None:
        if not cells:
            raise ConfigError("MegaGridExecutor needs at least one cell")
        self.cost = cost_model if cost_model is not None else CostModel()
        self.splitter = splitter if splitter is not None else AlphaSplitter()
        self.sanitize = sanitize
        self.on_cell_done = on_cell_done
        self.kernel_backend = resolve_backend(kernel_backend)
        self._kernel_ws = (
            KernelWorkspace() if self.kernel_backend != "numpy" else None
        )
        n = len(cells)

        self.pes = np.array([c.n_pes for c in cells], dtype=np.int64)
        self.totals = np.array([c.total_work for c in cells], dtype=np.int64)
        self.arena = MegaArena(
            self.pes.tolist(),
            roots=self.totals.tolist(),
            kernel_backend=self.kernel_backend,
            workspace=self._kernel_ws,
        )

        # Per-cell Python state and vectorized trigger parameters.  The
        # trigger objects built by the scheme are only probed for their
        # type and constants; their per-cycle arithmetic is replicated
        # on the cell axis below, operand-for-operand.
        self.runs: list[_CellRun] = []
        self.kind = np.zeros(n, dtype=np.int64)
        self.static_xp = np.zeros(n, dtype=np.float64)  # x * P per static cell
        self.lb_cost_est = np.zeros(n, dtype=np.float64)  # L
        self.lb_cost_est_p = np.zeros(n, dtype=np.float64)  # L * P
        for i, plan in enumerate(cells):
            initial_lb_cost = self.cost.lb_phase_time(plan.n_pes)
            matcher, trigger = plan.scheme.build(initial_lb_cost)
            if not isinstance(matcher, (GPMatcher, NGPMatcher)) or not isinstance(
                trigger, (StaticTrigger, DPTrigger, DKTrigger)
            ):
                raise ConfigError(
                    f"scheme {plan.scheme.name!r} builds "
                    f"{type(matcher).__name__}/{type(trigger).__name__}, which "
                    "the batched executor does not support; run it serially"
                )
            if self.kernel_backend != "numpy":
                matcher.configure_kernels(self.kernel_backend, self._kernel_ws)
            self.runs.append(_CellRun(plan, matcher, plan.scheme.multiple_transfers))
            if isinstance(trigger, StaticTrigger):
                self.kind[i] = _KIND_STATIC
                self.static_xp[i] = trigger.x * plan.n_pes
            else:
                self.kind[i] = (
                    _KIND_DP if isinstance(trigger, DPTrigger) else _KIND_DK
                )
                self.lb_cost_est[i] = initial_lb_cost
                self.lb_cost_est_p[i] = initial_lb_cost * plan.n_pes

        # Ledger lines and counters, one lane per cell.  A finished cell
        # snapshots its metrics the cycle it completes; its lanes may
        # keep accumulating afterwards (they are never read again).
        self.elapsed = np.zeros(n, dtype=np.float64)
        self.t_calc = np.zeros(n, dtype=np.float64)
        self.t_idle = np.zeros(n, dtype=np.float64)
        self.t_lb = np.zeros(n, dtype=np.float64)
        self.n_cycles = np.zeros(n, dtype=np.int64)
        self.n_lb = np.zeros(n, dtype=np.int64)
        self.n_transfers = np.zeros(n, dtype=np.int64)
        self.n_init_lb = np.zeros(n, dtype=np.int64)

        # Trigger accumulators (D_P's w and t, D_K's w_idle).  Lanes of
        # cells still in their init-distribution phase accumulate
        # garbage by design: the serial scheduler never consults the
        # trigger during init and resets the accumulators on exit, and
        # so does the transition below.
        self.acc_work = np.zeros(n, dtype=np.float64)
        self.acc_elapsed = np.zeros(n, dtype=np.float64)
        self.acc_idle = np.zeros(n, dtype=np.float64)

        self.remaining = self.totals.copy()
        self.live = np.ones(n, dtype=bool)
        self.in_main = np.array([not r.in_init for r in self.runs], dtype=bool)
        self.results: dict[int, RunMetrics] = {}

    # -- the lock-step loop ----------------------------------------------

    def run(self) -> dict[int, RunMetrics]:
        """Drive every cell to exhaustion; return metrics by grid index."""
        u = self.cost.u_calc
        # charge_expansion_cycle computes dt = u_calc * slowdown with
        # slowdown 1.0; replicate the multiply so the float is the same.
        dt = u * 1.0
        pes_dt = self.pes * dt
        pes_f = self.pes.astype(np.float64)
        has_init = any(r.in_init for r in self.runs)
        has_dp = bool(np.any(self.kind == _KIND_DP))
        has_dk = bool(np.any(self.kind == _KIND_DK))
        has_static = bool(np.any(self.kind == _KIND_STATIC))

        while self.live.any():
            with span("mega.expand_cycle", cat="grid"):
                counts = self.arena.expand_all()
                busy = self.arena.busy_counts()

            # Vectorized ledger charge — same operand order per cell as
            # SimdMachine.charge_expansion_cycle.
            calc = counts * u
            self.elapsed += dt
            self.t_calc += calc
            self.t_idle += pes_dt - calc
            self.n_cycles += 1
            self.remaining -= counts

            # Trigger accumulators advance before the fire decision,
            # exactly like Trigger.after_cycle.
            if has_dp:
                self.acc_work += counts * dt
                self.acc_elapsed += dt
            if has_dk:
                self.acc_idle += (pes_f - counts) * dt

            if self.sanitize:
                self._sanity_step(counts)

            # Cells whose final node expanded this cycle finish *before*
            # the trigger is consulted (the serial loop breaks first).
            if np.any((self.remaining == 0) & self.live):
                for c in np.flatnonzero((self.remaining == 0) & self.live):
                    self._finalize(int(c))

            # Trigger decisions for cells in the main loop.
            fired = self._fired(busy, has_static, has_dp, has_dk)

            # Init-distribution cells: balance every cycle until the
            # active fraction reaches the target (Section 7).
            if has_init:
                has_init = self._step_init_cells()

            for c in fired:
                self._balance(int(c))

        return self.results

    def _fired(
        self, busy: np.ndarray, has_static: bool, has_dp: bool, has_dk: bool
    ) -> np.ndarray:
        """Indices of live main-loop cells whose trigger fired this cycle."""
        eligible = self.live & self.in_main
        if not eligible.any():
            return np.empty(0, dtype=np.int64)
        fire = np.zeros(len(self.live), dtype=bool)
        if has_static:
            fire |= (self.kind == _KIND_STATIC) & (busy <= self.static_xp)
        if has_dp:
            r1 = self.acc_work - busy * self.acc_elapsed
            r2 = busy * self.lb_cost_est
            fire |= (self.kind == _KIND_DP) & (r1 >= r2)
        if has_dk:
            fire |= (self.kind == _KIND_DK) & (self.acc_idle >= self.lb_cost_est_p)
        return np.flatnonzero(fire & eligible)

    def _step_init_cells(self) -> bool:
        """Advance every live cell still in its init-distribution phase.

        Returns whether any cell remains in init mode.
        """
        nonzero = self.arena.nonzero_counts()
        any_left = False
        for c, run in enumerate(self.runs):
            if not run.in_init:
                continue
            if not self.live[c]:
                run.in_init = False
                continue
            # Serial order: the done-check already ran (finalized cells
            # are not live); next the threshold check, then a balance.
            assert run.init_target is not None
            if nonzero[c] >= run.init_target:
                run.in_init = False
                self.in_main[c] = True
                self._reset_trigger_phase(c)
                continue
            if self._balance(c):
                self.n_init_lb[c] += 1
            any_left = True
        return any_left

    # -- per-cell slow paths ----------------------------------------------

    def _reset_trigger_phase(self, c: int) -> None:
        """``Trigger.start_phase`` on the vectorized accumulators."""
        self.acc_work[c] = 0.0
        self.acc_elapsed[c] = 0.0
        self.acc_idle[c] = 0.0

    def _balance(self, c: int) -> bool:
        """One LB phase on cell ``c``'s arena slice — the serial scheduler's
        ``_maybe_balance`` with the workload inlined (fault-free path)."""
        run = self.runs[c]
        work = self.arena.cell(c)
        busy = work >= 2
        idle = work == 0
        if not busy.any() or not idle.any():
            self._reset_trigger_phase(c)
            return False
        matcher = run.matcher
        n_pes = run.plan.n_pes
        rounds = 0
        transfers = 0
        max_rounds = _MAX_ROUNDS_FACTOR * n_pes
        with span("mega.lb_phase", cat="grid"):
            while busy.any() and idle.any() and rounds < max_rounds:
                result = matcher.match(busy, idle)
                if len(result) == 0:
                    break
                transfers += self._transfer(run, work, result.donors, result.receivers)
                rounds += 1
                if not run.multiple_transfers:
                    break
                busy = work >= 2
                idle = work == 0
        dt = self.cost.lb_phase_time(
            n_pes, transfer_rounds=rounds, setup_scans=matcher.setup_scans
        )
        self.elapsed[c] += dt
        self.t_lb[c] += n_pes * dt
        self.n_lb[c] += 1
        self.n_transfers[c] += transfers
        # Trigger.notify_lb_cost + start_phase (static triggers ignore L).
        self.lb_cost_est[c] = dt
        self.lb_cost_est_p[c] = dt * n_pes
        self._reset_trigger_phase(c)
        return True

    def _transfer(
        self,
        run: _CellRun,
        work: np.ndarray,
        donors: np.ndarray,
        receivers: np.ndarray,
    ) -> int:
        """``DivisibleWorkload.transfer`` on the cell's slice, verbatim —
        including the defensive re-validation, so the RNG consumption and
        integer arithmetic match the oracle draw for draw."""
        if len(donors) == 0:
            return 0
        valid = work[donors] >= 2
        donors = donors[valid]
        receivers = receivers[valid]
        if len(donors) == 0:
            return 0
        give = self.splitter.donation(work[donors], run.rng)
        work[donors] -= give
        work[receivers] += give
        return int(len(donors))

    def _finalize(self, c: int) -> None:
        """Snapshot cell ``c``'s RunMetrics the cycle it completes."""
        run = self.runs[c]
        ledger = TimeLedger(
            t_calc=float(self.t_calc[c]),
            t_idle=float(self.t_idle[c]),
            t_lb=float(self.t_lb[c]),
            elapsed=float(self.elapsed[c]),
            t_recovery=0.0,
        )
        metrics = RunMetrics(
            scheme=run.plan.scheme.name,
            n_pes=run.plan.n_pes,
            total_work=int(self.arena.expanded()[c]),
            n_expand=int(self.n_cycles[c]),
            n_lb=int(self.n_lb[c]),
            n_transfers=int(self.n_transfers[c]),
            n_init_lb=int(self.n_init_lb[c]),
            ledger=ledger,
            trace=None,
            n_recovery=0,
            faults=None,
        )
        if self.sanitize:
            self._sanity_finalize(c, metrics)
        self.results[run.plan.index] = metrics
        if self.on_cell_done is not None:
            self.on_cell_done(run.plan, metrics)
        self.live[c] = False
        self.in_main[c] = False
        run.in_init = False

    # -- sanitize mode -----------------------------------------------------

    def _sanity_step(self, counts: np.ndarray) -> None:
        from repro.lint.runtime import require

        require(
            bool(np.all(counts >= 0)) and bool(np.all(self.remaining >= 0)),
            "mega-conservation",
            "negative per-cell expansion count or remaining work",
        )
        require(
            self.arena.check_conservation(self.totals),
            "mega-conservation",
            "expanded + remaining != W for some packed cell",
        )

    def _sanity_finalize(self, c: int, metrics: RunMetrics) -> None:
        from repro.lint.runtime import require

        ledger = metrics.ledger
        lhs = metrics.n_pes * ledger.elapsed
        rhs = ledger.t_calc + ledger.t_idle + ledger.t_lb + ledger.t_recovery
        scale = max(abs(lhs), abs(rhs), 1.0)
        require(
            abs(lhs - rhs) <= 1e-9 * scale,
            "time-identity",
            f"cell {self.runs[c].plan.index}: P*T_par != "
            "T_calc + T_idle + T_lb + T_recovery at finalize",
        )
        require(
            metrics.total_work == self.runs[c].plan.total_work,
            "mega-conservation",
            f"cell {self.runs[c].plan.index} expanded {metrics.total_work} "
            f"of {self.runs[c].plan.total_work} nodes",
        )


def run_batched_cells(
    cells: Sequence[CellPlan],
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    sanitize: bool = False,
    kernel_backend: str = "numpy",
    on_cell_done: "Callable[[CellPlan, RunMetrics], None] | None" = None,
) -> dict[int, RunMetrics]:
    """Execute planned cells on one :class:`MegaGridExecutor`.

    Returns metrics keyed by each cell's grid ``index``.
    """
    if not cells:
        return {}
    with span("mega.plan", cat="grid"):
        executor = MegaGridExecutor(
            cells,
            cost_model=cost_model,
            splitter=splitter,
            sanitize=sanitize,
            kernel_backend=kernel_backend,
            on_cell_done=on_cell_done,
        )
    return executor.run()
