"""Write-ahead cell journal: durable, crash-resumable ``run_grid`` sweeps.

The paper's experiments are long parameter sweeps (Tables 2-6: six
schemes x work sizes x machine sizes).  Before this module, a grid that
died mid-sweep lost every completed cell; now ``run_grid(journal=path)``
durably records each cell the moment it completes, and
``run_grid(..., resume=True)`` replays the journal and skips finished
cells — producing records **bit-identical** to an uninterrupted run,
because each cell is a pure function of its content-addressed key and
the record dict round-trips floats exactly
(:func:`repro.experiments.store.record_to_dict`).

On-disk format — append-only, CRC-framed (the checkpoint layer's frame,
:data:`repro.faults.checkpoint.FRAME_HEADER`)::

    MAGIC (11 bytes) | frame | frame | ...
    frame := crc32 (u32 LE) | payload length (u64 LE) | payload (JSON)

The first frame is the header ``{"schema", "code_version"}``; every
later frame is one completed cell ``{"key", "index", "record"}``.  The
file is *created* durably via :func:`repro.util.atomic.
atomic_write_bytes` (unique staged temp, file fsync, ``os.replace``,
parent-directory fsync); each append is a single framed write followed
by ``fsync``, so
an interrupted append can only ever leave a **torn tail** — a prefix of
the final frame.  Opening an existing journal replays every intact
frame, then truncates the torn tail away so the next append starts at a
clean frame boundary.  Anything worse — bad magic, an unreadable
header, an unsupported schema, or a CRC mismatch on an *interior*
frame (bit rot; a second writer) — raises
:class:`~repro.errors.JournalCorruptError` and the file is refused,
never half-replayed.

Entries are keyed by :func:`cell_key` — a SHA-256 over
``(scheme spec, W, P, cell_seed, code_version)``.  ``code_version``
folds the package version and both persistence schema versions in, so a
code change that could alter records invalidates every cached cell
instead of resuming stale results.  The same content-addressed key is
the substrate the ROADMAP's ``repro serve`` result cache reuses:
identical re-submissions hit the journal/store instead of recomputing.

The journal is **single-writer** by construction: only the ``run_grid``
parent process appends (workers return results over the pool), so
frames never interleave.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import JournalCorruptError, RecordStoreError
from repro.experiments.store import (
    SCHEMA_VERSION as RECORD_SCHEMA_VERSION,
    record_from_dict,
    record_to_dict,
)
from repro.faults.checkpoint import frame_payload, try_parse_frame
from repro.obs.profile import span
from repro.util.atomic import atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import RunMetrics
    from repro.experiments.batched import CellPlan
    from repro.experiments.runner import GridRecord

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "code_version",
    "cell_key",
    "CellJournal",
    "replay_journal",
]

MAGIC = b"REPROJRNL1\n"

#: Journal file schema.  Bumping it refuses old files loudly.
SCHEMA_VERSION = 1


def code_version() -> str:
    """The code identity folded into every :func:`cell_key`.

    A pure function of the installed package version and the
    record/journal schema versions — any of them changing means a
    journaled record may no longer equal what the current code would
    compute, so the key changes and stale cells are recomputed instead
    of resumed.
    """
    from repro import __version__

    return (
        f"repro-{__version__}"
        f"+records-v{RECORD_SCHEMA_VERSION}+journal-v{SCHEMA_VERSION}"
    )


def cell_key(
    scheme: str,
    total_work: int,
    n_pes: int,
    seed: int,
    *,
    version: str | None = None,
) -> str:
    """Content-addressed identity of one grid cell's result.

    A SHA-256 hex digest of ``(spec string, W, P, cell_seed,
    code_version)`` — everything that determines the record bit-for-bit
    and nothing that doesn't (executor choice, shard layout, retry
    history and observability are all record-invariant by the grid's
    identity contract).
    """
    if version is None:
        version = code_version()
    text = "|".join(
        [scheme, f"W={total_work}", f"P={n_pes}", f"seed={seed}", version]
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _decode_payload(payload: bytes, path: Path, what: str) -> dict:
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalCorruptError(
            f"{path} has an undecodable {what} frame: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise JournalCorruptError(f"{path} has a malformed {what} frame")
    return data


def replay_journal(
    path: str | Path, *, recover: bool = True
) -> tuple[dict, dict[str, "GridRecord"], int, bool]:
    """Read a journal; return ``(header, records_by_key, end, torn)``.

    ``end`` is the byte offset after the last intact frame and ``torn``
    whether a torn tail followed it.  With ``recover=False`` a torn tail
    raises :class:`~repro.errors.JournalCorruptError` instead of being
    reported — the strict mode the corruption tests drive.  Interior
    CRC failures always raise, recover or not: a clean crash cannot
    damage bytes that were already written, so they mean real corruption.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JournalCorruptError(f"cannot read journal {path}: {exc}") from exc
    if not raw.startswith(MAGIC):
        raise JournalCorruptError(f"{path} is not a cell journal (bad magic)")

    payloads: list[bytes] = []
    offset = len(MAGIC)
    torn = False
    while offset < len(raw):
        status, payload, next_offset = try_parse_frame(raw, offset)
        if status == "ok":
            assert payload is not None
            payloads.append(payload)
            offset = next_offset
            continue
        if status == "crc":
            raise JournalCorruptError(
                f"{path} frame at byte {offset} failed its CRC check"
            )
        # A short tail: the one artifact an interrupted append leaves.
        if not recover:
            raise JournalCorruptError(
                f"{path} is truncated (torn frame at byte {offset})"
            )
        torn = True
        break

    if not payloads:
        # The header is written atomically at creation, so a journal
        # without one was never valid — refuse even in recover mode.
        raise JournalCorruptError(f"{path} has no intact header frame")
    header = _decode_payload(payloads[0], path, "header")
    if header.get("schema") != SCHEMA_VERSION:
        raise JournalCorruptError(
            f"{path} has unsupported journal schema "
            f"{header.get('schema')!r} (expected {SCHEMA_VERSION})"
        )

    records: dict[str, GridRecord] = {}
    for payload in payloads[1:]:
        entry = _decode_payload(payload, path, "cell")
        try:
            key = entry["key"]
            record = record_from_dict(entry["record"])
        except (KeyError, TypeError, RecordStoreError) as exc:
            raise JournalCorruptError(
                f"{path} has a malformed cell frame: {exc}"
            ) from exc
        # Duplicate keys (a sweep re-run without resume) keep the last
        # entry — identical by the determinism contract either way.
        records[key] = record
    return header, records, offset, torn


class CellJournal:
    """Append-only write-ahead journal of completed grid cells.

    Opening a path that does not exist creates it (header written
    atomically via tmp + ``os.replace``); opening an existing journal
    replays it, exposes the recovered records through :meth:`get` /
    :meth:`lookup`, and truncates a torn tail so appends resume at a
    clean boundary (``recovered_torn_tail`` records that this happened).

    ``version`` defaults to :func:`code_version`; tests override it to
    model resuming under changed code (keys stop matching, cells rerun).
    """

    def __init__(self, path: str | Path, *, version: str | None = None) -> None:
        self.path = Path(path)
        self.version = code_version() if version is None else version
        self._records: dict[str, GridRecord] = {}
        self.recovered_torn_tail = False
        if self.path.exists():
            self._replay_existing()
        else:
            self._create()

    # -- open/create -------------------------------------------------------

    def _create(self) -> None:
        header = json.dumps(
            {"schema": SCHEMA_VERSION, "code_version": self.version},
            sort_keys=True,
        ).encode("utf-8")
        framed = MAGIC + frame_payload(header)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Unique staged temp + file fsync + replace + directory fsync:
        # concurrent creators of the same journal path cannot clobber
        # each other's staging, and a crash right after creation cannot
        # lose the file (the "survives any crash" contract append()
        # documents starts at the header frame).
        atomic_write_bytes(self.path, framed)

    def _replay_existing(self) -> None:
        with span("journal.replay", cat="grid"):
            _, records, end, torn = replay_journal(self.path, recover=True)
            self._records = records
            if torn:
                self.recovered_torn_tail = True
                with open(self.path, "r+b") as fh:
                    fh.truncate(end)

    # -- keys --------------------------------------------------------------

    def key_for(self, plan: "CellPlan") -> str:
        """The :func:`cell_key` of a planned cell under this journal's
        code version."""
        return cell_key(
            plan.scheme.name,
            plan.total_work,
            plan.n_pes,
            plan.seed,
            version=self.version,
        )

    # -- writes ------------------------------------------------------------

    def append(self, key: str, index: int, record: "GridRecord") -> None:
        """Durably record one completed cell (idempotent per key).

        The frame is written in one call and fsynced before returning,
        so once this method returns the cell survives any crash.
        """
        if key in self._records:
            return
        with span("journal.append", cat="grid"):
            entry = {
                "key": key,
                "index": index,
                "record": record_to_dict(record, traces=False),
            }
            blob = json.dumps(entry, sort_keys=True).encode("utf-8")
            with open(self.path, "ab") as fh:
                fh.write(frame_payload(blob))
                fh.flush()
                os.fsync(fh.fileno())
        self._records[key] = record

    def record_cell(self, plan: "CellPlan", metrics: "RunMetrics") -> None:
        """Journal a just-finished planned cell (the run_grid hook)."""
        from repro.experiments.runner import GridRecord

        record = GridRecord(
            plan.scheme.name, plan.n_pes, plan.total_work, metrics
        )
        self.append(self.key_for(plan), plan.index, record)

    # -- reads -------------------------------------------------------------

    def get(self, key: str) -> "GridRecord | None":
        """The journaled record under ``key``, or ``None``."""
        return self._records.get(key)

    def lookup(self, plan: "CellPlan") -> "GridRecord | None":
        """The journaled record of a planned cell, or ``None``.

        Misses when the cell never completed *or* when the journal was
        written under a different code version — the key encodes both.
        """
        return self._records.get(self.key_for(plan))

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records
