"""Speedup curves: S(P) at fixed problem size.

The dual view of isoefficiency (Section 3.2): at fixed W, efficiency
falls as P grows because total overhead rises; the speedup curve bends
away from linear at the P where W stops being "large enough".  The
bench uses these curves to confirm the Amdahl-style saturation the
isoefficiency function predicts: doubling P past the knee buys little.
"""

from __future__ import annotations

from repro.core.config import Scheme
from repro.experiments.report import SeriesResult
from repro.experiments.runner import run_divisible
from repro.simd.cost import CostModel

__all__ = ["speedup_curves"]


def speedup_curves(
    schemes: list[str | Scheme],
    total_work: int,
    pes: list[int],
    *,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> SeriesResult:
    """Measured speedup S = T_calc / T_par for each scheme over ``pes``.

    Returns a :class:`~repro.experiments.report.SeriesResult` with one
    curve per scheme plus the ``ideal`` (linear) reference; the notes
    record each scheme's efficiency at the largest machine.
    """
    if not pes:
        raise ValueError("pes must be non-empty")
    series: dict[str, list[tuple[float, float]]] = {
        "ideal": [(float(p), float(p)) for p in pes]
    }
    notes: list[str] = [f"fixed W = {total_work}"]
    for spec in schemes:
        points = []
        last_eff = 0.0
        for p in pes:
            metrics = run_divisible(
                spec, total_work, p, cost_model=cost_model, seed=seed
            )
            points.append((float(p), metrics.speedup))
            last_eff = metrics.efficiency
        name = spec if isinstance(spec, str) else spec.name
        series[name] = points
        notes.append(f"{name}: E at P={pes[-1]} is {last_eff:.3f}")
    return SeriesResult(
        exp_id="speedup",
        title=f"Speedup at fixed W = {total_work}",
        x_label="P",
        y_label="speedup",
        series=series,
        notes=notes,
    )
