"""Consolidated reproduction report.

Collects every artifact the benchmark suite wrote under ``results/``
into one ordered document (paper tables first, figures next, extension
experiments last), with a manifest of what is present and what is
missing — the single file a reviewer reads after
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["ReportSection", "EXPECTED_ARTIFACTS", "consolidate_report"]


@dataclass(frozen=True)
class ReportSection:
    """One artifact's place in the report."""

    exp_id: str
    heading: str


#: Report order: the paper's evaluation first, extensions after.
EXPECTED_ARTIFACTS: tuple[ReportSection, ...] = (
    ReportSection("table1", "Table 1 — scheme taxonomy"),
    ReportSection("table2", "Table 2 — static triggering"),
    ReportSection("table3", "Table 3 — around the optimal trigger"),
    ReportSection("table4", "Table 4 — dynamic triggering"),
    ReportSection("table5", "Table 5 — inflated LB cost"),
    ReportSection("table6", "Table 6 — isoefficiency functions"),
    ReportSection("fig1", "Figure 1 — trigger geometry"),
    ReportSection("fig3", "Figure 3 — nGP/GP phase gap"),
    ReportSection("fig4", "Figure 4 — isoefficiency, static"),
    ReportSection("fig5", "Figure 5 — decay profiles & the D_P pathology"),
    ReportSection("fig6", "Figure 6 — the D_K 2x bound"),
    ReportSection("fig7", "Figure 7 — isoefficiency, dynamic"),
    ReportSection("fig8", "Figure 8 — activity traces"),
    ReportSection("puzzle_validation", "15-puzzle serial/parallel validation"),
    ReportSection("multidomain", "Multi-domain validation"),
    ReportSection("baselines", "Section 8 baselines"),
    ReportSection("mimd_parity", "Section 9 MIMD parity"),
    ReportSection("dfbb", "Extension — DFBB on SIMD"),
    ReportSection("dfbb_broadcast", "Extension — incumbent broadcast"),
    ReportSection("anomalies", "Extension — speedup anomalies"),
    ReportSection("speedup", "Extension — speedup curves"),
    ReportSection("router_calibration", "Extension — router calibration"),
    ReportSection("stackmodel_crosscheck", "Extension — stack-model cross-check"),
    ReportSection("tree_sensitivity", "Extension — tree-shape sensitivity"),
    ReportSection("model_selection", "Extension — scaling-law selection"),
    ReportSection("theory_vs_measurement", "Extension — Section 4 theory vs simulator"),
    ReportSection("variance", "Extension — seed stability"),
    ReportSection("heuristic_ablation", "Ablation — heuristic quality"),
    ReportSection("ablation_splitter", "Ablation — splitter quality"),
    ReportSection("ablation_split_policy", "Ablation — stack donation policy"),
    ReportSection("ablation_dk_transfers", "Ablation — D_K transfer rounds"),
    ReportSection("ablation_gp_advance", "Ablation — GP pointer policy"),
    ReportSection("ablation_init_threshold", "Ablation — initial distribution"),
)


def consolidate_report(
    results_dir: str | Path,
    *,
    out_path: str | Path | None = None,
) -> str:
    """Assemble the report text; optionally write it to ``out_path``.

    Missing artifacts are listed in the manifest rather than failing —
    a partial benchmark run still yields a truthful report.
    """
    results_dir = Path(results_dir)
    present: list[tuple[ReportSection, str]] = []
    missing: list[ReportSection] = []
    for section in EXPECTED_ARTIFACTS:
        path = results_dir / f"{section.exp_id}.txt"
        if path.exists():
            present.append((section, path.read_text().rstrip()))
        else:
            missing.append(section)

    lines = [
        "# Reproduction report",
        "",
        "Karypis & Kumar (1992), 'Unstructured Tree Search on SIMD Parallel",
        "Computers' — regenerated tables, figures and extension experiments.",
        "",
        f"artifacts present: {len(present)} / {len(EXPECTED_ARTIFACTS)}",
    ]
    if missing:
        lines.append("missing (benchmarks not yet run):")
        lines.extend(f"  - {s.exp_id}: {s.heading}" for s in missing)
    lines.append("")
    for section, body in present:
        lines.append("=" * 72)
        lines.append(f"## {section.heading}")
        lines.append("")
        lines.append(body)
        lines.append("")
    text = "\n".join(lines)

    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(text)
    return text
