"""Experiment harness: regenerates every table and figure of the paper.

- :mod:`repro.experiments.runner` — single runs and (scheme, W, P) grids
  over the divisible workload at paper or reduced scale.
- :mod:`repro.experiments.journal` — write-ahead cell journal behind
  ``run_grid(journal=..., resume=...)`` (crash-bit-identical resume).
- :mod:`repro.experiments.tables` — Tables 1-6 generators.
- :mod:`repro.experiments.figures` — Figures 1, 3-8 series generators.
- :mod:`repro.experiments.report` — result containers and text rendering.

Every generator returns a structured result whose ``render()`` prints the
same rows/series the paper reports; the benchmark suite writes them under
``results/``.
"""

from repro.experiments.report import TableResult, SeriesResult
from repro.experiments.batched import CellPlan, run_batched_cells
from repro.experiments.runner import (
    Scale,
    PAPER_SCALE,
    SMALL_SCALE,
    TINY_SCALE,
    run_divisible,
    run_grid,
    plan_grid,
    GridRecord,
    GRID_EXECUTORS,
    RetryPolicy,
    QuarantineReport,
)
from repro.experiments.journal import CellJournal, cell_key, code_version
from repro.experiments.store import save_records, load_records, to_triples
from repro.experiments import tables, figures

__all__ = [
    "save_records",
    "load_records",
    "to_triples",
    "TableResult",
    "SeriesResult",
    "Scale",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TINY_SCALE",
    "run_divisible",
    "run_grid",
    "plan_grid",
    "GridRecord",
    "GRID_EXECUTORS",
    "RetryPolicy",
    "QuarantineReport",
    "CellJournal",
    "cell_key",
    "code_version",
    "CellPlan",
    "run_batched_cells",
    "tables",
    "figures",
]
