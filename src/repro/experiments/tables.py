"""Generators for Tables 1-6 of the paper.

Every function returns a :class:`~repro.experiments.report.TableResult`
whose rows mirror the paper's layout.  ``scale`` selects the machine and
problem sizes: ``"paper"`` is the CM-2 configuration verbatim; ``"small"``
(default for tests) divides P and W by 16, preserving every ratio the
analysis says matters (W/P and t_lb/U_calc).
"""

from __future__ import annotations

from repro.analysis.optimal_trigger import optimal_static_trigger
from repro.analysis.isoefficiency import isoefficiency_table
from repro.core.config import PAPER_SCHEMES, make_scheme
from repro.core.splitting import AlphaSplitter, WorkSplitter
from repro.experiments.report import TableResult
from repro.experiments.runner import SCALES, Scale, run_divisible
from repro.simd.cost import CostModel

__all__ = ["table1", "table2", "table3", "table4", "table5", "table6"]

#: Static thresholds of Table 2's columns.
TABLE2_THRESHOLDS = (0.50, 0.60, 0.70, 0.80, 0.90)


def _scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"scale must be one of {sorted(SCALES)} or a Scale, got {scale!r}"
        ) from None


def table1(*, scale: str | Scale = "small", seed: int = 0) -> TableResult:
    """Table 1: the six studied schemes, with a costed smoke run of each.

    The paper's table is descriptive; the run columns confirm every
    registry entry actually executes and reports sane metrics.
    """
    sc = _scale(scale)
    work = sc.works[0]
    rows: list[list[object]] = []
    comments = {
        "nGP-S": "similar to Powley/Korf, Mahanti/Daniels",
        "nGP-DP": "similar to Powley et al.",
        "nGP-DK": "new scheme",
        "GP-S": "new scheme",
        "GP-DP": "new scheme",
        "GP-DK": "new scheme",
    }
    for spec in PAPER_SCHEMES:
        scheme = make_scheme(spec)
        metrics = run_divisible(scheme, work, sc.n_pes, seed=seed)
        kind = spec.rsplit("-", 1)[0] + "-" + ("S" if "-S" in spec else spec.rsplit("-", 1)[1])
        rows.append(
            [
                scheme.name,
                comments[kind],
                "multiple" if scheme.multiple_transfers else "single",
                metrics.n_expand,
                metrics.n_lb,
                round(metrics.efficiency, 3),
            ]
        )
    return TableResult(
        exp_id="table1",
        title=f"Studied load balancing schemes (smoke run at W={work}, P={sc.n_pes})",
        headers=["scheme", "origin", "transfers/phase", "Nexpand", "Nlb", "E"],
        rows=rows,
    )


def table2(*, scale: str | Scale = "small", seed: int = 0) -> TableResult:
    """Table 2: N_expand, N_lb and E for nGP/GP x S^x over four W.

    One row per (W, metric); one column pair (nGP, GP) per threshold; the
    last column is the Equation 18 analytic trigger x_o.
    """
    sc = _scale(scale)
    cost = CostModel()
    headers = ["W", "metric"]
    for x in TABLE2_THRESHOLDS:
        headers += [f"nGP@{x:.2f}", f"GP@{x:.2f}"]
    headers.append("x_o")

    rows: list[list[object]] = []
    for work in sc.works:
        cells: dict[str, dict[float, object]] = {"Nexpand": {}, "Nlb": {}, "E": {}}
        for x in TABLE2_THRESHOLDS:
            for matching in ("nGP", "GP"):
                m = run_divisible(
                    f"{matching}-S{x}", work, sc.n_pes, cost_model=cost, seed=seed
                )
                key = (x, matching)
                cells["Nexpand"][key] = m.n_expand
                cells["Nlb"][key] = m.n_lb
                cells["E"][key] = round(m.efficiency, 2)
        x_o = optimal_static_trigger(
            work, sc.n_pes, u_calc=cost.u_calc, t_lb=cost.lb_phase_time(sc.n_pes)
        )
        for metric in ("Nexpand", "Nlb", "E"):
            row: list[object] = [work, metric]
            for x in TABLE2_THRESHOLDS:
                row += [cells[metric][(x, "nGP")], cells[metric][(x, "GP")]]
            row.append(round(x_o, 2) if metric == "E" else None)
            rows.append(row)

    return TableResult(
        exp_id="table2",
        title=f"Static triggering on {sc.n_pes} PEs (divisible workload)",
        headers=headers,
        rows=rows,
        notes=[
            "paper shape: GP == nGP at x=0.50; Nlb gap grows with x and W;",
            "GP's best E at high x; analytic x_o tracks the observed optimum",
        ],
    )


def table3(
    *, scale: str | Scale = "small", seed: int = 0, span: float = 0.03, step: float = 0.01
) -> TableResult:
    """Table 3: GP-S^x efficiency at thresholds around the analytic x_o."""
    sc = _scale(scale)
    cost = CostModel()
    rows: list[list[object]] = []
    n_steps = int(round(span / step))
    for work in sc.works:
        x_o = optimal_static_trigger(
            work, sc.n_pes, u_calc=cost.u_calc, t_lb=cost.lb_phase_time(sc.n_pes)
        )
        for k in range(-n_steps, n_steps + 1):
            x = min(0.99, max(0.01, x_o + k * step))
            m = run_divisible(f"GP-S{x}", work, sc.n_pes, cost_model=cost, seed=seed)
            rows.append(
                [work, round(x, 3), round(m.efficiency, 3), "x_o" if k == 0 else ""]
            )
    return TableResult(
        exp_id="table3",
        title=f"Efficiency around the analytic optimal trigger (GP, P={sc.n_pes})",
        headers=["W", "x", "E", ""],
        rows=rows,
        notes=["paper shape: E peaks within ~0.02 of the analytic x_o"],
    )


def table4(*, scale: str | Scale = "small", seed: int = 0) -> TableResult:
    """Table 4: dynamic triggering — {nGP, GP} x {D_P, D_K} over four W.

    ``*Nlb`` is the number of *work transfers* (for D_K it equals the
    number of LB phases, as the paper notes).  All runs use the S^0.85
    initial distribution phase of Section 7.
    """
    sc = _scale(scale)
    headers = ["W", "metric", "nGP-DP", "GP-DP", "nGP-DK", "GP-DK"]
    order = ("nGP-DP", "GP-DP", "nGP-DK", "GP-DK")
    rows: list[list[object]] = []
    for work in sc.works:
        cells: dict[str, dict[str, object]] = {"Nexpand": {}, "*Nlb": {}, "E": {}}
        for spec in order:
            m = run_divisible(spec, work, sc.n_pes, seed=seed, init_threshold=0.85)
            cells["Nexpand"][spec] = m.n_expand
            cells["*Nlb"][spec] = m.n_transfers
            cells["E"][spec] = round(m.efficiency, 2)
        for metric in ("Nexpand", "*Nlb", "E"):
            rows.append([work, metric] + [cells[metric][s] for s in order])
    return TableResult(
        exp_id="table4",
        title=f"Dynamic triggering on {sc.n_pes} PEs (divisible workload)",
        headers=headers,
        rows=rows,
        notes=[
            "paper shape: GP outperforms nGP under both triggers;",
            "DP does more transfers, DK fewer phases; overall E similar",
        ],
    )


def table5(
    *,
    scale: str | Scale = "small",
    seed: int = 0,
    multipliers: tuple[float, ...] = (1.0, 12.0, 16.0),
    splitter: WorkSplitter | None = None,
) -> TableResult:
    """Table 5: D_P vs D_K vs S^{x_o} under inflated LB costs (GP matching).

    The paper raised the load-balancing cost 12x and 16x by padding
    messages; here the cost model's transfer multiplier does the same.
    The default splitter is deliberately adverse (fractions in
    ``[0.02, 0.98]``): the real bottom-of-stack donations are just as
    uneven, and it is those activity cliffs that expose D_P's
    late-triggering pathology (Section 6.1).
    """
    sc = _scale(scale)
    work = sc.table5_work
    if splitter is None:
        splitter = AlphaSplitter(alpha_min=0.02, alpha_max=0.98)
    headers = ["metric"] + [
        f"{name}@{int(mult)}x" for mult in multipliers for name in ("DP", "DK", "Sxo")
    ]
    cells: dict[str, list[object]] = {"Nexpand": [], "*Nlb": [], "E": []}
    for mult in multipliers:
        cost = CostModel().with_lb_multiplier(mult)
        t_lb = cost.lb_phase_time(sc.n_pes)
        x_o = optimal_static_trigger(work, sc.n_pes, u_calc=cost.u_calc, t_lb=t_lb)
        for spec, init in (
            ("GP-DP", 0.85),
            ("GP-DK", 0.85),
            (f"GP-S{x_o:.4f}", None),
        ):
            m = run_divisible(
                spec,
                work,
                sc.n_pes,
                cost_model=cost,
                seed=seed,
                init_threshold=init,
                splitter=splitter,
            )
            cells["Nexpand"].append(m.n_expand)
            cells["*Nlb"].append(m.n_transfers)
            cells["E"].append(round(m.efficiency, 2))
    rows = [[metric] + cells[metric] for metric in ("Nexpand", "*Nlb", "E")]
    return TableResult(
        exp_id="table5",
        title=f"Inflated LB cost, W={work}, GP matching, P={sc.n_pes}",
        headers=headers,
        rows=rows,
        notes=[
            "paper shape: at 1x, DP ~ DK ~ Sxo; at 12x/16x DK clearly beats DP",
            "and stays within ~10% of the optimal static trigger",
        ],
    )


def table6(*, x: float = 0.9) -> TableResult:
    """Table 6: analytic isoefficiency functions per architecture."""
    rows = [list(r) for r in isoefficiency_table(x=x)]
    return TableResult(
        exp_id="table6",
        title=f"Isoefficiency functions for static triggering (x = {x})",
        headers=["architecture", "scheme", "isoefficiency"],
        rows=rows,
        notes=[
            "empirical growth-rate verification lives in",
            "benchmarks/bench_table6_isoeff.py (fits W vs P log P on a grid)",
        ],
    )
