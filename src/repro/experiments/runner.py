"""Run helpers: single scheduled runs and (scheme, W, P) grids.

A :class:`Scale` bundles the machine size and the four problem sizes of
the paper's Table 2.  ``PAPER_SCALE`` is the CM-2 configuration verbatim
(P = 8192, W up to 1.61e7 — fully affordable on the vectorized divisible
workload); ``SMALL_SCALE`` divides both by 16 for quick test runs, and
``TINY_SCALE`` is for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Scheme, make_scheme, parse_scheme_spec
from repro.core.metrics import RunMetrics
from repro.core.scheduler import Scheduler
from repro.core.splitting import WorkSplitter
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine
from repro.util.rng import spawn_child
from repro.workmodel.divisible import DivisibleWorkload

__all__ = [
    "Scale",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TINY_SCALE",
    "GridRecord",
    "run_divisible",
    "run_grid",
    "default_init_threshold",
]


@dataclass(frozen=True)
class Scale:
    """An experiment scale: machine size and the four Table 2 work sizes."""

    name: str
    n_pes: int
    works: tuple[int, int, int, int]
    table5_work: int

    @property
    def largest_work(self) -> int:
        return self.works[-1]


#: The paper's CM-2 configuration (Section 5): 8192 processors, the four
#: 15-puzzle problem sizes of Table 2, and Table 5's W = 2067137.
PAPER_SCALE = Scale(
    "paper", 8192, (941_852, 3_055_171, 6_073_623, 16_110_463), 2_067_137
)

#: Everything divided by 16 — same W/P ratios, 16x faster runs.
SMALL_SCALE = Scale("small", 512, (58_866, 190_948, 379_601, 1_006_904), 129_196)

#: Unit-test scale.
TINY_SCALE = Scale("tiny", 64, (7_358, 23_868, 47_450, 125_863), 16_149)

SCALES = {s.name: s for s in (PAPER_SCALE, SMALL_SCALE, TINY_SCALE)}


def default_init_threshold(scheme: Scheme | str) -> float | None:
    """Section 7's convention: dynamic triggers get the S^0.85 initial
    distribution phase; static triggers start cold."""
    spec = scheme.name if isinstance(scheme, Scheme) else scheme
    try:
        _, trig, _ = parse_scheme_spec(spec)
    except ValueError:
        # Baseline schemes (FESS, ...) distribute on their own trigger.
        return None
    return 0.85 if trig in ("DP", "DK") else None


@dataclass(frozen=True)
class GridRecord:
    """One cell of a run grid."""

    scheme: str
    n_pes: int
    total_work: int
    metrics: RunMetrics

    @property
    def efficiency(self) -> float:
        return self.metrics.efficiency


def run_divisible(
    scheme: Scheme | str,
    total_work: int,
    n_pes: int,
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    seed: int = 0,
    init_threshold: float | None | str = "auto",
    initial: str = "root",
    trace: bool = False,
    max_cycles: int | None = None,
) -> RunMetrics:
    """One scheduled run of a scheme over a divisible workload.

    ``init_threshold="auto"`` applies the paper's convention (0.85 for
    dynamic triggers, none for static); pass ``None`` or a float to
    override.
    """
    if init_threshold == "auto":
        init_threshold = default_init_threshold(scheme)
    workload = DivisibleWorkload(
        total_work, n_pes, splitter=splitter, rng=seed, initial=initial
    )
    machine = SimdMachine(n_pes, cost_model if cost_model is not None else CostModel())
    scheduler = Scheduler(
        workload,
        machine,
        scheme,
        init_threshold=init_threshold,
        trace=trace,
        max_cycles=max_cycles,
    )
    return scheduler.run()


def run_grid(
    schemes: list[Scheme | str],
    works: list[int],
    pes: list[int],
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    base_seed: int = 0,
    init_threshold: float | None | str = "auto",
) -> list[GridRecord]:
    """The full cross product of schemes x W x P (Figure 4/7 grids).

    Each cell gets a deterministic child seed of ``base_seed``, so cells
    are reproducible independently of grid shape.
    """
    records: list[GridRecord] = []
    index = 0
    for spec in schemes:
        scheme = make_scheme(spec) if isinstance(spec, str) else spec
        for n_pes in pes:
            for total_work in works:
                child = spawn_child(base_seed, index)
                index += 1
                metrics = run_divisible(
                    scheme,
                    total_work,
                    n_pes,
                    cost_model=cost_model,
                    splitter=splitter,
                    seed=int(child.integers(0, 2**31 - 1)),
                    init_threshold=init_threshold,
                )
                records.append(GridRecord(scheme.name, n_pes, total_work, metrics))
    return records
