"""Run helpers: single scheduled runs and (scheme, W, P) grids.

A :class:`Scale` bundles the machine size and the four problem sizes of
the paper's Table 2.  ``PAPER_SCALE`` is the CM-2 configuration verbatim
(P = 8192, W up to 1.61e7 — fully affordable on the vectorized divisible
workload); ``SMALL_SCALE`` divides both by 16 for quick test runs, and
``TINY_SCALE`` is for unit tests.

Grid execution is durable and hardened (see ``docs/durability.md``):

- ``run_grid(journal=path)`` records each completed cell into a
  write-ahead :class:`~repro.experiments.journal.CellJournal`, and
  ``resume=True`` skips journaled cells, bit-identically;
- transient cell failures retry under a deterministic
  :class:`RetryPolicy` (exponential backoff whose jitter is a pure
  function of the cell seed — replayable, never wall-clock-derived);
- cells that exhaust their retries are quarantined: the raised
  :class:`~repro.errors.GridCellError` carries every *completed*
  record and a typed :class:`QuarantineReport` instead of discarding
  the sweep.
"""

from __future__ import annotations

import signal
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.config import Scheme, make_scheme, parse_scheme_spec
from repro.core.metrics import RunMetrics
from repro.core.scheduler import Scheduler
from repro.core.splitting import WorkSplitter
from repro.errors import (
    ConfigError,
    ExecutorFallbackWarning,
    GridCellError,
    TimeoutUnenforcedWarning,
)
from repro.experiments.batched import CellPlan, is_batchable, run_batched_cells
from repro.faults import CheckpointConfig, FaultPlan, GridChaos
from repro.obs import Observability
from repro.obs.registry import MetricsRegistry, record_run
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine
from repro.util.rng import spawn_child
from repro.workmodel.divisible import DivisibleWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.experiments.journal import CellJournal

__all__ = [
    "Scale",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TINY_SCALE",
    "GridRecord",
    "GridFailure",
    "GRID_EXECUTORS",
    "RetryPolicy",
    "QuarantineReport",
    "cell_seed",
    "plan_grid",
    "run_divisible",
    "run_grid",
    "default_init_threshold",
]

#: Accepted ``run_grid(executor=...)`` values.  ``"auto"`` picks the
#: batched executor whenever every cell supports it and no per-cell
#: hardening (chaos / timeout) was requested, falling back to the
#: process pool (``n_jobs > 1``) or the serial loop otherwise — and the
#: fallback is announced with :class:`~repro.errors.
#: ExecutorFallbackWarning` plus registry metadata, never silent.
#: Explicit ``executor="batched"`` accepts ``timeout``/``chaos`` and
#: enforces them at shard granularity through the worker pool.
GRID_EXECUTORS = ("auto", "serial", "process", "batched")


@dataclass(frozen=True)
class Scale:
    """An experiment scale: machine size and the four Table 2 work sizes."""

    name: str
    n_pes: int
    works: tuple[int, int, int, int]
    table5_work: int

    @property
    def largest_work(self) -> int:
        return self.works[-1]


#: The paper's CM-2 configuration (Section 5): 8192 processors, the four
#: 15-puzzle problem sizes of Table 2, and Table 5's W = 2067137.
PAPER_SCALE = Scale(
    "paper", 8192, (941_852, 3_055_171, 6_073_623, 16_110_463), 2_067_137
)

#: Everything divided by 16 — same W/P ratios, 16x faster runs.
SMALL_SCALE = Scale("small", 512, (58_866, 190_948, 379_601, 1_006_904), 129_196)

#: Unit-test scale.
TINY_SCALE = Scale("tiny", 64, (7_358, 23_868, 47_450, 125_863), 16_149)

SCALES = {s.name: s for s in (PAPER_SCALE, SMALL_SCALE, TINY_SCALE)}


def default_init_threshold(scheme: Scheme | str) -> float | None:
    """Section 7's convention: dynamic triggers get the S^0.85 initial
    distribution phase; static triggers start cold."""
    spec = scheme.name if isinstance(scheme, Scheme) else scheme
    try:
        _, trig, _ = parse_scheme_spec(spec)
    except ValueError:
        # Baseline schemes (FESS, ...) distribute on their own trigger.
        return None
    return 0.85 if trig in ("DP", "DK") else None


@dataclass(frozen=True)
class GridRecord:
    """One cell of a run grid."""

    scheme: str
    n_pes: int
    total_work: int
    metrics: RunMetrics

    @property
    def efficiency(self) -> float:
        return self.metrics.efficiency


def run_divisible(
    scheme: Scheme | str,
    total_work: int,
    n_pes: int,
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    seed: int = 0,
    init_threshold: float | None | str = "auto",
    initial: str = "root",
    trace: bool = False,
    max_cycles: int | None = None,
    faults: "FaultPlan | None" = None,
    checkpoint: "CheckpointConfig | None" = None,
    sanitize: bool = False,
    obs: Observability | None = None,
) -> RunMetrics:
    """One scheduled run of a scheme over a divisible workload.

    ``init_threshold="auto"`` applies the paper's convention (0.85 for
    dynamic triggers, none for static); pass ``None`` or a float to
    override.  ``faults`` injects a deterministic
    :class:`~repro.faults.FaultPlan`; ``checkpoint`` periodically
    serializes the run (see :mod:`repro.faults.checkpoint`); ``obs``
    attaches an :class:`~repro.obs.Observability` bundle (typed events,
    metrics, profiling — observation never changes the run, and the
    final metrics are folded into ``obs.metrics`` when present).
    """
    if init_threshold == "auto":
        init_threshold = default_init_threshold(scheme)
    workload = DivisibleWorkload(
        total_work, n_pes, splitter=splitter, rng=seed, initial=initial
    )
    machine = SimdMachine(n_pes, cost_model if cost_model is not None else CostModel())
    scheduler = Scheduler(
        workload,
        machine,
        scheme,
        init_threshold=init_threshold,
        trace=trace,
        max_cycles=max_cycles,
        faults=faults,
        checkpoint=checkpoint,
        sanitize=sanitize,
        obs=obs,
    )
    metrics = scheduler.run()
    if obs is not None and obs.metrics is not None:
        record_run(obs.metrics, metrics)
    return metrics


def cell_seed(base_seed: int, index: int) -> int:
    """The deterministic seed of grid cell ``index``.

    Derived from ``spawn_child(base_seed, index)`` — a pure function of
    ``(base_seed, index)`` independent of process, platform, and of which
    other cells run — so serial and process-parallel grids see identical
    streams.  ``index`` enumerates cells in **scheme-major order**: the
    nested loops run ``for scheme: for n_pes: for total_work``, i.e.
    ``index = (i_scheme * len(pes) + i_pes) * len(works) + i_work``.
    The regression suite asserts this order so parallelization can never
    silently reshuffle seeds.
    """
    return int(spawn_child(base_seed, index).integers(0, 2**31 - 1))


@dataclass(frozen=True)
class GridFailure:
    """One grid cell that exhausted its retries."""

    index: int
    scheme: str
    n_pes: int
    total_work: int
    attempts: int
    error: str


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry budget and backoff for grid cells.

    ``delay(seed, attempt)`` is a **pure function** of its arguments —
    exponential growth ``base_delay * 2^attempt`` capped at
    ``max_delay``, then shrunk by up to ``jitter`` of itself using a
    ``spawn_child(seed, attempt)`` draw.  No wall clock and no global
    RNG ever enter the decision path, so a sweep's complete backoff
    schedule is replayable from its cell seeds alone (and the strict
    lint's RNG-provenance rules hold by construction).  Only the
    ``time.sleep`` that *executes* a computed delay touches real time.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError(
                "retry delays must be >= 0, got "
                f"base_delay={self.base_delay} max_delay={self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, seed: int, attempt: int) -> float:
        """Backoff seconds before retry number ``attempt`` (0-based) of
        the cell seeded ``seed``.  Pure and replayable."""
        bounded = min(self.max_delay, self.base_delay * (2.0**attempt))
        if bounded <= 0.0 or self.jitter == 0.0:
            return bounded
        frac = float(spawn_child(seed, attempt).random())
        return bounded * (1.0 - self.jitter * frac)


@dataclass(frozen=True)
class QuarantineReport:
    """Summary of the poison cells a grid quarantined.

    Attached to the :class:`~repro.errors.GridCellError` a failed sweep
    raises, next to the ``completed`` records — the typed counterpart of
    the human-readable per-cell report in the exception message.
    """

    failures: tuple[GridFailure, ...]
    n_cells: int
    n_completed: int
    max_retries: int

    @property
    def indices(self) -> tuple[int, ...]:
        """Grid indices of the quarantined cells, ascending."""
        return tuple(f.index for f in self.failures)


def _run_grid_cell(
    payload: tuple,
) -> RunMetrics:
    """One grid cell, picklable for ``ProcessPoolExecutor`` workers.

    Schemes travel as spec strings (Scheme factories close over locals
    and do not pickle) and are rebuilt with ``make_scheme`` in the
    worker; the cost model and splitter pickle as-is.

    The per-cell ``timeout`` is enforced *inside* the worker with
    ``SIGALRM`` (POSIX only; off-POSIX the parent warns with
    :class:`~repro.errors.TimeoutUnenforcedWarning` instead of silently
    dropping the bound) so a wedged cell surfaces as a retryable
    :class:`~repro.errors.GridCellError` instead of stalling the whole
    pool.  ``chaos`` is the deterministic crash hook for the hardening
    tests; ``attempt`` rides along so chaos can fire on attempt 0 and
    let the retry succeed.
    """
    (
        spec,
        total_work,
        n_pes,
        seed,
        cost_model,
        splitter,
        init_threshold,
        sanitize,
        timeout,
        chaos,
        index,
        attempt,
    ) = payload
    if chaos is not None:
        chaos.maybe_trigger(index, attempt)

    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    if use_alarm:

        def _on_alarm(signum: int, frame: object) -> None:
            raise GridCellError(
                f"grid cell {index} ({spec!r}, W={total_work}, P={n_pes}) "
                f"timed out after {timeout}s"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return run_divisible(
            make_scheme(spec),
            total_work,
            n_pes,
            cost_model=cost_model,
            splitter=splitter,
            seed=seed,
            init_threshold=init_threshold,
            sanitize=sanitize,
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def plan_grid(
    schemes: list[Scheme | str],
    works: list[int],
    pes: list[int],
    *,
    base_seed: int = 0,
    init_threshold: float | None | str = "auto",
) -> list[CellPlan]:
    """The planning pass: enumerate grid cells as executable CellPlans.

    Cells come back in scheme-major order with their deterministic
    :func:`cell_seed` and the init threshold already resolved (the
    ``"auto"`` convention applied per scheme), so every executor —
    serial, process-pooled, batched, sharded — starts from the same
    plan and cannot disagree about seeds or thresholds.
    """
    grid_schemes = [make_scheme(s) if isinstance(s, str) else s for s in schemes]
    plans: list[CellPlan] = []
    index = 0
    for scheme in grid_schemes:
        threshold = (
            default_init_threshold(scheme)
            if init_threshold == "auto"
            else init_threshold
        )
        for n_pes in pes:
            for total_work in works:
                plans.append(
                    CellPlan(
                        index=index,
                        scheme=scheme,
                        n_pes=n_pes,
                        total_work=total_work,
                        seed=cell_seed(base_seed, index),
                        init_threshold=threshold,
                    )
                )
                index += 1
    return plans


def _run_grid_batch(payload: tuple) -> list[tuple[int, RunMetrics]]:
    """One shard of planned cells, picklable for pool workers.

    Unlike the per-cell worker above, a shard carries *many* cells and
    rebuilds its schemes (spec strings) and MegaArena once — the spawn
    and rebuild cost is amortized over the whole batch.

    Hardening is enforced at shard granularity: ``chaos`` fires before
    the arena starts, once per cell index the shard carries (so the
    same ``GridChaos(index=...)`` crashes the same work on every
    executor), and ``timeout`` arms a single ``SIGALRM`` watchdog of
    ``timeout * len(shard)`` seconds — the cells advance in lock-step,
    so a per-cell budget scales to the shard it is packed into.  A
    tripped watchdog raises a retryable
    :class:`~repro.errors.GridCellError` naming the shard.
    """
    (
        shard,
        cost_model,
        splitter,
        kernel_backend,
        sanitize,
        timeout,
        chaos,
        attempt,
    ) = payload
    if chaos is not None:
        for row in shard:
            chaos.maybe_trigger(row[0], attempt)
    plans = [
        CellPlan(
            index=index,
            scheme=make_scheme(spec),
            n_pes=n_pes,
            total_work=total_work,
            seed=seed,
            init_threshold=threshold,
        )
        for (index, spec, total_work, n_pes, seed, threshold) in shard
    ]
    watchdog = None if timeout is None else timeout * len(shard)
    use_alarm = watchdog is not None and hasattr(signal, "SIGALRM")
    if use_alarm:
        indices = [p.index for p in plans]

        def _on_alarm(signum: int, frame: object) -> None:
            raise GridCellError(
                f"batched shard of {len(indices)} cell(s) "
                f"{indices} timed out after {watchdog}s"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, watchdog)
    try:
        results = run_batched_cells(
            plans,
            cost_model=cost_model,
            splitter=splitter,
            sanitize=sanitize,
            kernel_backend=kernel_backend,
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    return sorted(results.items())


def _resolve_executor(
    executor: str,
    plans: list[CellPlan],
    n_jobs: int | None,
    timeout: float | None,
    chaos: GridChaos | None,
) -> tuple[str, list[tuple[str, str]]]:
    """Pick the concrete execution path for this grid.

    Returns ``(resolved, fallback_reasons)`` where the reasons — pairs
    of a short machine code and a human sentence — are non-empty exactly
    when ``"auto"`` declined the batched fast path; ``run_grid`` turns
    them into an :class:`~repro.errors.ExecutorFallbackWarning` and
    registry metadata.
    """
    if executor not in GRID_EXECUTORS:
        raise ConfigError(
            f"executor must be one of {GRID_EXECUTORS}, got {executor!r}"
        )
    if executor == "process" and not (n_jobs is not None and n_jobs > 1):
        raise ConfigError("executor='process' requires n_jobs > 1")
    if executor != "auto":
        return executor, []
    reasons: list[tuple[str, str]] = []
    if timeout is not None or chaos is not None:
        reasons.append(
            (
                "hardening",
                "per-cell timeout/chaos hardening was requested "
                "(auto routes it to the per-cell pool; pass "
                "executor='batched' for shard-level enforcement)",
            )
        )
    unbatchable = sorted(
        {p.scheme.name for p in plans if not is_batchable(p.scheme)}
    )
    if unbatchable:
        reasons.append(
            (
                "unbatchable-scheme",
                "scheme(s) the batched executor cannot replicate: "
                + ", ".join(unbatchable),
            )
        )
    if not reasons:
        return "batched", []
    return ("process" if n_jobs is not None and n_jobs > 1 else "serial"), reasons


#: One-per-process latch for the off-POSIX timeout warning.
_TIMEOUT_WARNING_EMITTED = False


def _warn_timeout_unenforced() -> None:
    global _TIMEOUT_WARNING_EMITTED
    if _TIMEOUT_WARNING_EMITTED:
        return
    _TIMEOUT_WARNING_EMITTED = True
    warnings.warn(
        "run_grid(timeout=...) cannot be enforced on this platform: the "
        "in-worker watchdog needs signal.SIGALRM (POSIX only).  Cells "
        "run without a wall-clock bound; grid metadata records "
        "grid.timeout_enforced = 0.",
        TimeoutUnenforcedWarning,
        stacklevel=3,
    )


def _raise_quarantine(
    plans: list[CellPlan],
    results: dict[int, RunMetrics],
    failures: list[GridFailure],
    max_retries: int,
    registry: MetricsRegistry | None,
    journal: "CellJournal | None",
) -> None:
    """Quarantine the poison cells: raise one :class:`GridCellError`
    carrying the structured failures, every completed record (scheme-
    major order), and a typed :class:`QuarantineReport` — graceful
    degradation instead of a discarded sweep."""
    failures.sort(key=lambda f: f.index)
    completed = tuple(
        GridRecord(p.scheme.name, p.n_pes, p.total_work, results[p.index])
        for p in plans
        if p.index in results
    )
    report = QuarantineReport(
        failures=tuple(failures),
        n_cells=len(plans),
        n_completed=len(completed),
        max_retries=max_retries,
    )
    if registry is not None:
        registry.counter("grid.quarantined").inc(len(failures))
    lines = [
        f"run_grid: {len(failures)} of {len(plans)} cells failed "
        f"after {max_retries} retries:"
    ]
    lines += [
        f"  cell {f.index}: scheme={f.scheme!r} W={f.total_work} "
        f"P={f.n_pes} attempts={f.attempts} last_error={f.error}"
        for f in failures
    ]
    lines.append(
        f"quarantined {len(failures)} poison cell(s); "
        f"{len(completed)} completed record(s) attached on .completed"
    )
    if journal is not None:
        lines.append(
            f"completed cells are journaled in {journal.path}; rerun with "
            "resume=True to retry only the quarantined cells"
        )
    raise GridCellError(
        "\n".join(lines),
        failures=tuple(failures),
        completed=completed,
        quarantine=report,
    )


def run_grid(
    schemes: list[Scheme | str],
    works: list[int],
    pes: list[int],
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    base_seed: int = 0,
    init_threshold: float | None | str = "auto",
    n_jobs: int | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    retry: RetryPolicy | None = None,
    chaos: GridChaos | None = None,
    registry: MetricsRegistry | None = None,
    executor: str = "auto",
    kernel_backend: str = "numpy",
    sanitize: bool = False,
    journal: "str | Path | None" = None,
    resume: bool = False,
) -> list[GridRecord]:
    """The full cross product of schemes x W x P (Figure 4/7 grids).

    Each cell gets the deterministic child seed :func:`cell_seed`
    ``(base_seed, index)`` with ``index`` in scheme-major order (see
    there), so cells are reproducible independently of grid shape and of
    how the grid is executed.

    ``n_jobs`` enables worker processes (``concurrent.futures``): whole
    cells on the ``"process"`` path, contiguous *shards* of cells on the
    ``"batched"`` path.  Results are returned in the same scheme-major
    order with the same per-cell seeds on every path, so all executors
    are record-for-record identical.  Multi-process execution requires
    every scheme's name to round-trip through ``make_scheme`` (all
    Table 1 schemes do; baseline schemes with opaque factories must use
    the serial path).

    **Durability** — ``journal`` names a write-ahead
    :class:`~repro.experiments.journal.CellJournal` file: every
    completed cell is CRC-framed and fsynced into it the moment it
    finishes, keyed by ``(spec, W, P, cell_seed, code_version)``.
    ``resume=True`` replays the journal first and skips every cell it
    already holds; because cells are pure functions of their key and
    the journal round-trips records exactly, a killed-and-resumed grid
    returns records **bit-identical** to an uninterrupted run.

    The parallel paths are hardened against worker failure:

    - ``timeout`` bounds each cell's wall-clock seconds (enforced
      in-worker via ``SIGALRM`` on POSIX; elsewhere a one-time
      :class:`~repro.errors.TimeoutUnenforcedWarning` is emitted and
      ``grid.timeout_enforced`` is recorded as 0 instead of silently
      pretending the bound held);
    - a cell that raises, times out, or loses its worker is retried
      under ``retry`` (a :class:`RetryPolicy`; defaults to
      ``RetryPolicy(max_retries=max_retries)``) **with the same**
      :func:`cell_seed`, after a deterministic exponential backoff
      whose jitter derives from the cell seed — so a retried cell's
      record is identical to an undisturbed one and the whole backoff
      schedule is replayable;
    - a ``BrokenProcessPool`` (worker killed hard) respawns the pool and
      requeues every unfinished in-flight cell, each charged one
      attempt and reported with its ``(scheme, W, P)`` coordinates;
    - cells that exhaust their retries are **quarantined**: the raised
      :class:`~repro.errors.GridCellError` carries the structured
      :class:`GridFailure` list, every completed :class:`GridRecord`
      (``.completed``), and a typed :class:`QuarantineReport`
      (``.quarantine``) — with a journal attached the finished cells
      are already durable and a ``resume=True`` rerun retries only the
      poison cells.

    ``chaos`` injects deterministic worker crashes (exit/raise/hang) for
    testing this machinery; see :class:`repro.faults.chaos.GridChaos`.

    ``registry`` folds every cell's metrics into a
    :class:`~repro.obs.registry.MetricsRegistry` (plus ``grid.*``
    operational counters: cells/retries totals, resumed and quarantined
    cells, the resolved executor path and any auto-fallback reason, and
    whether a requested timeout is enforceable).  Recording happens in
    the parent process in cell-index order on every execution path, so
    all executors produce identical snapshots.

    ``executor`` selects the execution strategy (:data:`GRID_EXECUTORS`):
    ``"batched"`` packs every compatible cell into one
    :class:`~repro.workmodel.mega.MegaArena` and advances all of them
    with single full-width kernel calls (record-identical to serial;
    with ``n_jobs > 1`` processes shard *batches* of cells, amortizing
    spawn/rebuild); ``"process"`` is the per-cell pool; ``"serial"``
    forces the one-cell-at-a-time oracle; ``"auto"`` (default) picks
    batched whenever every cell supports it and no per-cell hardening
    (``timeout``/``chaos``) was requested, warning
    :class:`~repro.errors.ExecutorFallbackWarning` when it falls back.
    Explicit ``executor="batched"`` *does* accept ``timeout``/``chaos``:
    shards run in worker processes with a ``timeout * shard_size``
    watchdog and per-cell-index chaos injection, and a crashed shard is
    retried whole with its original seeds (cells journaled by finished
    shards are replayed from the journal, not recomputed).  Chaos and
    timeout apply to the pooled shard cells; unbatchable fallback cells
    run serially in the parent, unhardened.

    ``kernel_backend`` selects the kernel tier the batched executor's
    mega-arena and matchers run on (``"numpy"`` reference by default,
    ``"fused"``/``"jit"``/``"auto"`` — see :mod:`repro.kernels`); the
    serial and process paths ignore it, and every tier is
    record-identical.

    ``sanitize`` turns on the runtime invariant checks in every cell
    (serial, pooled and batched paths alike); sanitized records are
    bit-identical to unsanitized ones.
    """
    if retry is None:
        retry = RetryPolicy(max_retries=max_retries)
    if timeout is not None and timeout <= 0:
        raise ConfigError(f"timeout must be positive, got {timeout}")
    if resume and journal is None:
        raise ConfigError("run_grid(resume=True) requires journal=<path>")
    plans = plan_grid(
        schemes, works, pes, base_seed=base_seed, init_threshold=init_threshold
    )
    resolved, fallback_reasons = _resolve_executor(
        executor, plans, n_jobs, timeout, chaos
    )

    cell_journal: "CellJournal | None" = None
    if journal is not None:
        # Imported lazily: journal.py imports store.py, which imports
        # this module back for GridRecord.
        from repro.experiments.journal import CellJournal

        cell_journal = CellJournal(journal)

    results: dict[int, RunMetrics] = {}
    resumed = 0
    if cell_journal is not None and resume:
        for plan in plans:
            record = cell_journal.lookup(plan)
            if record is not None:
                results[plan.index] = record.metrics
                resumed += 1
    todo = [p for p in plans if p.index not in results]

    def on_done(plan: CellPlan, metrics: RunMetrics) -> None:
        if cell_journal is not None:
            cell_journal.record_cell(plan, metrics)

    if fallback_reasons:
        detail = "; ".join(human for _, human in fallback_reasons)
        warnings.warn(
            f"run_grid(executor='auto') fell back to {resolved!r}: {detail}",
            ExecutorFallbackWarning,
            stacklevel=2,
        )
    timeout_enforced = timeout is None or hasattr(signal, "SIGALRM")
    if not timeout_enforced:
        _warn_timeout_unenforced()
    if registry is not None:
        registry.counter("grid.executor", {"path": resolved}).inc()
        for code, _ in fallback_reasons:
            registry.counter("grid.executor_fallback", {"reason": code}).inc()
        if timeout is not None:
            registry.gauge("grid.timeout_enforced").set(
                1.0 if timeout_enforced else 0.0
            )

    if resolved == "batched":
        retries = _execute_batched(
            todo,
            plans,
            results,
            on_done,
            cost_model=cost_model,
            splitter=splitter,
            n_jobs=n_jobs,
            timeout=timeout,
            chaos=chaos,
            retry=retry,
            registry=registry,
            kernel_backend=kernel_backend,
            sanitize=sanitize,
            journal=cell_journal,
        )
    elif resolved == "process":
        retries = _execute_process(
            todo,
            plans,
            results,
            on_done,
            cost_model=cost_model,
            splitter=splitter,
            n_jobs=n_jobs,
            timeout=timeout,
            chaos=chaos,
            retry=retry,
            registry=registry,
            sanitize=sanitize,
            journal=cell_journal,
        )
    else:
        retries = _execute_serial(
            todo,
            results,
            on_done,
            cost_model=cost_model,
            splitter=splitter,
            sanitize=sanitize,
        )

    records = [
        GridRecord(p.scheme.name, p.n_pes, p.total_work, results[p.index])
        for p in plans
    ]
    _fold_grid_metrics(registry, records, retries=retries, resumed=resumed)
    return records


def _execute_serial(
    todo: list[CellPlan],
    results: dict[int, RunMetrics],
    on_done: Callable[[CellPlan, RunMetrics], None],
    *,
    cost_model: CostModel | None,
    splitter: WorkSplitter | None,
    sanitize: bool,
) -> int:
    """The one-cell-at-a-time oracle path (journals as it goes)."""
    for plan in todo:
        metrics = run_divisible(
            plan.scheme,
            plan.total_work,
            plan.n_pes,
            cost_model=cost_model,
            splitter=splitter,
            seed=plan.seed,
            init_threshold=plan.init_threshold,
            sanitize=sanitize,
        )
        results[plan.index] = metrics
        on_done(plan, metrics)
    return 0


def _require_spec_named(plans: list[CellPlan], where: str) -> None:
    for plan in plans:
        try:
            make_scheme(plan.scheme.name)
        except ValueError:
            raise ConfigError(
                f"scheme {plan.scheme.name!r} cannot be rebuilt from its "
                f"spec; {where} supports spec-named schemes only — use the "
                "serial path"
            ) from None


def _execute_process(
    todo: list[CellPlan],
    plans: list[CellPlan],
    results: dict[int, RunMetrics],
    on_done: Callable[[CellPlan, RunMetrics], None],
    *,
    cost_model: CostModel | None,
    splitter: WorkSplitter | None,
    n_jobs: int | None,
    timeout: float | None,
    chaos: GridChaos | None,
    retry: RetryPolicy,
    registry: MetricsRegistry | None,
    sanitize: bool,
    journal: "CellJournal | None",
) -> int:
    """The per-cell process pool with retry, backoff and quarantine."""
    _require_spec_named(todo, "run_grid(n_jobs>1)")
    by_index = {p.index: p for p in todo}

    def payload_for(plan: CellPlan, attempt: int) -> tuple:
        return (
            plan.scheme.name,
            plan.total_work,
            plan.n_pes,
            plan.seed,
            cost_model,
            splitter,
            plan.init_threshold,
            sanitize,
            timeout,
            chaos,
            plan.index,
            attempt,
        )

    failures: list[GridFailure] = []
    attempts: dict[int, int] = {p.index: 0 for p in todo}
    pending = [p.index for p in todo]
    pool = ProcessPoolExecutor(max_workers=n_jobs)
    try:
        while pending:
            in_flight = {
                pool.submit(
                    _run_grid_cell, payload_for(by_index[idx], attempts[idx])
                ): idx
                for idx in pending
            }
            pending = []
            delays: list[float] = []
            pool_broken = False
            for fut in as_completed(in_flight):
                idx = in_flight[fut]
                plan = by_index[idx]
                try:
                    metrics = fut.result()
                    results[idx] = metrics
                    on_done(plan, metrics)
                    continue
                except BrokenProcessPool:
                    pool_broken = True
                    error = (
                        f"worker pool broke while cell {idx} "
                        f"({plan.scheme.name!r}, W={plan.total_work}, "
                        f"P={plan.n_pes}) was in flight"
                    )
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                attempts[idx] += 1
                if attempts[idx] > retry.max_retries:
                    failures.append(
                        GridFailure(
                            idx,
                            plan.scheme.name,
                            plan.n_pes,
                            plan.total_work,
                            attempts[idx],
                            error,
                        )
                    )
                else:
                    pending.append(idx)
                    delays.append(retry.delay(plan.seed, attempts[idx] - 1))
            if pool_broken:
                # A hard worker death poisons every future in the old
                # pool; respawn and let the requeued cells rerun with
                # their original seeds.
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=n_jobs)
            pending.sort()
            if pending and delays:
                # One sleep per resubmission round — the *decision* (how
                # long) came from RetryPolicy.delay, which is pure.
                time.sleep(max(delays))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    if failures:
        _raise_quarantine(
            plans, results, failures, retry.max_retries, registry, journal
        )
    return sum(attempts.values())


def _shard_plans(plans: list[CellPlan], n_shards: int) -> list[list[CellPlan]]:
    """Split plans into at most ``n_shards`` contiguous, near-equal chunks."""
    n_shards = max(1, min(n_shards, len(plans)))
    size, rem = divmod(len(plans), n_shards)
    shards: list[list[CellPlan]] = []
    start = 0
    for s in range(n_shards):
        stop = start + size + (1 if s < rem else 0)
        shards.append(plans[start:stop])
        start = stop
    return shards


def _execute_batched(
    todo: list[CellPlan],
    plans: list[CellPlan],
    results: dict[int, RunMetrics],
    on_done: Callable[[CellPlan, RunMetrics], None],
    *,
    cost_model: CostModel | None,
    splitter: WorkSplitter | None,
    n_jobs: int | None,
    timeout: float | None,
    chaos: GridChaos | None,
    retry: RetryPolicy,
    registry: MetricsRegistry | None,
    kernel_backend: str,
    sanitize: bool,
    journal: "CellJournal | None",
) -> int:
    """Execute planned cells through the mega-arena batched backend.

    Cells whose scheme the batched executor cannot replicate (opaque
    matcher/trigger factories) fall back to the serial oracle in index
    order; everything else advances in one :class:`MegaArena`.  With
    ``n_jobs > 1`` the batchable cells are split into contiguous
    *shards* — each worker process rebuilds its schemes once and packs
    its whole shard into one arena, so spawn/rebuild cost is paid per
    shard, not per cell.  When hardening (``timeout``/``chaos``) is
    requested the shard pool is always used (one shard without
    ``n_jobs``), so an injected ``os._exit`` kills a worker, never the
    parent, and the watchdog alarm runs in-worker.  A failed shard is
    retried whole with the same seeds after a deterministic backoff
    (records of a retried shard are identical to an undisturbed one);
    shards that exhaust the retry budget are quarantined with every
    completed record attached.
    """
    batchable = [p for p in todo if is_batchable(p.scheme)]
    fallback = [p for p in todo if not is_batchable(p.scheme)]
    retries = 0
    hardened = timeout is not None or chaos is not None
    pooled = bool(batchable) and (
        hardened or (n_jobs is not None and n_jobs > 1 and len(batchable) > 1)
    )

    if pooled:
        _require_spec_named(batchable, "sharded batched execution")
        n_shards = n_jobs if n_jobs is not None and n_jobs > 1 else 1
        shards = _shard_plans(batchable, n_shards)
        by_index = {p.index: p for p in batchable}

        def payload_for(shard: list[CellPlan], attempt: int) -> tuple:
            rows = [
                (
                    p.index,
                    p.scheme.name,
                    p.total_work,
                    p.n_pes,
                    p.seed,
                    p.init_threshold,
                )
                for p in shard
            ]
            return (
                rows,
                cost_model,
                splitter,
                kernel_backend,
                sanitize,
                timeout,
                chaos,
                attempt,
            )

        attempts = [0] * len(shards)
        pending = list(range(len(shards)))
        failures: list[GridFailure] = []
        pool = ProcessPoolExecutor(max_workers=n_shards)
        try:
            while pending:
                in_flight = {
                    pool.submit(
                        _run_grid_batch, payload_for(shards[s], attempts[s])
                    ): s
                    for s in pending
                }
                pending = []
                delays: list[float] = []
                pool_broken = False
                for fut in as_completed(in_flight):
                    s = in_flight[fut]
                    try:
                        for index, metrics in fut.result():
                            results[index] = metrics
                            on_done(by_index[index], metrics)
                        continue
                    except BrokenProcessPool:
                        pool_broken = True
                        error = f"worker pool broke while shard {s} was in flight"
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                    attempts[s] += 1
                    if attempts[s] > retry.max_retries:
                        failures.extend(
                            GridFailure(
                                p.index,
                                p.scheme.name,
                                p.n_pes,
                                p.total_work,
                                attempts[s],
                                error,
                            )
                            for p in shards[s]
                        )
                    else:
                        pending.append(s)
                        delays.append(
                            retry.delay(shards[s][0].seed, attempts[s] - 1)
                        )
                if pool_broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=n_shards)
                pending.sort()
                if pending and delays:
                    time.sleep(max(delays))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        retries = sum(attempts)

        if failures:
            _raise_quarantine(
                plans, results, failures, retry.max_retries, registry, journal
            )
    elif batchable:
        batch_results = run_batched_cells(
            batchable,
            cost_model=cost_model,
            splitter=splitter,
            sanitize=sanitize,
            kernel_backend=kernel_backend,
            on_cell_done=on_done,
        )
        results.update(batch_results)

    for plan in fallback:
        metrics = run_divisible(
            plan.scheme,
            plan.total_work,
            plan.n_pes,
            cost_model=cost_model,
            splitter=splitter,
            seed=plan.seed,
            init_threshold=plan.init_threshold,
            sanitize=sanitize,
        )
        results[plan.index] = metrics
        on_done(plan, metrics)
    return retries


def _fold_grid_metrics(
    registry: MetricsRegistry | None,
    records: list[GridRecord],
    *,
    retries: int,
    resumed: int = 0,
) -> None:
    """Record a finished grid into ``registry`` (parent process only).

    Workers cannot share a registry object across process boundaries, so
    every execution path folds the returned records here, in index order
    — serial and parallel grids produce identical snapshots.
    """
    if registry is None:
        return
    registry.counter("grid.cells_total").inc(len(records))
    registry.counter("grid.retries_total").inc(retries)
    if resumed:
        registry.counter("grid.resumed_cells").inc(resumed)
    for record in records:
        record_run(registry, record.metrics)
