"""Run helpers: single scheduled runs and (scheme, W, P) grids.

A :class:`Scale` bundles the machine size and the four problem sizes of
the paper's Table 2.  ``PAPER_SCALE`` is the CM-2 configuration verbatim
(P = 8192, W up to 1.61e7 — fully affordable on the vectorized divisible
workload); ``SMALL_SCALE`` divides both by 16 for quick test runs, and
``TINY_SCALE`` is for unit tests.
"""

from __future__ import annotations

import signal
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.config import Scheme, make_scheme, parse_scheme_spec
from repro.core.metrics import RunMetrics
from repro.core.scheduler import Scheduler
from repro.core.splitting import WorkSplitter
from repro.errors import ConfigError, GridCellError
from repro.faults import CheckpointConfig, FaultPlan, GridChaos
from repro.obs import Observability
from repro.obs.registry import MetricsRegistry, record_run
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine
from repro.util.rng import spawn_child
from repro.workmodel.divisible import DivisibleWorkload

__all__ = [
    "Scale",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TINY_SCALE",
    "GridRecord",
    "GridFailure",
    "cell_seed",
    "run_divisible",
    "run_grid",
    "default_init_threshold",
]


@dataclass(frozen=True)
class Scale:
    """An experiment scale: machine size and the four Table 2 work sizes."""

    name: str
    n_pes: int
    works: tuple[int, int, int, int]
    table5_work: int

    @property
    def largest_work(self) -> int:
        return self.works[-1]


#: The paper's CM-2 configuration (Section 5): 8192 processors, the four
#: 15-puzzle problem sizes of Table 2, and Table 5's W = 2067137.
PAPER_SCALE = Scale(
    "paper", 8192, (941_852, 3_055_171, 6_073_623, 16_110_463), 2_067_137
)

#: Everything divided by 16 — same W/P ratios, 16x faster runs.
SMALL_SCALE = Scale("small", 512, (58_866, 190_948, 379_601, 1_006_904), 129_196)

#: Unit-test scale.
TINY_SCALE = Scale("tiny", 64, (7_358, 23_868, 47_450, 125_863), 16_149)

SCALES = {s.name: s for s in (PAPER_SCALE, SMALL_SCALE, TINY_SCALE)}


def default_init_threshold(scheme: Scheme | str) -> float | None:
    """Section 7's convention: dynamic triggers get the S^0.85 initial
    distribution phase; static triggers start cold."""
    spec = scheme.name if isinstance(scheme, Scheme) else scheme
    try:
        _, trig, _ = parse_scheme_spec(spec)
    except ValueError:
        # Baseline schemes (FESS, ...) distribute on their own trigger.
        return None
    return 0.85 if trig in ("DP", "DK") else None


@dataclass(frozen=True)
class GridRecord:
    """One cell of a run grid."""

    scheme: str
    n_pes: int
    total_work: int
    metrics: RunMetrics

    @property
    def efficiency(self) -> float:
        return self.metrics.efficiency


def run_divisible(
    scheme: Scheme | str,
    total_work: int,
    n_pes: int,
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    seed: int = 0,
    init_threshold: float | None | str = "auto",
    initial: str = "root",
    trace: bool = False,
    max_cycles: int | None = None,
    faults: "FaultPlan | None" = None,
    checkpoint: "CheckpointConfig | None" = None,
    sanitize: bool = False,
    obs: Observability | None = None,
) -> RunMetrics:
    """One scheduled run of a scheme over a divisible workload.

    ``init_threshold="auto"`` applies the paper's convention (0.85 for
    dynamic triggers, none for static); pass ``None`` or a float to
    override.  ``faults`` injects a deterministic
    :class:`~repro.faults.FaultPlan`; ``checkpoint`` periodically
    serializes the run (see :mod:`repro.faults.checkpoint`); ``obs``
    attaches an :class:`~repro.obs.Observability` bundle (typed events,
    metrics, profiling — observation never changes the run, and the
    final metrics are folded into ``obs.metrics`` when present).
    """
    if init_threshold == "auto":
        init_threshold = default_init_threshold(scheme)
    workload = DivisibleWorkload(
        total_work, n_pes, splitter=splitter, rng=seed, initial=initial
    )
    machine = SimdMachine(n_pes, cost_model if cost_model is not None else CostModel())
    scheduler = Scheduler(
        workload,
        machine,
        scheme,
        init_threshold=init_threshold,
        trace=trace,
        max_cycles=max_cycles,
        faults=faults,
        checkpoint=checkpoint,
        sanitize=sanitize,
        obs=obs,
    )
    metrics = scheduler.run()
    if obs is not None and obs.metrics is not None:
        record_run(obs.metrics, metrics)
    return metrics


def cell_seed(base_seed: int, index: int) -> int:
    """The deterministic seed of grid cell ``index``.

    Derived from ``spawn_child(base_seed, index)`` — a pure function of
    ``(base_seed, index)`` independent of process, platform, and of which
    other cells run — so serial and process-parallel grids see identical
    streams.  ``index`` enumerates cells in **scheme-major order**: the
    nested loops run ``for scheme: for n_pes: for total_work``, i.e.
    ``index = (i_scheme * len(pes) + i_pes) * len(works) + i_work``.
    The regression suite asserts this order so parallelization can never
    silently reshuffle seeds.
    """
    return int(spawn_child(base_seed, index).integers(0, 2**31 - 1))


@dataclass(frozen=True)
class GridFailure:
    """One grid cell that exhausted its retries."""

    index: int
    scheme: str
    n_pes: int
    total_work: int
    attempts: int
    error: str


def _run_grid_cell(
    payload: tuple,
) -> RunMetrics:
    """One grid cell, picklable for ``ProcessPoolExecutor`` workers.

    Schemes travel as spec strings (Scheme factories close over locals
    and do not pickle) and are rebuilt with ``make_scheme`` in the
    worker; the cost model and splitter pickle as-is.

    The per-cell ``timeout`` is enforced *inside* the worker with
    ``SIGALRM`` (POSIX only; silently unenforced elsewhere) so a wedged
    cell surfaces as a retryable :class:`~repro.errors.GridCellError`
    instead of stalling the whole pool.  ``chaos`` is the deterministic
    crash hook for the hardening tests; ``attempt`` rides along so chaos
    can fire on attempt 0 and let the retry succeed.
    """
    (
        spec,
        total_work,
        n_pes,
        seed,
        cost_model,
        splitter,
        init_threshold,
        timeout,
        chaos,
        index,
        attempt,
    ) = payload
    if chaos is not None:
        chaos.maybe_trigger(index, attempt)

    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    if use_alarm:

        def _on_alarm(signum: int, frame: object) -> None:
            raise GridCellError(
                f"grid cell {index} ({spec!r}, W={total_work}, P={n_pes}) "
                f"timed out after {timeout}s"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return run_divisible(
            make_scheme(spec),
            total_work,
            n_pes,
            cost_model=cost_model,
            splitter=splitter,
            seed=seed,
            init_threshold=init_threshold,
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def run_grid(
    schemes: list[Scheme | str],
    works: list[int],
    pes: list[int],
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    base_seed: int = 0,
    init_threshold: float | None | str = "auto",
    n_jobs: int | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    chaos: GridChaos | None = None,
    registry: MetricsRegistry | None = None,
) -> list[GridRecord]:
    """The full cross product of schemes x W x P (Figure 4/7 grids).

    Each cell gets the deterministic child seed :func:`cell_seed`
    ``(base_seed, index)`` with ``index`` in scheme-major order (see
    there), so cells are reproducible independently of grid shape and of
    how the grid is executed.

    ``n_jobs`` runs cells in worker processes (``concurrent.futures``);
    ``None`` or ``1`` keeps the serial path.  Results are returned in the
    same scheme-major order with the same per-cell seeds either way, so a
    parallel grid is record-for-record identical to a serial one.
    Parallel execution requires every scheme's name to round-trip through
    ``make_scheme`` (all Table 1 schemes do; baseline schemes with
    opaque factories must use the serial path).

    The parallel path is hardened against worker failure:

    - ``timeout`` bounds each cell's wall-clock seconds (enforced
      in-worker via ``SIGALRM`` on POSIX);
    - a cell that raises, times out, or loses its worker is retried up
      to ``max_retries`` times **with the same** :func:`cell_seed`, so a
      retried cell's record is identical to an undisturbed one;
    - a ``BrokenProcessPool`` (worker killed hard) respawns the pool and
      requeues every unfinished in-flight cell, each charged one
      attempt and reported with its ``(scheme, W, P)`` coordinates;
    - cells that exhaust their retries are collected into
      :class:`GridFailure` records and raised together as one
      :class:`~repro.errors.GridCellError` with a structured report.

    ``chaos`` injects deterministic worker crashes (exit/raise/hang) for
    testing this machinery; see :class:`repro.faults.chaos.GridChaos`.

    ``registry`` folds every cell's metrics into a
    :class:`~repro.obs.registry.MetricsRegistry` (plus ``grid.cells_total``
    and ``grid.retries_total`` counters).  Recording happens in the
    parent process in cell-index order on both execution paths, so a
    parallel grid's snapshot is identical to a serial one's.
    """
    if max_retries < 0:
        raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigError(f"timeout must be positive, got {timeout}")
    grid_schemes = [make_scheme(s) if isinstance(s, str) else s for s in schemes]
    cells: list[tuple[Scheme, int, int, int]] = []
    index = 0
    for scheme in grid_schemes:
        for n_pes in pes:
            for total_work in works:
                cells.append((scheme, n_pes, total_work, cell_seed(base_seed, index)))
                index += 1

    if n_jobs is not None and n_jobs > 1:
        for scheme, _, _, _ in cells:
            try:
                make_scheme(scheme.name)
            except ValueError:
                raise ConfigError(
                    f"scheme {scheme.name!r} cannot be rebuilt from its spec; "
                    "run_grid(n_jobs>1) supports spec-named schemes only — "
                    "use the serial path"
                ) from None

        def payload_for(idx: int, attempt: int) -> tuple:
            scheme, n_pes, total_work, seed = cells[idx]
            return (
                scheme.name,
                total_work,
                n_pes,
                seed,
                cost_model,
                splitter,
                init_threshold,
                timeout,
                chaos,
                idx,
                attempt,
            )

        results: dict[int, RunMetrics] = {}
        failures: list[GridFailure] = []
        attempts = [0] * len(cells)
        pending = list(range(len(cells)))
        pool = ProcessPoolExecutor(max_workers=n_jobs)
        try:
            while pending:
                in_flight = {
                    pool.submit(_run_grid_cell, payload_for(idx, attempts[idx])): idx
                    for idx in pending
                }
                pending = []
                pool_broken = False
                for fut in as_completed(in_flight):
                    idx = in_flight[fut]
                    scheme, n_pes, total_work, _ = cells[idx]
                    try:
                        results[idx] = fut.result()
                        continue
                    except BrokenProcessPool:
                        pool_broken = True
                        error = (
                            f"worker pool broke while cell {idx} "
                            f"({scheme.name!r}, W={total_work}, P={n_pes}) "
                            "was in flight"
                        )
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                    attempts[idx] += 1
                    if attempts[idx] > max_retries:
                        failures.append(
                            GridFailure(
                                idx,
                                scheme.name,
                                n_pes,
                                total_work,
                                attempts[idx],
                                error,
                            )
                        )
                    else:
                        pending.append(idx)
                if pool_broken:
                    # A hard worker death poisons every future in the old
                    # pool; respawn and let the requeued cells rerun with
                    # their original seeds.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=n_jobs)
                pending.sort()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        if failures:
            failures.sort(key=lambda f: f.index)
            lines = [
                f"run_grid: {len(failures)} of {len(cells)} cells failed "
                f"after {max_retries} retries:"
            ]
            lines += [
                f"  cell {f.index}: scheme={f.scheme!r} W={f.total_work} "
                f"P={f.n_pes} attempts={f.attempts} last_error={f.error}"
                for f in failures
            ]
            raise GridCellError("\n".join(lines), failures=tuple(failures))
        records = [
            GridRecord(scheme.name, n_pes, total_work, results[idx])
            for idx, (scheme, n_pes, total_work, _) in enumerate(cells)
        ]
        _fold_grid_metrics(registry, records, retries=sum(attempts))
        return records

    records: list[GridRecord] = []
    for scheme, n_pes, total_work, seed in cells:
        metrics = run_divisible(
            scheme,
            total_work,
            n_pes,
            cost_model=cost_model,
            splitter=splitter,
            seed=seed,
            init_threshold=init_threshold,
        )
        records.append(GridRecord(scheme.name, n_pes, total_work, metrics))
    _fold_grid_metrics(registry, records, retries=0)
    return records


def _fold_grid_metrics(
    registry: MetricsRegistry | None, records: list[GridRecord], *, retries: int
) -> None:
    """Record a finished grid into ``registry`` (parent process only).

    Workers cannot share a registry object across process boundaries, so
    both execution paths fold the returned records here, in index order
    — serial and parallel grids produce identical snapshots.
    """
    if registry is None:
        return
    registry.counter("grid.cells_total").inc(len(records))
    registry.counter("grid.retries_total").inc(retries)
    for record in records:
        record_run(registry, record.metrics)
