"""Run helpers: single scheduled runs and (scheme, W, P) grids.

A :class:`Scale` bundles the machine size and the four problem sizes of
the paper's Table 2.  ``PAPER_SCALE`` is the CM-2 configuration verbatim
(P = 8192, W up to 1.61e7 — fully affordable on the vectorized divisible
workload); ``SMALL_SCALE`` divides both by 16 for quick test runs, and
``TINY_SCALE`` is for unit tests.
"""

from __future__ import annotations

import signal
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.config import Scheme, make_scheme, parse_scheme_spec
from repro.core.metrics import RunMetrics
from repro.core.scheduler import Scheduler
from repro.core.splitting import WorkSplitter
from repro.errors import ConfigError, GridCellError
from repro.experiments.batched import CellPlan, is_batchable, run_batched_cells
from repro.faults import CheckpointConfig, FaultPlan, GridChaos
from repro.obs import Observability
from repro.obs.registry import MetricsRegistry, record_run
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine
from repro.util.rng import spawn_child
from repro.workmodel.divisible import DivisibleWorkload

__all__ = [
    "Scale",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TINY_SCALE",
    "GridRecord",
    "GridFailure",
    "GRID_EXECUTORS",
    "cell_seed",
    "plan_grid",
    "run_divisible",
    "run_grid",
    "default_init_threshold",
]

#: Accepted ``run_grid(executor=...)`` values.  ``"auto"`` picks the
#: batched executor whenever every cell supports it and no per-cell
#: hardening (chaos / timeout) was requested, falling back to the
#: process pool (``n_jobs > 1``) or the serial loop otherwise.
GRID_EXECUTORS = ("auto", "serial", "process", "batched")


@dataclass(frozen=True)
class Scale:
    """An experiment scale: machine size and the four Table 2 work sizes."""

    name: str
    n_pes: int
    works: tuple[int, int, int, int]
    table5_work: int

    @property
    def largest_work(self) -> int:
        return self.works[-1]


#: The paper's CM-2 configuration (Section 5): 8192 processors, the four
#: 15-puzzle problem sizes of Table 2, and Table 5's W = 2067137.
PAPER_SCALE = Scale(
    "paper", 8192, (941_852, 3_055_171, 6_073_623, 16_110_463), 2_067_137
)

#: Everything divided by 16 — same W/P ratios, 16x faster runs.
SMALL_SCALE = Scale("small", 512, (58_866, 190_948, 379_601, 1_006_904), 129_196)

#: Unit-test scale.
TINY_SCALE = Scale("tiny", 64, (7_358, 23_868, 47_450, 125_863), 16_149)

SCALES = {s.name: s for s in (PAPER_SCALE, SMALL_SCALE, TINY_SCALE)}


def default_init_threshold(scheme: Scheme | str) -> float | None:
    """Section 7's convention: dynamic triggers get the S^0.85 initial
    distribution phase; static triggers start cold."""
    spec = scheme.name if isinstance(scheme, Scheme) else scheme
    try:
        _, trig, _ = parse_scheme_spec(spec)
    except ValueError:
        # Baseline schemes (FESS, ...) distribute on their own trigger.
        return None
    return 0.85 if trig in ("DP", "DK") else None


@dataclass(frozen=True)
class GridRecord:
    """One cell of a run grid."""

    scheme: str
    n_pes: int
    total_work: int
    metrics: RunMetrics

    @property
    def efficiency(self) -> float:
        return self.metrics.efficiency


def run_divisible(
    scheme: Scheme | str,
    total_work: int,
    n_pes: int,
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    seed: int = 0,
    init_threshold: float | None | str = "auto",
    initial: str = "root",
    trace: bool = False,
    max_cycles: int | None = None,
    faults: "FaultPlan | None" = None,
    checkpoint: "CheckpointConfig | None" = None,
    sanitize: bool = False,
    obs: Observability | None = None,
) -> RunMetrics:
    """One scheduled run of a scheme over a divisible workload.

    ``init_threshold="auto"`` applies the paper's convention (0.85 for
    dynamic triggers, none for static); pass ``None`` or a float to
    override.  ``faults`` injects a deterministic
    :class:`~repro.faults.FaultPlan`; ``checkpoint`` periodically
    serializes the run (see :mod:`repro.faults.checkpoint`); ``obs``
    attaches an :class:`~repro.obs.Observability` bundle (typed events,
    metrics, profiling — observation never changes the run, and the
    final metrics are folded into ``obs.metrics`` when present).
    """
    if init_threshold == "auto":
        init_threshold = default_init_threshold(scheme)
    workload = DivisibleWorkload(
        total_work, n_pes, splitter=splitter, rng=seed, initial=initial
    )
    machine = SimdMachine(n_pes, cost_model if cost_model is not None else CostModel())
    scheduler = Scheduler(
        workload,
        machine,
        scheme,
        init_threshold=init_threshold,
        trace=trace,
        max_cycles=max_cycles,
        faults=faults,
        checkpoint=checkpoint,
        sanitize=sanitize,
        obs=obs,
    )
    metrics = scheduler.run()
    if obs is not None and obs.metrics is not None:
        record_run(obs.metrics, metrics)
    return metrics


def cell_seed(base_seed: int, index: int) -> int:
    """The deterministic seed of grid cell ``index``.

    Derived from ``spawn_child(base_seed, index)`` — a pure function of
    ``(base_seed, index)`` independent of process, platform, and of which
    other cells run — so serial and process-parallel grids see identical
    streams.  ``index`` enumerates cells in **scheme-major order**: the
    nested loops run ``for scheme: for n_pes: for total_work``, i.e.
    ``index = (i_scheme * len(pes) + i_pes) * len(works) + i_work``.
    The regression suite asserts this order so parallelization can never
    silently reshuffle seeds.
    """
    return int(spawn_child(base_seed, index).integers(0, 2**31 - 1))


@dataclass(frozen=True)
class GridFailure:
    """One grid cell that exhausted its retries."""

    index: int
    scheme: str
    n_pes: int
    total_work: int
    attempts: int
    error: str


def _run_grid_cell(
    payload: tuple,
) -> RunMetrics:
    """One grid cell, picklable for ``ProcessPoolExecutor`` workers.

    Schemes travel as spec strings (Scheme factories close over locals
    and do not pickle) and are rebuilt with ``make_scheme`` in the
    worker; the cost model and splitter pickle as-is.

    The per-cell ``timeout`` is enforced *inside* the worker with
    ``SIGALRM`` (POSIX only; silently unenforced elsewhere) so a wedged
    cell surfaces as a retryable :class:`~repro.errors.GridCellError`
    instead of stalling the whole pool.  ``chaos`` is the deterministic
    crash hook for the hardening tests; ``attempt`` rides along so chaos
    can fire on attempt 0 and let the retry succeed.
    """
    (
        spec,
        total_work,
        n_pes,
        seed,
        cost_model,
        splitter,
        init_threshold,
        timeout,
        chaos,
        index,
        attempt,
    ) = payload
    if chaos is not None:
        chaos.maybe_trigger(index, attempt)

    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    if use_alarm:

        def _on_alarm(signum: int, frame: object) -> None:
            raise GridCellError(
                f"grid cell {index} ({spec!r}, W={total_work}, P={n_pes}) "
                f"timed out after {timeout}s"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return run_divisible(
            make_scheme(spec),
            total_work,
            n_pes,
            cost_model=cost_model,
            splitter=splitter,
            seed=seed,
            init_threshold=init_threshold,
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def plan_grid(
    schemes: list[Scheme | str],
    works: list[int],
    pes: list[int],
    *,
    base_seed: int = 0,
    init_threshold: float | None | str = "auto",
) -> list[CellPlan]:
    """The planning pass: enumerate grid cells as executable CellPlans.

    Cells come back in scheme-major order with their deterministic
    :func:`cell_seed` and the init threshold already resolved (the
    ``"auto"`` convention applied per scheme), so every executor —
    serial, process-pooled, batched, sharded — starts from the same
    plan and cannot disagree about seeds or thresholds.
    """
    grid_schemes = [make_scheme(s) if isinstance(s, str) else s for s in schemes]
    plans: list[CellPlan] = []
    index = 0
    for scheme in grid_schemes:
        threshold = (
            default_init_threshold(scheme)
            if init_threshold == "auto"
            else init_threshold
        )
        for n_pes in pes:
            for total_work in works:
                plans.append(
                    CellPlan(
                        index=index,
                        scheme=scheme,
                        n_pes=n_pes,
                        total_work=total_work,
                        seed=cell_seed(base_seed, index),
                        init_threshold=threshold,
                    )
                )
                index += 1
    return plans


def _run_grid_batch(payload: tuple) -> list[tuple[int, RunMetrics]]:
    """One shard of planned cells, picklable for pool workers.

    Unlike the per-cell worker above, a shard carries *many* cells and
    rebuilds its schemes (spec strings) and MegaArena once — the spawn
    and rebuild cost is amortized over the whole batch.
    """
    shard, cost_model, splitter, kernel_backend = payload
    plans = [
        CellPlan(
            index=index,
            scheme=make_scheme(spec),
            n_pes=n_pes,
            total_work=total_work,
            seed=seed,
            init_threshold=threshold,
        )
        for (index, spec, total_work, n_pes, seed, threshold) in shard
    ]
    results = run_batched_cells(
        plans,
        cost_model=cost_model,
        splitter=splitter,
        kernel_backend=kernel_backend,
    )
    return sorted(results.items())


def _resolve_executor(
    executor: str,
    plans: list[CellPlan],
    n_jobs: int | None,
    timeout: float | None,
    chaos: GridChaos | None,
) -> str:
    """Pick the concrete execution path for this grid."""
    if executor not in GRID_EXECUTORS:
        raise ConfigError(
            f"executor must be one of {GRID_EXECUTORS}, got {executor!r}"
        )
    if executor == "batched" and (timeout is not None or chaos is not None):
        raise ConfigError(
            "executor='batched' does not support per-cell timeout/chaos "
            "hardening; use executor='process'"
        )
    if executor == "process" and not (n_jobs is not None and n_jobs > 1):
        raise ConfigError("executor='process' requires n_jobs > 1")
    if executor != "auto":
        return executor
    if timeout is None and chaos is None and all(
        is_batchable(p.scheme) for p in plans
    ):
        return "batched"
    return "process" if n_jobs is not None and n_jobs > 1 else "serial"


def run_grid(
    schemes: list[Scheme | str],
    works: list[int],
    pes: list[int],
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    base_seed: int = 0,
    init_threshold: float | None | str = "auto",
    n_jobs: int | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    chaos: GridChaos | None = None,
    registry: MetricsRegistry | None = None,
    executor: str = "auto",
    kernel_backend: str = "numpy",
) -> list[GridRecord]:
    """The full cross product of schemes x W x P (Figure 4/7 grids).

    Each cell gets the deterministic child seed :func:`cell_seed`
    ``(base_seed, index)`` with ``index`` in scheme-major order (see
    there), so cells are reproducible independently of grid shape and of
    how the grid is executed.

    ``n_jobs`` enables worker processes (``concurrent.futures``): whole
    cells on the ``"process"`` path, contiguous *shards* of cells on the
    ``"batched"`` path.  Results are returned in the same scheme-major
    order with the same per-cell seeds on every path, so all executors
    are record-for-record identical.  Multi-process execution requires
    every scheme's name to round-trip through ``make_scheme`` (all
    Table 1 schemes do; baseline schemes with opaque factories must use
    the serial path).

    The parallel path is hardened against worker failure:

    - ``timeout`` bounds each cell's wall-clock seconds (enforced
      in-worker via ``SIGALRM`` on POSIX);
    - a cell that raises, times out, or loses its worker is retried up
      to ``max_retries`` times **with the same** :func:`cell_seed`, so a
      retried cell's record is identical to an undisturbed one;
    - a ``BrokenProcessPool`` (worker killed hard) respawns the pool and
      requeues every unfinished in-flight cell, each charged one
      attempt and reported with its ``(scheme, W, P)`` coordinates;
    - cells that exhaust their retries are collected into
      :class:`GridFailure` records and raised together as one
      :class:`~repro.errors.GridCellError` with a structured report.

    ``chaos`` injects deterministic worker crashes (exit/raise/hang) for
    testing this machinery; see :class:`repro.faults.chaos.GridChaos`.

    ``registry`` folds every cell's metrics into a
    :class:`~repro.obs.registry.MetricsRegistry` (plus ``grid.cells_total``
    and ``grid.retries_total`` counters).  Recording happens in the
    parent process in cell-index order on every execution path, so all
    executors produce identical snapshots.

    ``executor`` selects the execution strategy (:data:`GRID_EXECUTORS`):
    ``"batched"`` packs every compatible cell into one
    :class:`~repro.workmodel.mega.MegaArena` and advances all of them
    with single full-width kernel calls (record-identical to serial;
    with ``n_jobs > 1`` processes shard *batches* of cells, amortizing
    spawn/rebuild); ``"process"`` is the per-cell pool; ``"serial"``
    forces the one-cell-at-a-time oracle; ``"auto"`` (default) picks
    batched whenever every cell supports it and no per-cell hardening
    (``timeout``/``chaos``) was requested.

    ``kernel_backend`` selects the kernel tier the batched executor's
    mega-arena and matchers run on (``"numpy"`` reference by default,
    ``"fused"``/``"jit"``/``"auto"`` — see :mod:`repro.kernels`); the
    serial and process paths ignore it, and every tier is
    record-identical.
    """
    if max_retries < 0:
        raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigError(f"timeout must be positive, got {timeout}")
    plans = plan_grid(
        schemes, works, pes, base_seed=base_seed, init_threshold=init_threshold
    )
    cells = [(p.scheme, p.n_pes, p.total_work, p.seed) for p in plans]
    resolved = _resolve_executor(executor, plans, n_jobs, timeout, chaos)

    if resolved == "batched":
        return _run_grid_batched(
            plans,
            cost_model=cost_model,
            splitter=splitter,
            n_jobs=n_jobs,
            max_retries=max_retries,
            registry=registry,
            kernel_backend=kernel_backend,
        )

    if resolved == "process":
        for scheme, _, _, _ in cells:
            try:
                make_scheme(scheme.name)
            except ValueError:
                raise ConfigError(
                    f"scheme {scheme.name!r} cannot be rebuilt from its spec; "
                    "run_grid(n_jobs>1) supports spec-named schemes only — "
                    "use the serial path"
                ) from None

        def payload_for(idx: int, attempt: int) -> tuple:
            scheme, n_pes, total_work, seed = cells[idx]
            return (
                scheme.name,
                total_work,
                n_pes,
                seed,
                cost_model,
                splitter,
                init_threshold,
                timeout,
                chaos,
                idx,
                attempt,
            )

        results: dict[int, RunMetrics] = {}
        failures: list[GridFailure] = []
        attempts = [0] * len(cells)
        pending = list(range(len(cells)))
        pool = ProcessPoolExecutor(max_workers=n_jobs)
        try:
            while pending:
                in_flight = {
                    pool.submit(_run_grid_cell, payload_for(idx, attempts[idx])): idx
                    for idx in pending
                }
                pending = []
                pool_broken = False
                for fut in as_completed(in_flight):
                    idx = in_flight[fut]
                    scheme, n_pes, total_work, _ = cells[idx]
                    try:
                        results[idx] = fut.result()
                        continue
                    except BrokenProcessPool:
                        pool_broken = True
                        error = (
                            f"worker pool broke while cell {idx} "
                            f"({scheme.name!r}, W={total_work}, P={n_pes}) "
                            "was in flight"
                        )
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                    attempts[idx] += 1
                    if attempts[idx] > max_retries:
                        failures.append(
                            GridFailure(
                                idx,
                                scheme.name,
                                n_pes,
                                total_work,
                                attempts[idx],
                                error,
                            )
                        )
                    else:
                        pending.append(idx)
                if pool_broken:
                    # A hard worker death poisons every future in the old
                    # pool; respawn and let the requeued cells rerun with
                    # their original seeds.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=n_jobs)
                pending.sort()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        if failures:
            failures.sort(key=lambda f: f.index)
            lines = [
                f"run_grid: {len(failures)} of {len(cells)} cells failed "
                f"after {max_retries} retries:"
            ]
            lines += [
                f"  cell {f.index}: scheme={f.scheme!r} W={f.total_work} "
                f"P={f.n_pes} attempts={f.attempts} last_error={f.error}"
                for f in failures
            ]
            raise GridCellError("\n".join(lines), failures=tuple(failures))
        records = [
            GridRecord(scheme.name, n_pes, total_work, results[idx])
            for idx, (scheme, n_pes, total_work, _) in enumerate(cells)
        ]
        _fold_grid_metrics(registry, records, retries=sum(attempts))
        return records

    records: list[GridRecord] = []
    for scheme, n_pes, total_work, seed in cells:
        metrics = run_divisible(
            scheme,
            total_work,
            n_pes,
            cost_model=cost_model,
            splitter=splitter,
            seed=seed,
            init_threshold=init_threshold,
        )
        records.append(GridRecord(scheme.name, n_pes, total_work, metrics))
    _fold_grid_metrics(registry, records, retries=0)
    return records


def _shard_plans(plans: list[CellPlan], n_shards: int) -> list[list[CellPlan]]:
    """Split plans into at most ``n_shards`` contiguous, near-equal chunks."""
    n_shards = max(1, min(n_shards, len(plans)))
    size, rem = divmod(len(plans), n_shards)
    shards: list[list[CellPlan]] = []
    start = 0
    for s in range(n_shards):
        stop = start + size + (1 if s < rem else 0)
        shards.append(plans[start:stop])
        start = stop
    return shards


def _run_grid_batched(
    plans: list[CellPlan],
    *,
    cost_model: CostModel | None,
    splitter: WorkSplitter | None,
    n_jobs: int | None,
    max_retries: int,
    registry: MetricsRegistry | None,
    kernel_backend: str = "numpy",
) -> list[GridRecord]:
    """Execute planned cells through the mega-arena batched backend.

    Cells whose scheme the batched executor cannot replicate (opaque
    matcher/trigger factories) fall back to the serial oracle in index
    order; everything else advances in one :class:`MegaArena`.  With
    ``n_jobs > 1`` the batchable cells are split into contiguous
    *shards* — each worker process rebuilds its schemes once and packs
    its whole shard into one arena, so spawn/rebuild cost is paid per
    shard, not per cell.  A failed shard is retried whole with the same
    seeds (records of a retried shard are identical to an undisturbed
    one); shards that exhaust ``max_retries`` raise
    :class:`~repro.errors.GridCellError` listing every cell.
    """
    batchable = [p for p in plans if is_batchable(p.scheme)]
    fallback = [p for p in plans if not is_batchable(p.scheme)]
    results: dict[int, RunMetrics] = {}
    retries = 0

    if batchable and n_jobs is not None and n_jobs > 1 and len(batchable) > 1:
        for plan in batchable:
            try:
                make_scheme(plan.scheme.name)
            except ValueError:
                raise ConfigError(
                    f"scheme {plan.scheme.name!r} cannot be rebuilt from its "
                    "spec; sharded batched execution supports spec-named "
                    "schemes only — use the serial path"
                ) from None
        shards = _shard_plans(batchable, n_jobs)

        def payload_for(shard: list[CellPlan]) -> tuple:
            rows = [
                (
                    p.index,
                    p.scheme.name,
                    p.total_work,
                    p.n_pes,
                    p.seed,
                    p.init_threshold,
                )
                for p in shard
            ]
            return (rows, cost_model, splitter, kernel_backend)

        attempts = [0] * len(shards)
        pending = list(range(len(shards)))
        failures: list[GridFailure] = []
        pool = ProcessPoolExecutor(max_workers=n_jobs)
        try:
            while pending:
                in_flight = {
                    pool.submit(_run_grid_batch, payload_for(shards[s])): s
                    for s in pending
                }
                pending = []
                pool_broken = False
                for fut in as_completed(in_flight):
                    s = in_flight[fut]
                    try:
                        results.update(fut.result())
                        continue
                    except BrokenProcessPool:
                        pool_broken = True
                        error = f"worker pool broke while shard {s} was in flight"
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                    attempts[s] += 1
                    if attempts[s] > max_retries:
                        failures.extend(
                            GridFailure(
                                p.index,
                                p.scheme.name,
                                p.n_pes,
                                p.total_work,
                                attempts[s],
                                error,
                            )
                            for p in shards[s]
                        )
                    else:
                        pending.append(s)
                if pool_broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=n_jobs)
                pending.sort()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        retries = sum(attempts)

        if failures:
            failures.sort(key=lambda f: f.index)
            lines = [
                f"run_grid: {len(failures)} of {len(plans)} cells failed "
                f"after {max_retries} retries:"
            ]
            lines += [
                f"  cell {f.index}: scheme={f.scheme!r} W={f.total_work} "
                f"P={f.n_pes} attempts={f.attempts} last_error={f.error}"
                for f in failures
            ]
            raise GridCellError("\n".join(lines), failures=tuple(failures))
    elif batchable:
        results.update(
            run_batched_cells(
                batchable,
                cost_model=cost_model,
                splitter=splitter,
                kernel_backend=kernel_backend,
            )
        )

    for plan in fallback:
        results[plan.index] = run_divisible(
            plan.scheme,
            plan.total_work,
            plan.n_pes,
            cost_model=cost_model,
            splitter=splitter,
            seed=plan.seed,
            init_threshold=plan.init_threshold,
        )

    records = [
        GridRecord(p.scheme.name, p.n_pes, p.total_work, results[p.index])
        for p in plans
    ]
    _fold_grid_metrics(registry, records, retries=retries)
    return records


def _fold_grid_metrics(
    registry: MetricsRegistry | None, records: list[GridRecord], *, retries: int
) -> None:
    """Record a finished grid into ``registry`` (parent process only).

    Workers cannot share a registry object across process boundaries, so
    both execution paths fold the returned records here, in index order
    — serial and parallel grids produce identical snapshots.
    """
    if registry is None:
        return
    registry.counter("grid.cells_total").inc(len(records))
    registry.counter("grid.retries_total").inc(retries)
    for record in records:
        record_run(registry, record.metrics)
