"""Run helpers: single scheduled runs and (scheme, W, P) grids.

A :class:`Scale` bundles the machine size and the four problem sizes of
the paper's Table 2.  ``PAPER_SCALE`` is the CM-2 configuration verbatim
(P = 8192, W up to 1.61e7 — fully affordable on the vectorized divisible
workload); ``SMALL_SCALE`` divides both by 16 for quick test runs, and
``TINY_SCALE`` is for unit tests.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.config import Scheme, make_scheme, parse_scheme_spec
from repro.core.metrics import RunMetrics
from repro.core.scheduler import Scheduler
from repro.core.splitting import WorkSplitter
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine
from repro.util.rng import spawn_child
from repro.workmodel.divisible import DivisibleWorkload

__all__ = [
    "Scale",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TINY_SCALE",
    "GridRecord",
    "cell_seed",
    "run_divisible",
    "run_grid",
    "default_init_threshold",
]


@dataclass(frozen=True)
class Scale:
    """An experiment scale: machine size and the four Table 2 work sizes."""

    name: str
    n_pes: int
    works: tuple[int, int, int, int]
    table5_work: int

    @property
    def largest_work(self) -> int:
        return self.works[-1]


#: The paper's CM-2 configuration (Section 5): 8192 processors, the four
#: 15-puzzle problem sizes of Table 2, and Table 5's W = 2067137.
PAPER_SCALE = Scale(
    "paper", 8192, (941_852, 3_055_171, 6_073_623, 16_110_463), 2_067_137
)

#: Everything divided by 16 — same W/P ratios, 16x faster runs.
SMALL_SCALE = Scale("small", 512, (58_866, 190_948, 379_601, 1_006_904), 129_196)

#: Unit-test scale.
TINY_SCALE = Scale("tiny", 64, (7_358, 23_868, 47_450, 125_863), 16_149)

SCALES = {s.name: s for s in (PAPER_SCALE, SMALL_SCALE, TINY_SCALE)}


def default_init_threshold(scheme: Scheme | str) -> float | None:
    """Section 7's convention: dynamic triggers get the S^0.85 initial
    distribution phase; static triggers start cold."""
    spec = scheme.name if isinstance(scheme, Scheme) else scheme
    try:
        _, trig, _ = parse_scheme_spec(spec)
    except ValueError:
        # Baseline schemes (FESS, ...) distribute on their own trigger.
        return None
    return 0.85 if trig in ("DP", "DK") else None


@dataclass(frozen=True)
class GridRecord:
    """One cell of a run grid."""

    scheme: str
    n_pes: int
    total_work: int
    metrics: RunMetrics

    @property
    def efficiency(self) -> float:
        return self.metrics.efficiency


def run_divisible(
    scheme: Scheme | str,
    total_work: int,
    n_pes: int,
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    seed: int = 0,
    init_threshold: float | None | str = "auto",
    initial: str = "root",
    trace: bool = False,
    max_cycles: int | None = None,
) -> RunMetrics:
    """One scheduled run of a scheme over a divisible workload.

    ``init_threshold="auto"`` applies the paper's convention (0.85 for
    dynamic triggers, none for static); pass ``None`` or a float to
    override.
    """
    if init_threshold == "auto":
        init_threshold = default_init_threshold(scheme)
    workload = DivisibleWorkload(
        total_work, n_pes, splitter=splitter, rng=seed, initial=initial
    )
    machine = SimdMachine(n_pes, cost_model if cost_model is not None else CostModel())
    scheduler = Scheduler(
        workload,
        machine,
        scheme,
        init_threshold=init_threshold,
        trace=trace,
        max_cycles=max_cycles,
    )
    return scheduler.run()


def cell_seed(base_seed: int, index: int) -> int:
    """The deterministic seed of grid cell ``index``.

    Derived from ``spawn_child(base_seed, index)`` — a pure function of
    ``(base_seed, index)`` independent of process, platform, and of which
    other cells run — so serial and process-parallel grids see identical
    streams.  ``index`` enumerates cells in **scheme-major order**: the
    nested loops run ``for scheme: for n_pes: for total_work``, i.e.
    ``index = (i_scheme * len(pes) + i_pes) * len(works) + i_work``.
    The regression suite asserts this order so parallelization can never
    silently reshuffle seeds.
    """
    return int(spawn_child(base_seed, index).integers(0, 2**31 - 1))


def _run_grid_cell(
    payload: tuple,
) -> RunMetrics:
    """One grid cell, picklable for ``ProcessPoolExecutor`` workers.

    Schemes travel as spec strings (Scheme factories close over locals
    and do not pickle) and are rebuilt with ``make_scheme`` in the
    worker; the cost model and splitter pickle as-is.
    """
    spec, total_work, n_pes, seed, cost_model, splitter, init_threshold = payload
    return run_divisible(
        make_scheme(spec),
        total_work,
        n_pes,
        cost_model=cost_model,
        splitter=splitter,
        seed=seed,
        init_threshold=init_threshold,
    )


def run_grid(
    schemes: list[Scheme | str],
    works: list[int],
    pes: list[int],
    *,
    cost_model: CostModel | None = None,
    splitter: WorkSplitter | None = None,
    base_seed: int = 0,
    init_threshold: float | None | str = "auto",
    n_jobs: int | None = None,
) -> list[GridRecord]:
    """The full cross product of schemes x W x P (Figure 4/7 grids).

    Each cell gets the deterministic child seed :func:`cell_seed`
    ``(base_seed, index)`` with ``index`` in scheme-major order (see
    there), so cells are reproducible independently of grid shape and of
    how the grid is executed.

    ``n_jobs`` runs cells in worker processes (``concurrent.futures``);
    ``None`` or ``1`` keeps the serial path.  Results are returned in the
    same scheme-major order with the same per-cell seeds either way, so a
    parallel grid is record-for-record identical to a serial one.
    Parallel execution requires every scheme's name to round-trip through
    ``make_scheme`` (all Table 1 schemes do; baseline schemes with
    opaque factories must use the serial path).
    """
    grid_schemes = [make_scheme(s) if isinstance(s, str) else s for s in schemes]
    cells: list[tuple[Scheme, int, int, int]] = []
    index = 0
    for scheme in grid_schemes:
        for n_pes in pes:
            for total_work in works:
                cells.append((scheme, n_pes, total_work, cell_seed(base_seed, index)))
                index += 1

    if n_jobs is not None and n_jobs > 1:
        for scheme, _, _, _ in cells:
            try:
                make_scheme(scheme.name)
            except ValueError:
                raise ValueError(
                    f"scheme {scheme.name!r} cannot be rebuilt from its spec; "
                    "run_grid(n_jobs>1) supports spec-named schemes only — "
                    "use the serial path"
                ) from None
        payloads = [
            (scheme.name, total_work, n_pes, seed, cost_model, splitter, init_threshold)
            for scheme, n_pes, total_work, seed in cells
        ]
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            all_metrics = list(pool.map(_run_grid_cell, payloads))
        return [
            GridRecord(scheme.name, n_pes, total_work, metrics)
            for (scheme, n_pes, total_work, _), metrics in zip(cells, all_metrics)
        ]

    records: list[GridRecord] = []
    for scheme, n_pes, total_work, seed in cells:
        metrics = run_divisible(
            scheme,
            total_work,
            n_pes,
            cost_model=cost_model,
            splitter=splitter,
            seed=seed,
            init_threshold=init_threshold,
        )
        records.append(GridRecord(scheme.name, n_pes, total_work, metrics))
    return records
