"""Generators for the paper's figures (1, 3, 4, 5, 6, 7, 8).

Each returns a :class:`~repro.experiments.report.SeriesResult` holding the
same data series the figure plots; benchmarks render and persist them.
Figure 2 (the GP/nGP matching walkthrough) is deterministic and lives in
``examples/matching_walkthrough.py`` and the matching tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.bounds import dk_overhead_within_bound
from repro.analysis.isoefficiency import growth_exponent, isoefficiency_points
from repro.analysis.optimal_trigger import optimal_static_trigger
from repro.core.splitting import AlphaSplitter
from repro.core.triggering import DKTrigger, DPTrigger
from repro.experiments.report import SeriesResult
from repro.experiments.runner import Scale, run_divisible, run_grid
from repro.experiments.tables import TABLE2_THRESHOLDS, _scale
from repro.simd.cost import CostModel
from repro.workmodel.profiles import cliff_profile, gradual_profile, trigger_fire_cycle

__all__ = ["fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"]


def fig1(*, scale: str | Scale = "tiny", seed: int = 0) -> SeriesResult:
    """Figure 1: the R1/R2 areas the dynamic triggers compare.

    Traced from real runs: for D_P, R1 = w - A*t against R2 = A*L
    (Equation 3); for D_K, R1 = w_idle against R2 = L*P (Equation 4).  A
    load balance happens exactly when R1 first reaches R2, which the
    recorded series exhibit.
    """
    sc = _scale(scale)
    series: dict[str, list[tuple[float, float]]] = {}
    for spec in ("GP-DP", "GP-DK"):
        m = run_divisible(
            spec, sc.works[0], sc.n_pes, seed=seed, init_threshold=0.85, trace=True
        )
        assert m.trace is not None
        series[f"{spec} R1"] = [
            (float(i), r1) for i, r1 in enumerate(m.trace.trigger_r1)
        ]
        series[f"{spec} R2"] = [
            (float(i), r2) for i, r2 in enumerate(m.trace.trigger_r2)
        ]
    return SeriesResult(
        exp_id="fig1",
        title="Dynamic triggering conditions: R1 vs R2 per cycle",
        x_label="cycle",
        y_label="area",
        series=series,
        notes=["a load-balancing phase fires at each cycle where R1 >= R2"],
    )


def fig3(*, scale: str | Scale = "small", seed: int = 0) -> SeriesResult:
    """Figure 3: N_lb(nGP) - N_lb(GP) versus the static threshold x.

    The gap grows with x and with W — nGP's repeated donors force extra
    phases; GP's rotation does not.
    """
    sc = _scale(scale)
    series: dict[str, list[tuple[float, float]]] = {}
    for work in sc.works:
        points = []
        for x in TABLE2_THRESHOLDS + (0.95,):
            ngp = run_divisible(f"nGP-S{x}", work, sc.n_pes, seed=seed)
            gp = run_divisible(f"GP-S{x}", work, sc.n_pes, seed=seed)
            points.append((x, float(ngp.n_lb - gp.n_lb)))
        series[f"W={work}"] = points
    return SeriesResult(
        exp_id="fig3",
        title="Difference in load-balancing phases (nGP - GP) vs x",
        x_label="x",
        y_label="delta N_lb",
        series=series,
        notes=["paper shape: gap ~0 at x=0.5, grows with x, larger for larger W"],
    )


def _isoefficiency_figure(
    exp_id: str,
    title: str,
    schemes: list[str],
    targets: list[float],
    *,
    pes: list[int],
    ratios: list[float],
    seed: int,
    init_threshold: float | None | str,
) -> SeriesResult:
    """Shared engine of Figures 4 and 7.

    For every scheme, run the (P, W) grid with W = ratio * P * log2(P),
    extract the W needed for each target efficiency, and report the
    growth exponent of that requirement against P log P (1.0 = the
    paper's O(P log P) conclusion).
    """
    series: dict[str, list[tuple[float, float]]] = {}
    notes: list[str] = []
    for spec in schemes:
        works_by_p = {
            p: [max(1, int(r * p * math.log2(p))) for r in ratios] for p in pes
        }
        records = []
        for p in pes:
            records.extend(
                run_grid([spec], works_by_p[p], [p], base_seed=seed, init_threshold=init_threshold)
            )
        triples = [(r.n_pes, float(r.total_work), r.efficiency) for r in records]
        for target in targets:
            points = isoefficiency_points(triples, target)
            if len(points) >= 2:
                series[f"{spec} E={target}"] = [(float(p), w) for p, w in points]
                b = growth_exponent(points, model="PlogP")
                notes.append(f"{spec} E={target}: W ~ (P log P)^{b:.2f}")
            else:
                notes.append(f"{spec} E={target}: unreachable on this grid")
    return SeriesResult(
        exp_id=exp_id,
        title=title,
        x_label="P",
        y_label="W required",
        series=series,
        notes=notes,
    )


def fig4(
    *,
    pes: list[int] | None = None,
    ratios: list[float] | None = None,
    targets: list[float] | None = None,
    seed: int = 0,
) -> SeriesResult:
    """Figure 4: experimental isoefficiency curves for static triggering.

    Curves for GP-S0.90 and nGP-S{0.90, 0.80, 0.70}: GP stays ~linear in
    P log P at every efficiency; nGP's requirement inflates as x rises.
    """
    pes = pes or [128, 256, 512, 1024]
    ratios = ratios or [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
    targets = targets or [0.60, 0.70, 0.80]
    return _isoefficiency_figure(
        "fig4",
        "Experimental isoefficiency curves, static triggering",
        ["GP-S0.90", "nGP-S0.90", "nGP-S0.80", "nGP-S0.70"],
        targets,
        pes=pes,
        ratios=ratios,
        seed=seed,
        init_threshold=None,
    )


def fig5(*, n_pes: int = 1024, n_cycles: int = 2000) -> SeriesResult:
    """Figure 5: active-processor decay shapes and when triggers fire.

    On the gradual profile (5a) D_P fires promptly; on the cliff profile
    (5b) D_P fires late or never while D_K's idle-time integral fires
    within a bounded delay — Section 6.1's pathology, made concrete.
    """
    cost = CostModel()
    profiles = {
        "gradual (5a)": gradual_profile(n_pes, n_cycles),
        "cliff (5b)": cliff_profile(n_pes, n_cycles, cliff_at=0.05),
    }
    series: dict[str, list[tuple[float, float]]] = {}
    notes: list[str] = []
    lb = cost.lb_phase_time(n_pes)
    for label, prof in profiles.items():
        step = max(1, len(prof) // 50)
        series[label] = [(float(i), float(a)) for i, a in enumerate(prof) if i % step == 0]
        for trig_name, trig in (
            ("DP", DPTrigger(initial_lb_cost=lb)),
            ("DK", DKTrigger(initial_lb_cost=lb)),
        ):
            fire = trigger_fire_cycle(trig, prof, u_calc=cost.u_calc)
            notes.append(
                f"{label}: {trig_name} fires at cycle "
                f"{'NEVER' if fire is None else fire}"
            )
    # The arbitrarily-poor case (Section 6.1, observation 3): once the
    # cliff profile reaches one active PE, R1 freezes at the cliff's area
    # A = integral of (W(t) - 1) dt; any L exceeding it starves D_P
    # forever, while D_K still fires.
    cliff = profiles["cliff (5b)"]
    area = float((cliff - 1).clip(min=0).sum()) * cost.u_calc
    big_l = 2.0 * area
    # D_K accumulates ~P*u_calc idle per tail cycle, so it fires within
    # ~L*P / ((P-1)*u_calc) cycles; give the profile room for that.
    long_tail = int(1.2 * big_l * n_pes / ((n_pes - 1) * cost.u_calc))
    long_cliff = np.concatenate([cliff, np.full(long_tail, cliff[-1])])
    for trig_name, trig in (
        ("DP", DPTrigger(initial_lb_cost=big_l)),
        ("DK", DKTrigger(initial_lb_cost=big_l)),
    ):
        fire = trigger_fire_cycle(trig, long_cliff, u_calc=cost.u_calc)
        notes.append(
            f"cliff (5b) with L > cliff area ({big_l:.0f}s): {trig_name} "
            f"fires at {'NEVER' if fire is None else fire}"
        )
    return SeriesResult(
        exp_id="fig5",
        title="Active-processor decay profiles and dynamic-trigger behaviour",
        x_label="cycle",
        y_label="active PEs",
        series=series,
        notes=notes,
    )


def fig6(*, scale: str | Scale = "small", seed: int = 0) -> SeriesResult:
    """Figure 6 (the Section 6.2 bound): D_K overhead vs optimal static.

    For each W, measure ``T_idle + T_lb`` under GP-D_K and under
    GP-S^{x_o}; their ratio must stay below 2 (Equation 22).
    """
    sc = _scale(scale)
    cost = CostModel()
    points = []
    notes = []
    for work in sc.works:
        x_o = optimal_static_trigger(
            work, sc.n_pes, u_calc=cost.u_calc, t_lb=cost.lb_phase_time(sc.n_pes)
        )
        dk = run_divisible("GP-DK", work, sc.n_pes, seed=seed, init_threshold=0.85)
        st = run_divisible(f"GP-S{x_o:.4f}", work, sc.n_pes, seed=seed)
        ratio = (dk.ledger.t_idle + dk.ledger.t_lb) / (
            st.ledger.t_idle + st.ledger.t_lb
        )
        points.append((float(work), ratio))
        ok = dk_overhead_within_bound(dk, st)
        notes.append(f"W={work}: overhead ratio {ratio:.2f} (bound 2.0) -> {'OK' if ok else 'VIOLATED'}")
    return SeriesResult(
        exp_id="fig6",
        title="D_K overhead relative to the optimal static trigger",
        x_label="W",
        y_label="(T_idle+T_lb)_DK / (T_idle+T_lb)_Sxo",
        series={"GP-DK vs GP-Sxo": points},
        notes=notes,
    )


def fig7(
    *,
    pes: list[int] | None = None,
    ratios: list[float] | None = None,
    targets: list[float] | None = None,
    seed: int = 0,
) -> SeriesResult:
    """Figure 7: experimental isoefficiency curves for dynamic triggering.

    GP with either trigger stays ~O(P log P); nGP-D_P degrades (it
    balances most often), nGP-D_K sits between — the Section 7 reading.
    """
    pes = pes or [128, 256, 512, 1024]
    ratios = ratios or [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
    targets = targets or [0.70, 0.80]
    return _isoefficiency_figure(
        "fig7",
        "Experimental isoefficiency curves, dynamic triggering",
        ["GP-DK", "GP-DP", "nGP-DK", "nGP-DP"],
        targets,
        pes=pes,
        ratios=ratios,
        seed=seed,
        init_threshold=0.85,
    )


def fig8(
    *, scale: str | Scale = "small", seed: int = 0, high_multiplier: float = 16.0
) -> SeriesResult:
    """Figure 8: active PEs per expansion cycle, GP-D_P vs GP-D_K, at the
    actual and at 16x load-balancing cost.

    At 1x the two traces look alike; at 16x, D_P visibly triggers at much
    lower activity levels than D_K (Figures 8c/8d).
    """
    sc = _scale(scale)
    work = sc.table5_work
    # Same adverse splitter as Table 5: the D_P/D_K contrast at high LB
    # cost only appears when splits produce activity cliffs.
    splitter = AlphaSplitter(alpha_min=0.02, alpha_max=0.98)
    series: dict[str, list[tuple[float, float]]] = {}
    notes: list[str] = []
    for mult, tag in ((1.0, "actual"), (high_multiplier, f"{int(high_multiplier)}x")):
        cost = CostModel().with_lb_multiplier(mult)
        for spec in ("GP-DP", "GP-DK"):
            m = run_divisible(
                spec, work, sc.n_pes, cost_model=cost, seed=seed,
                init_threshold=0.85, trace=True, splitter=splitter,
            )
            assert m.trace is not None
            prof = m.trace.expanding_per_cycle
            step = max(1, len(prof) // 100)
            series[f"{spec} ({tag})"] = [
                (float(i), float(a)) for i, a in enumerate(prof) if i % step == 0
            ]
            if m.trace.lb_cycle_indices:
                low = min(m.trace.busy_per_cycle[k] for k in m.trace.lb_cycle_indices)
                notes.append(
                    f"{spec} ({tag}): {m.n_lb} phases, lowest busy count at a "
                    f"trigger = {low}, E = {m.efficiency:.2f}"
                )
            else:
                notes.append(f"{spec} ({tag}): no LB phases, E = {m.efficiency:.2f}")
    return SeriesResult(
        exp_id="fig8",
        title="Active PEs per cycle under dynamic triggers and LB costs",
        x_label="cycle",
        y_label="active PEs",
        series=series,
        notes=notes,
    )
