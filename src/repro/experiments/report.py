"""Result containers and text rendering for experiments.

``TableResult`` and ``SeriesResult`` carry an experiment id (the paper's
table/figure number), the structured data, and notes comparing against
the paper's reported shape.  ``render()`` produces the monospace report;
``save()`` writes it under a results directory for the record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.util.tables import format_table

__all__ = ["TableResult", "SeriesResult"]


@dataclass
class TableResult:
    """A regenerated paper table."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    formats: list[str | None] | None = None
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        body = format_table(
            self.headers, self.rows, formats=self.formats, title=f"[{self.exp_id}] {self.title}"
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body

    def save(self, directory: str | Path) -> Path:
        path = Path(directory) / f"{self.exp_id}.txt"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render() + "\n")
        return path


@dataclass
class SeriesResult:
    """A regenerated paper figure, as named (x, y) series.

    ``series`` maps a curve label to its points.  ``render()`` prints the
    series as aligned columns — the textual equivalent of the plot.
    """

    exp_id: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[float, float]]]
    notes: list[str] = field(default_factory=list)

    def render(self, *, chart: bool = True) -> str:
        lines = [f"[{self.exp_id}] {self.title}"]
        if chart:
            try:
                lines.append(self.render_chart())
                lines.append("")
            except ValueError:
                pass  # un-plottable series (empty, or non-positive on log)
        for label, points in self.series.items():
            lines.append(f"  series: {label}  ({self.x_label} -> {self.y_label})")
            for x, y in points:
                lines.append(f"    {x:>14.6g}  {y:>14.6g}")
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)

    def render_chart(self, *, width: int = 72, height: int = 20) -> str:
        """ASCII scatter plot of the series (log-log when all positive)."""
        from repro.util.ascii_plot import ascii_plot

        positive = all(
            x > 0 and y > 0 for pts in self.series.values() for x, y in pts
        )
        return ascii_plot(
            self.series,
            width=width,
            height=height,
            x_label=self.x_label,
            y_label=self.y_label,
            logx=positive,
            logy=positive,
        )

    def save(self, directory: str | Path) -> Path:
        path = Path(directory) / f"{self.exp_id}.txt"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render() + "\n")
        return path
