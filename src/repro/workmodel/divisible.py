"""The divisible (alpha-splittable) work model — Section 3's abstraction.

Each PE holds an integer count of unexpanded tree nodes.  One lock-step
cycle expands one node on every non-empty PE; a transfer splits a donor's
count with an :class:`~repro.core.splitting.WorkSplitter`.  This is exactly
the model under which the paper derives every bound (alpha-splitting,
V(P)·log W transfers, Equation 18), so the simulated N_expand / N_lb / E
land in the regime of Tables 2-5 at the paper's own P and W.

Everything is vectorized: a cycle is O(P) numpy work, and a full
paper-scale run (P = 8192, W = 1.6e7, ~3000 cycles) takes well under a
second.

The busy/idle/expanding masks are cached between mutations: one scheduler
cycle reads them up to six times (trigger state, sanitizer, matcher), and
each used to pay a fresh O(P) comparison.  Code that writes ``work``
directly (tests, profiles) must call :meth:`DivisibleWorkload.invalidate_masks`
before re-reading masks it has already read.
"""

from __future__ import annotations

import numpy as np

from repro.core.splitting import AlphaSplitter, WorkSplitter
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int

__all__ = ["DivisibleWorkload"]


class DivisibleWorkload:
    """Alpha-splittable work counts distributed over ``n_pes`` processors.

    Parameters
    ----------
    total_work:
        ``W`` — total tree nodes to expand.
    n_pes:
        ``P``.
    splitter:
        Donation policy; defaults to uniform alpha in ``[0.1, 0.5]``.
    initial:
        ``"root"`` places all work on PE 0 (the paper's setting: the root
        node is given to one processor); ``"uniform"`` spreads it evenly
        (useful for isolating steady-state behaviour in tests).
    rng:
        Seed or generator for the splitter's fractions.
    """

    def __init__(
        self,
        total_work: int,
        n_pes: int,
        *,
        splitter: WorkSplitter | None = None,
        initial: str = "root",
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.total_work = check_positive_int(total_work, "total_work")
        self.n_pes = check_positive_int(n_pes, "n_pes")
        self.splitter = splitter if splitter is not None else AlphaSplitter()
        self.rng = as_generator(rng)

        self.work = np.zeros(n_pes, dtype=np.int64)
        if initial == "root":
            self.work[0] = total_work
        elif initial == "uniform":
            base, extra = divmod(total_work, n_pes)
            self.work[:] = base
            self.work[:extra] += 1
        else:
            raise ValueError(f"initial must be 'root' or 'uniform', got {initial!r}")
        self._expanded = 0
        self._mask_cache: dict[str, np.ndarray] = {}

    # -- Workload protocol ------------------------------------------------

    def invalidate_masks(self) -> None:
        """Drop cached masks after writing ``work`` directly."""
        self._mask_cache.clear()

    def _mask(self, kind: str) -> np.ndarray:
        mask = self._mask_cache.get(kind)
        if mask is None:
            if kind == "expanding":
                mask = self.work > 0
            elif kind == "busy":
                mask = self.work >= 2
            else:
                mask = self.work == 0
            self._mask_cache[kind] = mask
        return mask

    def expanding_mask(self) -> np.ndarray:
        """PEs holding at least one node expand every cycle."""
        return self._mask("expanding")

    def busy_mask(self) -> np.ndarray:
        """PEs with >= 2 nodes can split (Section 2's busy definition)."""
        return self._mask("busy")

    def idle_mask(self) -> np.ndarray:
        """PEs with no work receive during LB phases."""
        return self._mask("idle")

    def expand_cycle(self) -> int:
        active = self._mask("expanding")
        n = int(active.sum())
        self._mask_cache = {}
        if n:
            np.subtract(self.work, 1, out=self.work, where=active)
            self._expanded += n
        return n

    def transfer(self, donors: np.ndarray, receivers: np.ndarray) -> int:
        donors = np.asarray(donors, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if donors.shape != receivers.shape:
            raise ValueError("donors and receivers must pair one-to-one")
        if len(donors) == 0:
            return 0
        self._mask_cache = {}
        # Matching guarantees donors were busy and receivers idle when the
        # masks were read; nothing expands between matching and transfer,
        # so this only guards against caller misuse.
        valid = self.work[donors] >= 2
        donors = donors[valid]
        receivers = receivers[valid]
        if len(donors) == 0:
            return 0
        give = self.splitter.donation(self.work[donors], self.rng)
        self.work[donors] -= give
        self.work[receivers] += give
        return int(len(donors))

    def done(self) -> bool:
        return self._expanded >= self.total_work

    def total_expanded(self) -> int:
        return self._expanded

    def extract_pe(self, pe: int) -> tuple[int, int]:
        """Quarantine PE ``pe``'s node count; the PE is left empty."""
        count = int(self.work[pe])
        self.work[pe] = 0
        self._mask_cache = {}
        return count, count

    def inject_pe(self, pe: int, payload: int) -> int:
        """Add a quarantined node count onto PE ``pe``."""
        count = int(payload)
        if count < 0:
            raise ValueError(f"injected work must be >= 0, got {count}")
        self.work[pe] += count
        self._mask_cache = {}
        return count

    # -- Introspection -----------------------------------------------------

    def total_remaining(self) -> int:
        """Unexpanded nodes across all PEs (conservation invariant)."""
        return int(self.work.sum())

    def check_conservation(self) -> bool:
        """``expanded + remaining == W`` must hold at every instant."""
        return self._expanded + self.total_remaining() == self.total_work
