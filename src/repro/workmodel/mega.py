"""Cell-packed flat storage: many (scheme, W, P) grid cells in one arena.

A grid run is a set of *independent* divisible-workload cells, each a
1-D int64 ``work`` vector of its own width ``P_c``.  Advancing them one
at a time (the serial path) pays the numpy dispatch overhead of every
kernel call per cell per cycle; on small cells that overhead dwarfs the
O(P) work.  :class:`MegaArena` packs all cells onto **one flat PE axis**
— cell ``c`` owns rows ``offsets[c]:offsets[c+1]`` — so a single
full-width ``expand_all`` call runs every cell's lock-step
node-expansion cycle at once, and per-cell observables (expanding /
busy / non-idle counts) come back as one segmented reduction each.

This is the storage layer of the batched grid executor
(:mod:`repro.experiments.batched`); the lock-step *semantics* — when a
cell expands, triggers, balances — live there.  The kernels here are
deliberately dumb: full-width elementwise ops plus ``np.add.reduceat``
segment counts, bit-identical per cell to what
:class:`~repro.workmodel.divisible.DivisibleWorkload` computes on its
own private vector.

Cross-cell isolation is structural: every write is either full-width
elementwise (``where``-masked on each row's own state, so row ``i`` only
ever depends on row ``i``) or goes through :meth:`cell`, a slice view
bounded by the owning cell's offsets.  The fuzz suite locks this in by
mutating single cells and asserting every other cell's bytes unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.kernels.dispatch import get_kernel, resolve_backend
from repro.kernels.workspace import KernelWorkspace
from repro.util.validation import check_positive_int

__all__ = ["MegaArena"]


class MegaArena:
    """Int64 work counts of many independent cells on one flat PE axis.

    Parameters
    ----------
    pes:
        Machine width ``P_c`` of each cell (all >= 1).
    roots:
        Optional per-cell initial root work ``W_c``; when given, cell
        ``c`` starts with ``W_c`` on its first PE (the paper's "root on
        one processor" setting).  Omitted, every cell starts empty.
    kernel_backend:
        Tier for the four grid kernels — ``"numpy"`` (reference,
        default), ``"fused"`` (scratch-backed; count vectors come back
        as *borrowed* workspace views, valid until the same kernel's
        next call), ``"jit"`` or ``"auto"``.
    workspace:
        Optional shared :class:`~repro.kernels.KernelWorkspace`; one is
        created per arena when a non-numpy tier needs it.

    Attributes
    ----------
    work:
        The flat ``(sum of P_c,)`` int64 array holding every cell's
        per-PE node counts, cell ``c`` in rows ``offsets[c]:offsets[c+1]``.
    offsets:
        ``(n_cells + 1,)`` row-offset table; ``offsets[0] == 0``.
    """

    def __init__(
        self,
        pes: Sequence[int],
        *,
        roots: Sequence[int] | None = None,
        kernel_backend: str = "numpy",
        workspace: KernelWorkspace | None = None,
    ) -> None:
        resolved = resolve_backend(kernel_backend)
        self.kernel_backend = resolved
        if workspace is None and resolved != "numpy":
            workspace = KernelWorkspace()
        self._kernel_ws = workspace
        self._expand_kernel = get_kernel("mega.expand_all", resolved)
        self._busy_kernel = get_kernel("mega.busy_counts", resolved)
        self._nonzero_kernel = get_kernel("mega.nonzero_counts", resolved)
        self._remaining_kernel = get_kernel("mega.remaining", resolved)
        widths = [check_positive_int(int(p), "cell width") for p in pes]
        if not widths:
            raise ValueError("MegaArena needs at least one cell")
        self.offsets = np.zeros(len(widths) + 1, dtype=np.int64)
        np.cumsum(widths, out=self.offsets[1:])
        self._starts = self.offsets[:-1]
        self.work = np.zeros(int(self.offsets[-1]), dtype=np.int64)
        self._expanded = np.zeros(len(widths), dtype=np.int64)
        if roots is not None:
            if len(roots) != len(widths):
                raise ValueError(
                    f"got {len(roots)} root work sizes for {len(widths)} cells"
                )
            for c, w in enumerate(roots):
                check_positive_int(int(w), "cell root work")
            self.work[self._starts] = np.asarray(roots, dtype=np.int64)

    # -- shape ------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        return len(self._starts)

    @property
    def total_width(self) -> int:
        """Sum of all cell widths — the flat PE-axis length."""
        return int(self.offsets[-1])

    def widths(self) -> np.ndarray:
        """Per-cell machine widths ``P_c``."""
        return np.diff(self.offsets)

    # -- per-cell access --------------------------------------------------

    def cell(self, c: int) -> np.ndarray:
        """The ``work`` rows of cell ``c`` as a bounds-checked slice view.

        Writes through the view mutate the arena (this is how per-cell
        LB transfers are applied); the view cannot reach another cell's
        rows by construction.
        """
        if not 0 <= c < self.n_cells:
            raise IndexError(f"cell {c} out of range [0, {self.n_cells})")
        return self.work[int(self.offsets[c]) : int(self.offsets[c + 1])]

    def expanded(self) -> np.ndarray:
        """Per-cell cumulative expansion counts (copy)."""
        return self._expanded.copy()

    def unpack(self) -> list[np.ndarray]:
        """Each cell's work vector as an independent copy."""
        return [self.cell(c).copy() for c in range(self.n_cells)]

    # -- full-width kernels ----------------------------------------------

    def expand_all(self) -> np.ndarray:  # repro: kernel
        """One lock-step node-expansion cycle for **every** cell at once.

        Full-width and unmasked across cells: each row with ``work > 0``
        expands exactly one node, exactly as
        ``DivisibleWorkload.expand_cycle`` does per cell — rows of
        finished cells are all zero and therefore self-masking.  Returns
        the per-cell count of rows that expanded (cell ``c``'s
        ``n_expanding`` for this cycle).  Fused tier: the returned counts
        are a borrowed workspace view — consume before the next call.
        """
        return self._expand_kernel(
            self.work, self._starts, self._expanded, self._kernel_ws
        )

    def busy_counts(self) -> np.ndarray:  # repro: kernel
        """Per-cell count of busy (splittable, ``work >= 2``) PEs.

        Full-width read-only reduction over the unmasked flat axis.
        """
        return self._busy_kernel(self.work, self._starts, self._kernel_ws)

    def nonzero_counts(self) -> np.ndarray:  # repro: kernel
        """Per-cell count of non-idle (``work >= 1``) PEs.

        Full-width read-only reduction over the unmasked flat axis.
        """
        return self._nonzero_kernel(self.work, self._starts, self._kernel_ws)

    def remaining(self) -> np.ndarray:  # repro: kernel
        """Per-cell unexpanded node totals (conservation observable)."""
        return self._remaining_kernel(self.work, self._starts, self._kernel_ws)

    # -- invariants -------------------------------------------------------

    def check_conservation(self, total_work: Sequence[int]) -> bool:
        """``expanded + remaining == W`` per cell, at every instant."""
        totals = np.asarray(total_work, dtype=np.int64)
        if totals.shape != self._expanded.shape:
            raise ValueError(
                f"got {totals.shape[0]} work totals for {self.n_cells} cells"
            )
        return bool(np.all(self._expanded + self.remaining() == totals))
