"""Scripted active-processor decay profiles (Figure 5).

The paper's Section 6.1 argues geometrically: D_P performs well when the
active-processor count W(t) decays gradually (Figure 5a) and can trigger
arbitrarily late — or never — when it collapses early to a long low tail
(Figure 5b).  These generators produce the two shapes; feeding them
through :func:`trigger_fire_cycle` reports *when* each triggering scheme
would fire, which the Figure 5/6 benchmarks tabulate.
"""

from __future__ import annotations

import numpy as np

from repro.core.triggering import Trigger, TriggerState
from repro.util.validation import check_positive, check_positive_int

__all__ = ["gradual_profile", "cliff_profile", "trigger_fire_cycle"]


def gradual_profile(n_pes: int, n_cycles: int, *, floor: int = 1) -> np.ndarray:
    """Figure 5a: active count decays smoothly (concave) from P to ``floor``.

    Models a well-balanced phase where processors exhaust their pieces at
    staggered times.
    """
    check_positive_int(n_pes, "n_pes")
    check_positive_int(n_cycles, "n_cycles")
    t = np.linspace(0.0, 1.0, n_cycles)
    active = n_pes * (1.0 - t**2)
    return np.maximum(np.rint(active).astype(np.int64), floor)


def cliff_profile(
    n_pes: int,
    n_cycles: int,
    *,
    cliff_at: float = 0.1,
    tail_active: int = 1,
) -> np.ndarray:
    """Figure 5b: active count collapses at ``cliff_at`` to a long tail.

    Models a badly skewed distribution: nearly all PEs received tiny
    pieces that die out quickly while ``tail_active`` processors grind on.
    """
    check_positive_int(n_pes, "n_pes")
    check_positive_int(n_cycles, "n_cycles")
    if not 0.0 < cliff_at < 1.0:
        raise ValueError(f"cliff_at must be in (0, 1), got {cliff_at}")
    if not 1 <= tail_active <= n_pes:
        raise ValueError(f"tail_active must be in [1, {n_pes}], got {tail_active}")
    cliff = max(1, int(round(cliff_at * n_cycles)))
    active = np.full(n_cycles, tail_active, dtype=np.int64)
    # Steep linear fall from P to the tail level during the cliff.
    active[:cliff] = np.rint(
        np.linspace(n_pes, tail_active, cliff, endpoint=False)
    ).astype(np.int64)
    return active


def trigger_fire_cycle(
    trigger: Trigger,
    active_profile: np.ndarray,
    *,
    u_calc: float = 0.030,
) -> int | None:
    """First cycle index at which ``trigger`` fires on the given profile.

    The profile value serves as both the busy count and the expanding
    count (the distinction vanishes in the scripted model).  Returns
    ``None`` if the trigger never fires — the D_P pathology of
    Section 6.1, observation 3.
    """
    check_positive(u_calc, "u_calc")
    profile = np.asarray(active_profile, dtype=np.int64)
    n_pes = int(profile[0])
    trigger.reset()
    trigger.start_phase()
    for i, a in enumerate(profile.tolist()):
        state = TriggerState(busy=int(a), expanding=int(a), n_pes=n_pes, dt=u_calc)
        if trigger.after_cycle(state):
            return i
    return None
