"""Flat-arena stack storage and the batched stick-breaking sampler.

The mid-fidelity :class:`~repro.workmodel.stackmodel.StackWorkload` keeps
one DFS stack of pending subtree sizes per PE.  The list backend stores
them as ``P`` Python deques and pays a Python-level loop per lock-step
cycle; at paper scale (P = 8192) that loop — one RNG call per expanded
node — dominates the wall clock by orders of magnitude.

This module holds the two pieces that remove it:

- :func:`draw_children_batch` — one cycle's worth of branching factors
  and stick-breaking partitions for *all* expanding PEs, drawn in a fixed
  sequence of batched RNG calls.  Both stack backends route their draws
  through it (the list backend via ``sampler="batched"``), which is what
  makes arena and list runs bit-identical seed for seed: same generator,
  same call sequence, same values.
- :class:`StackArena` — all per-PE stacks in a single ``(P, capacity)``
  int64 array with per-PE ``bottom``/``top`` pointers.  Pushes and pops
  are fancy-indexed scatters/gathers, counts are one vector subtraction,
  and bottom-of-stack donation (the paper's 15-puzzle policy) is O(1)
  per pair: read ``arena[d, bottom[d]]`` and advance ``bottom``.

Arena layout (one row per PE; ``.`` = dead, ``#`` = live entry)::

        column:  0   1   2   3   4   5   ...  capacity-1
      PE 0      [.] [.] [#] [#] [#] [.]  ...
                     bottom-^       ^-top (one past the live window)
      PE 1      [#] [#] [.] [.] [.] [.]  ...
      ...

Donation consumes columns on the left (``bottom`` advances); expansion
pushes and pops on the right (``top`` moves).  Rows are compacted back to
column 0 and the arena doubled only when a push would overflow, so the
amortized cost per pushed entry stays O(1).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["draw_children_batch", "StackArena"]


def draw_children_batch(
    rng: np.random.Generator,
    sizes: np.ndarray,
    max_branching: int,
    leaf_probability: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw children for one cycle's popped subtree sizes, batched.

    For every entry ``i`` the ``sizes[i] - 1`` nodes remaining below the
    expanded root are partitioned into at most ``max_branching`` child
    subtrees by stick-breaking: a Dirichlet weight vector followed by a
    multinomial split (zero-sized parts are dropped).  With probability
    ``leaf_probability`` an entry instead yields a single chain child.

    The RNG call sequence is fixed and depends only on ``sizes`` and the
    parameters — one uniform batch (if ``leaf_probability > 0``), one
    branching-factor batch, then one Dirichlet + one multinomial batch
    per branching-factor group in ascending order — so any two callers
    with equal generator state and equal inputs consume identical
    streams and produce identical children.

    Returns
    -------
    (lens, flat):
        ``lens[i]`` is entry ``i``'s child count; the children of entry
        ``i`` are ``flat[lens[:i].sum() : lens[:i].sum() + lens[i]]`` in
        push order (CSR layout, zeros already dropped).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    n = len(sizes)
    rest = sizes - 1
    parts = np.zeros((n, max_branching), dtype=np.int64)
    active = np.flatnonzero(rest > 0)
    if len(active):
        if leaf_probability:
            leaf = rng.random(len(active)) < leaf_probability
        else:
            leaf = np.zeros(len(active), dtype=bool)
        chain = active[leaf]
        parts[chain, 0] = rest[chain]
        nonleaf = active[~leaf]
        if len(nonleaf):
            b = rng.integers(1, max_branching + 1, size=len(nonleaf))
            b = np.minimum(b, rest[nonleaf])
            single = nonleaf[b == 1]
            parts[single, 0] = rest[single]
            for bv in range(2, max_branching + 1):
                idx = nonleaf[b == bv]
                if len(idx) == 0:
                    continue
                weights = rng.dirichlet(np.ones(bv), size=len(idx))
                parts[idx, :bv] = rng.multinomial(rest[idx], weights)
    live = parts > 0
    # Row-major boolean indexing keeps each entry's children in push order.
    return live.sum(axis=1, dtype=np.int64), parts[live]


class StackArena:
    """``P`` bounded-depth stacks packed into one int64 array.

    The live window of PE ``p`` is ``data[p, bottom[p]:top[p]]``; its top
    entry is ``data[p, top[p] - 1]`` and its bottom (donation) entry is
    ``data[p, bottom[p]]``.  All operations below are full-width numpy
    kernels; none iterates over PEs in Python.
    """

    def __init__(self, n_pes: int, *, capacity: int = 32) -> None:
        self.n_pes = check_positive_int(n_pes, "n_pes")
        self._capacity = check_positive_int(capacity, "capacity")
        self.data = np.zeros((n_pes, capacity), dtype=np.int64)
        self.bottom = np.zeros(n_pes, dtype=np.int64)
        self.top = np.zeros(n_pes, dtype=np.int64)
        # Optional KernelWorkspace: when set (fused/jit tiers), growth
        # leases pooled buffers and compaction reuses the cached iota
        # instead of allocating fresh arrays every doubling.
        self.workspace = None

    @property
    def capacity(self) -> int:
        return self._capacity

    def counts(self) -> np.ndarray:
        """Live entries per PE — one vector subtraction."""
        return self.top - self.bottom

    def push_root(self, pe: int, value: int) -> None:
        """Seed one PE with a single entry (the whole tree on PE 0).

        Unmasked single-PE setup write: runs once before the lock-step
        loop starts, so no alive mask exists to guard it yet.
        """
        self.data[pe, self.top[pe]] = value
        self.top[pe] += 1

    def pop_tops(self, pes: np.ndarray) -> np.ndarray:
        """Pop and return the top entry of every listed (non-empty) PE."""
        self.top[pes] -= 1
        return self.data[pes, self.top[pes]]

    def push_segments(self, pes: np.ndarray, lens: np.ndarray, flat: np.ndarray) -> None:
        """Push ``lens[i]`` values from ``flat`` (CSR order) onto ``pes[i]``.

        Each PE appears at most once per call (one expansion per PE per
        lock-step cycle), so the scatter below never writes a cell twice.
        """
        total = int(lens.sum())
        if total == 0:
            return
        self._ensure_capacity(pes, lens)
        starts = np.repeat(self.top[pes], lens)
        offsets = np.cumsum(lens) - lens  # exclusive prefix, per segment
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lens)
        self.data[np.repeat(pes, lens), starts + within] = flat
        self.top[pes] += lens

    def donate_bottoms(self, donors: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Move each donor's bottom entry to its (empty) receiver.

        Donors and receivers must be disjoint index sets pairing
        one-to-one; every donor must hold >= 2 entries and every receiver
        zero (the caller filters).  Returns the moved values.
        """
        values = self.data[donors, self.bottom[donors]]
        self.bottom[donors] += 1
        # Receivers are empty; restart their windows at column 0.
        self.bottom[receivers] = 0
        self.data[receivers, 0] = values
        self.top[receivers] = 1
        return values

    def extract_window(self, pe: int) -> np.ndarray:
        """Remove and return PE ``pe``'s live window (bottom -> top order).

        The PE is left empty with its pointers rewound to column 0.  Used
        by the fault layer to quarantine a dead PE's frontier.  Unmasked
        single-PE operation — the target PE is already dead, so the alive
        mask excludes rather than selects it.
        """
        values = self.data[pe, self.bottom[pe] : self.top[pe]].copy()
        self.bottom[pe] = 0
        self.top[pe] = 0
        return values

    def inject_window(self, pe: int, values: np.ndarray) -> int:
        """Append ``values`` (bottom -> top order) onto PE ``pe``'s stack.

        The inverse of :meth:`extract_window`; the receiving PE need not
        be empty.  Returns the number of entries delivered.
        """
        values = np.asarray(values, dtype=np.int64)
        if len(values) == 0:
            return 0
        self.push_segments(
            np.array([pe], dtype=np.int64),
            np.array([len(values)], dtype=np.int64),
            values,
        )
        return int(len(values))

    def reset_empty_windows(self) -> None:
        """Rewind exhausted PEs' pointers to column 0, reclaiming the dead
        columns their ``bottom`` consumed (cheap: two masked stores)."""
        empty = self.top == self.bottom
        self.bottom[empty] = 0
        self.top[empty] = 0

    def to_lists(self) -> list[list[int]]:
        """Materialize the live windows as plain lists (oracle snapshots)."""
        return [
            self.data[p, self.bottom[p] : self.top[p]].tolist()
            for p in range(self.n_pes)
        ]

    def total_pending(self) -> int:
        """Sum of all live entries (the conservation invariant's RHS)."""
        mask = (
            np.arange(self._capacity, dtype=np.int64)[None, :] >= self.bottom[:, None]
        ) & (np.arange(self._capacity, dtype=np.int64)[None, :] < self.top[:, None])
        return int(self.data[mask].sum())

    # -- growth ------------------------------------------------------------

    def _ensure_capacity(self, pes: np.ndarray, lens: np.ndarray) -> None:
        need = int((self.top[pes] + lens).max())
        if need <= self._capacity:
            return
        self._compact()
        need = int((self.top[pes] + lens).max())
        if need <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < need:
            new_capacity *= 2
        if self.workspace is not None:
            # Pooled growth: lease a zero-filled plane from the workspace
            # pool and return the outgrown one, so repeated doublings in a
            # long run recycle buffers instead of hitting the allocator.
            grown = self.workspace.lease((self.n_pes, new_capacity), np.dtype(np.int64))
        else:
            grown = np.zeros((self.n_pes, new_capacity), dtype=np.int64)
        grown[:, : self._capacity] = self.data
        if self.workspace is not None:
            self.workspace.release(self.data)
        self.data = grown
        self._capacity = new_capacity

    def _compact(self) -> None:
        """Shift every live window to column 0 (vectorized gather/scatter)."""
        counts = self.top - self.bottom
        shifted = np.flatnonzero((counts > 0) & (self.bottom > 0))
        if len(shifted):
            seg = counts[shifted]
            total = int(seg.sum())
            offsets = np.cumsum(seg) - seg
            iota = (
                self.workspace.iota(total)
                if self.workspace is not None
                else np.arange(total, dtype=np.int64)
            )
            within = iota - np.repeat(offsets, seg)
            rows = np.repeat(shifted, seg)
            # Fancy-index RHS gathers into a temp before the scatter, so
            # overlapping source/destination windows are safe.
            self.data[rows, within] = self.data[
                rows, np.repeat(self.bottom[shifted], seg) + within
            ]
        self.top[:] = counts
        self.bottom[:] = 0
