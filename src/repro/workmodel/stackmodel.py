"""Stack-structured synthetic workload (mid-fidelity model).

Each PE holds a DFS stack of *pending subtree sizes*.  Expanding the top
entry consumes its root node and pushes the child subtrees, whose sizes
are drawn by recursive stick-breaking — producing the highly irregular
trees the paper targets.  Donation removes the entry at the **bottom** of
the stack (nearest the root), exactly the 15-puzzle policy of Section 5.

Unlike :class:`~repro.workmodel.divisible.DivisibleWorkload`, splittability
here depends on stack *composition*: a PE whose stack holds one huge
subtree is not busy (cannot split) even though it has lots of work — the
situation that makes D_P fail (Section 6.1, observation 2).

Two storage backends implement the same workload:

- ``backend="list"`` — one :class:`~collections.deque` per PE, expanded
  in a per-PE Python loop.  Simple and transparent: the oracle the test
  suite checks the arena against.  Donation pops the deque's left end in
  O(1) (a plain list's ``pop(0)`` would be O(depth)).
- ``backend="arena"`` — all stacks in one flat int64 array with
  top/bottom pointers (:class:`~repro.workmodel.arena.StackArena`); a
  cycle pops, draws and pushes for every expanding PE in a handful of
  full-width numpy kernels.  This is the paper-scale (P = 8192) path.

The ``sampler`` knob controls how child sizes are drawn:

- ``"pernode"`` (list-backend default) — one RNG call sequence per
  expanded node, the historical stream of this model.
- ``"batched"`` (arena requirement and its only mode) — all expanding
  PEs' draws per cycle flow through one
  :func:`~repro.workmodel.arena.draw_children_batch` call.  Running the
  list backend with ``sampler="batched"`` consumes the *same* stream as
  the arena, making the two backends bit-identical seed for seed — the
  equivalence the integration suite asserts scheme by scheme.

Busy/idle/expanding masks derive from one cached per-PE entry count,
invalidated on every mutation, so a scheduler cycle that reads all three
masks (trigger, sanitizer, matcher) pays for a single counts pass.  Code
that mutates ``stacks`` directly (tests, notebooks) must call
:meth:`StackWorkload.invalidate_masks` before re-reading masks.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.kernels.dispatch import get_kernel, resolve_backend
from repro.kernels.workspace import KernelWorkspace
from repro.obs.profile import span
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int
from repro.workmodel.arena import StackArena, draw_children_batch

__all__ = ["StackWorkload"]


class StackWorkload:
    """Per-PE stacks of pending subtree sizes with stick-breaking growth.

    Parameters
    ----------
    total_work:
        ``W`` — total nodes in the synthetic tree.
    n_pes:
        ``P``.
    max_branching:
        Maximum children per expanded node.
    leaf_probability:
        Chance that an expansion of a subtree yields a single child chain
        step instead of a fan-out — raises depth/irregularity.
    rng:
        Seed or generator.
    backend:
        ``"list"`` (deque-per-PE oracle) or ``"arena"`` (flat-array,
        vectorized).
    sampler:
        ``"pernode"`` or ``"batched"``; defaults to the backend's native
        mode (list -> pernode, arena -> batched).  The arena backend only
        supports ``"batched"``.
    kernel_backend:
        Expand-cycle kernel tier for the arena backend — ``"numpy"``
        (reference, default), ``"fused"`` (zero-allocation workspace
        path), ``"jit"`` (numba when available, else fused) or
        ``"auto"``.  The list backend is the oracle and only accepts
        ``"numpy"``.
    workspace:
        Optional shared :class:`~repro.kernels.KernelWorkspace`; one is
        created per workload when a non-numpy tier needs it.
    """

    def __init__(
        self,
        total_work: int,
        n_pes: int,
        *,
        max_branching: int = 4,
        leaf_probability: float = 0.0,
        rng: int | np.random.Generator | None = None,
        backend: str = "list",
        sampler: str | None = None,
        kernel_backend: str = "numpy",
        workspace: KernelWorkspace | None = None,
    ) -> None:
        self.total_work = check_positive_int(total_work, "total_work")
        self.n_pes = check_positive_int(n_pes, "n_pes")
        self.max_branching = check_positive_int(max_branching, "max_branching")
        if not 0.0 <= leaf_probability < 1.0:
            raise ValueError(
                f"leaf_probability must be in [0, 1), got {leaf_probability}"
            )
        self.leaf_probability = leaf_probability
        self.rng = as_generator(rng)
        if backend not in ("list", "arena"):
            raise ValueError(f"backend must be 'list' or 'arena', got {backend!r}")
        if sampler is None:
            sampler = "batched" if backend == "arena" else "pernode"
        if sampler not in ("pernode", "batched"):
            raise ValueError(
                f"sampler must be 'pernode' or 'batched', got {sampler!r}"
            )
        if backend == "arena" and sampler != "batched":
            raise ValueError("the arena backend only supports sampler='batched'")
        self.backend = backend
        self.sampler = sampler
        resolved = resolve_backend(kernel_backend)
        if backend == "list" and resolved != "numpy":
            raise ValueError(
                "the list backend is the oracle tier and only accepts "
                f"kernel_backend='numpy', got {kernel_backend!r}"
            )
        self.kernel_backend = resolved
        if workspace is None and resolved != "numpy":
            workspace = KernelWorkspace()
        self._kernel_ws = workspace

        self._arena: StackArena | None = None
        self._stacks: list[deque[int]] | None = None
        self._expand_kernel = None
        if backend == "arena":
            self._arena = StackArena(n_pes)
            self._arena.workspace = self._kernel_ws
            self._arena.push_root(0, total_work)
            self._expand_kernel = get_kernel("stack.expand_cycle", resolved)
        else:
            # stacks[p] holds PE p's pending subtree sizes; the root
            # subtree (the whole tree) starts on PE 0.
            self._stacks = [deque() for _ in range(n_pes)]
            self._stacks[0].append(total_work)
        self._expanded = 0
        self._cached_counts: np.ndarray | None = None

    # -- storage views -----------------------------------------------------

    @property
    def stacks(self) -> list:
        """The per-PE stacks.

        List backend: the live list of deques (mutable in place — call
        :meth:`invalidate_masks` after direct edits).  Arena backend: a
        plain-list *snapshot* materialized from the flat array; mutating
        it does not touch the arena.
        """
        if self._stacks is not None:
            return self._stacks
        assert self._arena is not None
        return self._arena.to_lists()

    def invalidate_masks(self) -> None:
        """Drop the cached per-PE counts after direct stack mutation."""
        self._cached_counts = None

    # -- tree growth -------------------------------------------------------

    def _children_of(self, size: int) -> list[int]:
        """Partition ``size - 1`` remaining nodes into child subtrees
        (the per-node sampler; one RNG call sequence per expansion)."""
        rest = size - 1
        if rest <= 0:
            return []
        if self.leaf_probability and self.rng.random() < self.leaf_probability:
            return [rest]
        b = int(self.rng.integers(1, self.max_branching + 1))
        b = min(b, rest)
        if b == 1:
            return [rest]
        weights = self.rng.dirichlet(np.ones(b))
        parts = self.rng.multinomial(rest, weights)
        return [int(c) for c in parts if c > 0]

    # -- Workload protocol ------------------------------------------------

    def _counts(self) -> np.ndarray:
        """Per-PE pending-entry counts, cached until the next mutation."""
        if self._cached_counts is None:
            if self._arena is not None:
                self._cached_counts = self._arena.counts()
            else:
                assert self._stacks is not None
                self._cached_counts = np.fromiter(
                    (len(s) for s in self._stacks), dtype=np.int64, count=self.n_pes
                )
        return self._cached_counts

    def expanding_mask(self) -> np.ndarray:
        return self._counts() > 0

    def busy_mask(self) -> np.ndarray:
        """Busy = at least two stack nodes (Section 2): one to keep
        expanding, one to give away."""
        return self._counts() >= 2

    def idle_mask(self) -> np.ndarray:
        return self._counts() == 0

    def expand_cycle(self) -> int:
        if self._arena is not None:
            return self._expand_cycle_arena()
        return self._expand_cycle_list()

    def _expand_cycle_arena(self) -> int:
        with span("expand.stack.arena"):
            return self._expand_cycle_arena_inner()

    def _expand_cycle_arena_inner(self) -> int:  # repro: kernel
        # The cycle body lives in repro.kernels.stack; the registry
        # resolved the tier once at construction.  Every tier does its
        # own pes selection, count-cache invalidation and bookkeeping
        # against this workload, so the wrapper is a plain delegation.
        return self._expand_kernel(self, self._kernel_ws)

    def _expand_cycle_list(self) -> int:
        with span("expand.stack.list"):
            return self._expand_cycle_list_inner()

    def _expand_cycle_list_inner(self) -> int:
        stacks = self._stacks
        assert stacks is not None
        self._cached_counts = None
        if self.sampler == "pernode":
            n = 0
            for stack in stacks:
                if not stack:
                    continue
                size = stack.pop()
                self._expanded += 1
                n += 1
                stack.extend(self._children_of(size))
            return n
        pes = [p for p, stack in enumerate(stacks) if stack]
        if not pes:
            return 0
        sizes = np.fromiter(
            (stacks[p].pop() for p in pes), dtype=np.int64, count=len(pes)
        )
        self._expanded += len(pes)
        lens, flat = draw_children_batch(
            self.rng, sizes, self.max_branching, self.leaf_probability
        )
        children = flat.tolist()
        offset = 0
        for p, ln in zip(pes, lens.tolist()):
            if ln:
                stacks[p].extend(children[offset : offset + ln])
                offset += ln
        return len(pes)

    def transfer(self, donors: np.ndarray, receivers: np.ndarray) -> int:
        donors = np.asarray(donors, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if donors.shape != receivers.shape:
            raise ValueError("donors and receivers must pair one-to-one")
        if len(donors) == 0:
            return 0
        self._cached_counts = None
        if self._arena is not None:
            counts = self._arena.counts()
            valid = (counts[donors] >= 2) & (counts[receivers] == 0)
            donors = donors[valid]
            receivers = receivers[valid]
            if len(donors):
                self._arena.donate_bottoms(donors, receivers)
            return int(len(donors))
        stacks = self._stacks
        assert stacks is not None
        moved = 0
        for d, r in zip(donors.tolist(), receivers.tolist()):
            stack = stacks[d]
            if len(stack) < 2 or stacks[r]:
                continue
            # Donate the node at the bottom of the stack (nearest the root
            # — typically the largest pending subtree).
            stacks[r].append(stack.popleft())
            moved += 1
        return moved

    def done(self) -> bool:
        return self._expanded >= self.total_work

    def total_expanded(self) -> int:
        return self._expanded

    def extract_pe(self, pe: int) -> tuple[tuple[int, ...], int]:
        """Quarantine PE ``pe``'s whole stack (bottom -> top order).

        Returns an immutable, backend-neutral snapshot so a frontier
        extracted under one backend injects identically under the other.
        """
        self._cached_counts = None
        if self._arena is not None:
            values = tuple(int(v) for v in self._arena.extract_window(pe))
        else:
            assert self._stacks is not None
            values = tuple(self._stacks[pe])
            self._stacks[pe].clear()
        return values, len(values)

    def inject_pe(self, pe: int, payload: tuple[int, ...]) -> int:
        """Append a quarantined stack snapshot onto PE ``pe``."""
        values = tuple(payload)
        if not values:
            return 0
        self._cached_counts = None
        if self._arena is not None:
            return self._arena.inject_window(
                pe, np.asarray(values, dtype=np.int64)
            )
        assert self._stacks is not None
        self._stacks[pe].extend(values)
        return len(values)

    # -- Introspection -----------------------------------------------------

    def total_remaining(self) -> int:
        if self._arena is not None:
            return self._arena.total_pending()
        assert self._stacks is not None
        return sum(sum(s) for s in self._stacks)

    def check_conservation(self) -> bool:
        """Expanded + pending subtree sizes == W at all times."""
        return self._expanded + self.total_remaining() == self.total_work
