"""Stack-structured synthetic workload (mid-fidelity model).

Each PE holds a DFS stack of *pending subtree sizes*.  Expanding the top
entry consumes its root node and pushes the child subtrees, whose sizes
are drawn by recursive stick-breaking — producing the highly irregular
trees the paper targets.  Donation removes the entry at the **bottom** of
the stack (nearest the root), exactly the 15-puzzle policy of Section 5.

Unlike :class:`~repro.workmodel.divisible.DivisibleWorkload`, splittability
here depends on stack *composition*: a PE whose stack holds one huge
subtree is not busy (cannot split) even though it has lots of work — the
situation that makes D_P fail (Section 6.1, observation 2).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_generator
from repro.util.validation import check_positive_int

__all__ = ["StackWorkload"]


class StackWorkload:
    """Per-PE stacks of pending subtree sizes with stick-breaking growth.

    Parameters
    ----------
    total_work:
        ``W`` — total nodes in the synthetic tree.
    n_pes:
        ``P``.
    max_branching:
        Maximum children per expanded node.
    leaf_probability:
        Chance that an expansion of a subtree yields a single child chain
        step instead of a fan-out — raises depth/irregularity.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        total_work: int,
        n_pes: int,
        *,
        max_branching: int = 4,
        leaf_probability: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.total_work = check_positive_int(total_work, "total_work")
        self.n_pes = check_positive_int(n_pes, "n_pes")
        self.max_branching = check_positive_int(max_branching, "max_branching")
        if not 0.0 <= leaf_probability < 1.0:
            raise ValueError(
                f"leaf_probability must be in [0, 1), got {leaf_probability}"
            )
        self.leaf_probability = leaf_probability
        self.rng = as_generator(rng)

        # stacks[p] is a list of pending subtree sizes; the root subtree
        # (the whole tree) starts on PE 0.
        self.stacks: list[list[int]] = [[] for _ in range(n_pes)]
        self.stacks[0].append(total_work)
        self._expanded = 0

    # -- tree growth -------------------------------------------------------

    def _children_of(self, size: int) -> list[int]:
        """Partition ``size - 1`` remaining nodes into child subtrees."""
        rest = size - 1
        if rest <= 0:
            return []
        if self.leaf_probability and self.rng.random() < self.leaf_probability:
            return [rest]
        b = int(self.rng.integers(1, self.max_branching + 1))
        b = min(b, rest)
        if b == 1:
            return [rest]
        weights = self.rng.dirichlet(np.ones(b))
        parts = self.rng.multinomial(rest, weights)
        return [int(c) for c in parts if c > 0]

    # -- Workload protocol ------------------------------------------------

    def _counts(self) -> np.ndarray:
        return np.fromiter(
            (len(s) for s in self.stacks), dtype=np.int64, count=self.n_pes
        )

    def expanding_mask(self) -> np.ndarray:
        return self._counts() > 0

    def busy_mask(self) -> np.ndarray:
        """Busy = at least two stack nodes (Section 2): one to keep
        expanding, one to give away."""
        return self._counts() >= 2

    def idle_mask(self) -> np.ndarray:
        return self._counts() == 0

    def expand_cycle(self) -> int:
        n = 0
        for stack in self.stacks:
            if not stack:
                continue
            size = stack.pop()
            self._expanded += 1
            n += 1
            children = self._children_of(size)
            stack.extend(children)
        return n

    def transfer(self, donors: np.ndarray, receivers: np.ndarray) -> int:
        donors = np.asarray(donors, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if donors.shape != receivers.shape:
            raise ValueError("donors and receivers must pair one-to-one")
        moved = 0
        for d, r in zip(donors.tolist(), receivers.tolist()):
            stack = self.stacks[d]
            if len(stack) < 2 or self.stacks[r]:
                continue
            # Donate the node at the bottom of the stack (nearest the root
            # — typically the largest pending subtree).
            self.stacks[r].append(stack.pop(0))
            moved += 1
        return moved

    def done(self) -> bool:
        return self._expanded >= self.total_work

    def total_expanded(self) -> int:
        return self._expanded

    # -- Introspection -----------------------------------------------------

    def total_remaining(self) -> int:
        return sum(sum(s) for s in self.stacks)

    def check_conservation(self) -> bool:
        """Expanded + pending subtree sizes == W at all times."""
        return self._expanded + self.total_remaining() == self.total_work
