"""Abstract workload models.

- :mod:`repro.workmodel.divisible` — the alpha-splittable work model of the
  paper's analysis (Section 3), fully vectorized; runs the Table 2/4/5
  experiments at the paper's own scale (P = 8192, W = 1.6e7).
- :mod:`repro.workmodel.stackmodel` — per-PE stacks of pending subtree
  sizes with stick-breaking expansion and bottom-of-stack donation; a
  mid-fidelity bridge between the divisible model and the real DFS engine.
  Two backends: ``"list"`` (one deque per PE, the oracle) and ``"arena"``
  (all stacks in one flat array, vectorized kernels).
- :mod:`repro.workmodel.arena` — the flat-arena storage and the batched
  stick-breaking sampler (``StackArena``, ``draw_children_batch``).
- :mod:`repro.workmodel.mega` — many independent grid cells packed onto
  one flat PE axis (``MegaArena``) so full-width kernels advance every
  cell's lock-step cycle in a single call.
- :mod:`repro.workmodel.profiles` — scripted active-processor decay shapes
  (Figure 5) used to exhibit the D_P pathology analytically.
"""

from repro.workmodel.divisible import DivisibleWorkload
from repro.workmodel.mega import MegaArena
from repro.workmodel.stackmodel import StackWorkload
from repro.workmodel.profiles import (
    gradual_profile,
    cliff_profile,
    trigger_fire_cycle,
)

__all__ = [
    "DivisibleWorkload",
    "MegaArena",
    "StackWorkload",
    "gradual_profile",
    "cliff_profile",
    "trigger_fire_cycle",
]
