"""Arena backend unit tests: storage kernels, the batched sampler, and a
hypothesis fuzz pinning the arena to the deque-backed list oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import spawn_child
from repro.workmodel.arena import StackArena, draw_children_batch
from repro.workmodel.stackmodel import StackWorkload


class TestDrawChildrenBatch:
    def test_conserves_nodes(self):
        sizes = np.array([100, 1, 2, 50, 7])
        lens, flat = draw_children_batch(spawn_child(0, 0), sizes, 4, 0.1)
        assert flat.sum() == (sizes - 1).sum()
        assert lens.sum() == len(flat)

    def test_size_one_yields_nothing(self):
        lens, flat = draw_children_batch(spawn_child(0, 0), np.array([1, 1]), 4, 0.0)
        assert np.array_equal(lens, [0, 0])
        assert len(flat) == 0

    def test_all_children_positive(self):
        lens, flat = draw_children_batch(
            spawn_child(0, 1), np.arange(1, 300), 6, 0.2
        )
        assert (flat > 0).all()
        assert (lens <= 6).all()

    def test_deterministic_given_stream(self):
        sizes = np.array([90, 30, 11])
        a = draw_children_batch(spawn_child(7, 0), sizes, 4, 0.3)
        b = draw_children_batch(spawn_child(7, 0), sizes, 4, 0.3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestStackArena:
    def test_push_pop_roundtrip(self):
        arena = StackArena(3, capacity=4)
        arena.push_root(0, 10)
        arena.push_segments(
            np.array([0, 2]), np.array([2, 1]), np.array([7, 8, 9])
        )
        assert arena.to_lists() == [[10, 7, 8], [], [9]]
        assert np.array_equal(arena.counts(), [3, 0, 1])
        tops = arena.pop_tops(np.array([0, 2]))
        assert np.array_equal(tops, [8, 9])
        assert arena.to_lists() == [[10, 7], [], []]

    def test_donate_bottoms(self):
        arena = StackArena(3, capacity=4)
        arena.push_segments(
            np.array([0]), np.array([3]), np.array([40, 10, 5])
        )
        values = arena.donate_bottoms(np.array([0]), np.array([2]))
        assert np.array_equal(values, [40])
        assert arena.to_lists() == [[10, 5], [], [40]]

    def test_growth_preserves_contents(self):
        arena = StackArena(2, capacity=2)
        arena.push_segments(np.array([0]), np.array([2]), np.array([1, 2]))
        # Overflow: the arena must compact + double, keeping the window.
        arena.push_segments(np.array([0]), np.array([3]), np.array([3, 4, 5]))
        assert arena.capacity >= 5
        assert arena.to_lists() == [[1, 2, 3, 4, 5], []]

    def test_growth_after_donations_compacts_dead_columns(self):
        arena = StackArena(2, capacity=4)
        arena.push_segments(np.array([0]), np.array([4]), np.array([1, 2, 3, 4]))
        arena.donate_bottoms(np.array([0]), np.array([1]))
        arena.donate_bottoms(np.array([0]), np.array([1]))  # receiver refill
        # PE 0 window now sits at columns [2, 4); pushing 2 more entries
        # fits after compaction without any growth.
        arena.push_segments(np.array([0]), np.array([2]), np.array([5, 6]))
        assert arena.capacity == 4
        assert arena.to_lists()[0] == [3, 4, 5, 6]

    def test_reset_empty_windows(self):
        arena = StackArena(2, capacity=4)
        arena.push_segments(np.array([0]), np.array([3]), np.array([1, 2, 3]))
        arena.donate_bottoms(np.array([0]), np.array([1]))
        arena.pop_tops(np.array([0]))
        arena.pop_tops(np.array([0]))
        assert arena.bottom[0] == 1 and arena.top[0] == 1  # empty, offset window
        arena.reset_empty_windows()
        assert arena.bottom[0] == 0 and arena.top[0] == 0
        assert arena.to_lists() == [[], [1]]


def _paired(rng, busy, idle):
    """Disjoint one-to-one donor/receiver pairs from the masks."""
    donors = np.flatnonzero(busy)
    receivers = np.flatnonzero(idle)
    k = min(len(donors), len(receivers))
    return rng.permutation(donors)[:k], rng.permutation(receivers)[:k]


class TestArenaMatchesListOracle:
    @given(
        st.integers(20, 3000),
        st.integers(2, 24),
        st.integers(0, 99),
        st.floats(0.0, 0.8),
    )
    @settings(max_examples=25, deadline=None)
    def test_lockstep_state_identical(self, work, n_pes, seed, leaf_p):
        """Expand/transfer interleavings leave bit-identical stacks, and the
        conservation invariant (expanded + pending == W) holds every cycle."""
        arena = StackWorkload(
            work, n_pes, rng=seed, leaf_probability=leaf_p, backend="arena"
        )
        oracle = StackWorkload(
            work, n_pes, rng=seed, leaf_probability=leaf_p,
            backend="list", sampler="batched",
        )
        schedule = spawn_child(seed, 1)
        guard = 0
        while not arena.done():
            guard += 1
            assert guard <= work + 1
            assert arena.expand_cycle() == oracle.expand_cycle()
            assert arena.check_conservation()
            assert oracle.check_conservation()
            if schedule.random() < 0.4:
                donors, receivers = _paired(
                    spawn_child(seed, guard), arena.busy_mask(), arena.idle_mask()
                )
                assert arena.transfer(donors, receivers) == oracle.transfer(
                    donors, receivers
                )
                assert arena.check_conservation()
            assert arena.stacks == [list(s) for s in oracle.stacks]
            assert np.array_equal(arena.busy_mask(), oracle.busy_mask())
            assert np.array_equal(arena.idle_mask(), oracle.idle_mask())
        assert oracle.done()
        assert arena.total_expanded() == oracle.total_expanded() == work

    def test_deep_chain_growth(self):
        """leaf_probability ~ 1 makes near-chains; the arena must grow its
        capacity without corrupting any stack."""
        wl = StackWorkload(4_000, 2, rng=3, leaf_probability=0.95, backend="arena")
        oracle = StackWorkload(
            4_000, 2, rng=3, leaf_probability=0.95, backend="list", sampler="batched"
        )
        while not wl.done():
            wl.expand_cycle()
            oracle.expand_cycle()
        assert oracle.done()
        assert wl.total_expanded() == oracle.total_expanded() == 4_000


class TestArenaWorkloadBasics:
    def test_stacks_snapshot(self):
        wl = StackWorkload(100, 4, rng=0, backend="arena")
        assert wl.stacks == [[100], [], [], []]

    def test_transfer_validity_filter(self):
        wl = StackWorkload(100, 3, rng=0, backend="arena")
        # PE 0 holds one entry (unsplittable): the pair must be declined.
        assert wl.transfer(np.array([0]), np.array([1])) == 0
        assert wl.stacks == [[100], [], []]

    def test_pernode_sampler_rejected(self):
        with pytest.raises(ValueError):
            StackWorkload(10, 2, backend="arena", sampler="pernode")
