"""Hypothesis lock-step fuzz of MegaArena cell packing/unpacking.

Two invariants the batched grid executor leans on, driven over random
cell shapes and interleaved full-width / per-cell mutations:

- **conservation** — per cell, ``expanded + remaining == W`` after every
  lock-step cycle, no matter how transfers shuffle work inside a cell;
- **no cross-cell writes** — mutating one cell (through its slice view
  or via full-width kernels whose rows self-mask) never changes another
  cell's bytes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import as_generator
from repro.workmodel.mega import MegaArena


def _random_arena(rng, n_cells, max_p, max_w):
    pes = [int(rng.integers(1, max_p + 1)) for _ in range(n_cells)]
    roots = [int(rng.integers(1, max_w + 1)) for _ in range(n_cells)]
    return MegaArena(pes, roots=roots), pes, roots


cells_st = st.integers(1, 8)
seed_st = st.integers(0, 999)


class TestPacking:
    @given(cells_st, st.integers(1, 16), st.integers(1, 40), seed_st)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_and_shape(self, n_cells, max_p, max_w, seed):
        rng = as_generator(seed)
        arena, pes, roots = _random_arena(rng, n_cells, max_p, max_w)
        assert arena.n_cells == n_cells
        assert arena.total_width == sum(pes)
        assert list(arena.widths()) == pes
        for c, (p, w) in enumerate(zip(pes, roots)):
            vec = arena.cell(c)
            assert vec.shape == (p,)
            assert vec[0] == w and np.all(vec[1:] == 0)
        unpacked = arena.unpack()
        for c in range(n_cells):
            assert np.array_equal(unpacked[c], arena.cell(c))
            unpacked[c][:] = -1  # copies: writing back must not alias
        assert np.all(arena.work >= 0)

    @given(cells_st, st.integers(1, 12), st.integers(1, 60), st.integers(0, 30), seed_st)
    @settings(max_examples=40, deadline=None)
    def test_lockstep_conservation(self, n_cells, max_p, max_w, cycles, seed):
        rng = as_generator(seed)
        arena, pes, roots = _random_arena(rng, n_cells, max_p, max_w)
        for _ in range(cycles):
            before = arena.remaining()
            counts = arena.expand_all()
            assert np.all(counts >= 0) and np.all(counts <= pes)
            assert np.array_equal(arena.remaining(), before - counts)
            assert arena.check_conservation(roots)
            # interleave a random intra-cell transfer (donor -> idle PE)
            c = int(rng.integers(0, n_cells))
            vec = arena.cell(c)
            donors = np.flatnonzero(vec >= 2)
            if donors.size:
                d = int(donors[int(rng.integers(0, donors.size))])
                give = int(rng.integers(1, vec[d]))
                vec[d] -= give
                vec[int(rng.integers(0, len(vec)))] += give
            assert arena.check_conservation(roots)

    @given(cells_st, st.integers(1, 12), st.integers(1, 60), seed_st)
    @settings(max_examples=40, deadline=None)
    def test_no_cross_cell_writes(self, n_cells, max_p, max_w, seed):
        rng = as_generator(seed)
        arena, pes, _ = _random_arena(rng, n_cells, max_p, max_w)
        target = int(rng.integers(0, n_cells))
        others_before = [
            arena.cell(c).copy() for c in range(n_cells) if c != target
        ]
        # hammer the target cell through its slice view
        vec = arena.cell(target)
        vec[:] = 0
        vec[0] = 7
        others_after = [
            arena.cell(c) for c in range(n_cells) if c != target
        ]
        for before, after in zip(others_before, others_after):
            assert np.array_equal(before, after)

    @given(cells_st, st.integers(1, 12), st.integers(1, 60), seed_st)
    @settings(max_examples=40, deadline=None)
    def test_finished_cells_self_mask(self, n_cells, max_p, max_w, seed):
        """Full-width kernels leave drained (all-zero) cells untouched."""
        rng = as_generator(seed)
        arena, pes, roots = _random_arena(rng, n_cells, max_p, max_w)
        drained = int(rng.integers(0, n_cells))
        arena.cell(drained)[:] = 0
        expanded_before = arena.expanded()[drained]
        counts = arena.expand_all()
        assert counts[drained] == 0
        assert arena.expanded()[drained] == expanded_before
        assert np.all(arena.cell(drained) == 0)
        assert arena.busy_counts()[drained] == 0
        assert arena.nonzero_counts()[drained] == 0


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MegaArena([])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            MegaArena([4, 0])

    def test_root_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="root work sizes"):
            MegaArena([4, 4], roots=[10])

    def test_cell_index_bounds(self):
        arena = MegaArena([3, 5], roots=[2, 2])
        with pytest.raises(IndexError):
            arena.cell(2)
        with pytest.raises(IndexError):
            arena.cell(-1)

    def test_conservation_shape_mismatch(self):
        arena = MegaArena([3], roots=[2])
        with pytest.raises(ValueError, match="work totals"):
            arena.check_conservation([2, 3])
