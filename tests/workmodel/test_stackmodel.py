from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import Scheduler
from repro.simd.cost import CostModel
from repro.simd.machine import SimdMachine
from repro.workmodel.stackmodel import StackWorkload


class TestConstruction:
    def test_root_on_pe_zero(self):
        wl = StackWorkload(100, 4, rng=0)
        assert list(wl.stacks[0]) == [100]
        assert all(not s for s in wl.stacks[1:])

    def test_validation(self):
        with pytest.raises(ValueError):
            StackWorkload(0, 4)
        with pytest.raises(ValueError):
            StackWorkload(10, 4, leaf_probability=1.0)
        with pytest.raises(ValueError, match="backend"):
            StackWorkload(10, 4, backend="gpu")
        with pytest.raises(ValueError, match="sampler"):
            StackWorkload(10, 4, sampler="antithetic")
        with pytest.raises(ValueError, match="arena"):
            StackWorkload(10, 4, backend="arena", sampler="pernode")


class TestMasks:
    def test_busy_needs_two_stack_nodes(self):
        wl = StackWorkload(100, 3, rng=0)
        wl.stacks[0] = deque([50])    # one huge subtree: expanding, NOT busy
        wl.stacks[1] = deque([2, 3])  # two entries: busy
        wl.stacks[2] = deque()
        wl.invalidate_masks()
        assert np.array_equal(wl.expanding_mask(), [True, True, False])
        assert np.array_equal(wl.busy_mask(), [False, True, False])
        assert np.array_equal(wl.idle_mask(), [False, False, True])

    def test_invalidate_masks_after_direct_mutation(self):
        wl = StackWorkload(100, 2, rng=0)
        assert np.array_equal(wl.idle_mask(), [False, True])
        wl.stacks[1] = deque([4, 5])
        wl.invalidate_masks()
        assert np.array_equal(wl.idle_mask(), [False, False])


class TestExpansion:
    @given(st.integers(5, 2000), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_conservation_and_exact_total(self, work, seed):
        wl = StackWorkload(work, 4, rng=seed)
        guard = 0
        while not wl.done():
            wl.expand_cycle()
            assert wl.check_conservation()
            guard += 1
            assert guard <= work + 1
        assert wl.total_expanded() == work

    def test_leaf_probability_chains(self):
        wl = StackWorkload(500, 2, leaf_probability=0.9, rng=1)
        while not wl.done():
            wl.expand_cycle()
        assert wl.total_expanded() == 500


class TestTransfer:
    def test_bottom_of_stack_donated(self):
        wl = StackWorkload(100, 2, rng=0)
        wl.stacks[0] = deque([40, 10, 5])
        wl.stacks[1] = deque()
        moved = wl.transfer(np.array([0]), np.array([1]))
        assert moved == 1
        assert list(wl.stacks[0]) == [10, 5]
        assert list(wl.stacks[1]) == [40]

    def test_refuses_unsplittable_donor(self):
        wl = StackWorkload(100, 2, rng=0)
        wl.stacks[0] = deque([100])
        assert wl.transfer(np.array([0]), np.array([1])) == 0

    def test_refuses_nonidle_receiver(self):
        wl = StackWorkload(100, 2, rng=0)
        wl.stacks[0] = deque([40, 10])
        wl.stacks[1] = deque([3])
        assert wl.transfer(np.array([0]), np.array([1])) == 0

    def test_shape_mismatch(self):
        wl = StackWorkload(100, 2, rng=0)
        with pytest.raises(ValueError):
            wl.transfer(np.array([0, 1]), np.array([1]))


class TestWithScheduler:
    @pytest.mark.parametrize("spec", ["GP-S0.75", "nGP-S0.75", "GP-DK", "GP-DP"])
    def test_full_run(self, spec):
        wl = StackWorkload(20_000, 32, rng=2)
        machine = SimdMachine(32, CostModel())
        init = 0.85 if spec.endswith(("DK", "DP")) else None
        metrics = Scheduler(wl, machine, spec, init_threshold=init).run()
        assert wl.done()
        assert metrics.total_work == 20_000
        assert machine.check_time_identity()
        assert 0 < metrics.efficiency <= 1
