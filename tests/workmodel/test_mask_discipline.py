"""Mask-cache discipline: no public mutator may leave memoized masks stale.

All three workload fidelities memoize their busy/idle/expanding masks
between mutations.  Every public mutator — ``expand_cycle``,
``transfer``, and the fault-path ``extract_pe`` / ``inject_pe`` — must
invalidate that cache itself; a caller reading masks right after a
mutation must see the post-mutation state without calling
``invalidate_masks`` by hand.  The check: warm the cache, mutate, read
the (possibly cached) masks, then force invalidation and re-read — the
two reads must agree for every mutator on every workload and backend.
"""

import numpy as np
import pytest

from repro.problems.fifteen_puzzle import BENCH_INSTANCES
from repro.search.parallel import SearchWorkload
from repro.workmodel.divisible import DivisibleWorkload
from repro.workmodel.stackmodel import StackWorkload

N_PES = 8


def _make_search(backend):
    problem = BENCH_INSTANCES["tiny"]
    bound = problem.heuristic(problem.initial_state()) + 6
    return SearchWorkload(problem, bound, N_PES, backend=backend)


WORKLOADS = {
    "divisible": lambda: DivisibleWorkload(500, N_PES, rng=0),
    "stack-list": lambda: StackWorkload(500, N_PES, rng=0),
    "stack-arena": lambda: StackWorkload(500, N_PES, rng=0, backend="arena"),
    "search-list": lambda: _make_search("list"),
    "search-arena": lambda: _make_search("arena"),
}


def _masks(wl):
    return (
        wl.busy_mask().copy(),
        wl.idle_mask().copy(),
        wl.expanding_mask().copy(),
    )


def _assert_masks_fresh(wl):
    """Masks read after a mutation equal masks recomputed from scratch."""
    cached = _masks(wl)
    wl.invalidate_masks()
    fresh = _masks(wl)
    for got, want, name in zip(cached, fresh, ("busy", "idle", "expanding")):
        assert np.array_equal(got, want), f"stale {name} mask after mutation"


def _grow(wl, cycles):
    """Expand a few cycles so some PEs are busy and some idle."""
    for _ in range(cycles):
        _masks(wl)  # keep the cache warm through every step
        if wl.done():
            break
        wl.expand_cycle()
        _assert_masks_fresh(wl)


@pytest.mark.parametrize("name", WORKLOADS, ids=list(WORKLOADS))
def test_expand_cycle_invalidates(name):
    wl = WORKLOADS[name]()
    _masks(wl)
    wl.expand_cycle()
    _assert_masks_fresh(wl)
    _grow(wl, 10)


@pytest.mark.parametrize("name", WORKLOADS, ids=list(WORKLOADS))
def test_transfer_invalidates(name):
    wl = WORKLOADS[name]()
    for _ in range(200):
        if wl.done():
            pytest.skip("workload drained before a donor/receiver pair arose")
        wl.expand_cycle()
        busy = np.flatnonzero(wl.busy_mask())
        idle = np.flatnonzero(wl.idle_mask())
        if len(busy) and len(idle):
            break
    k = min(len(busy), len(idle))
    _masks(wl)
    wl.transfer(busy[:k], idle[:k])
    _assert_masks_fresh(wl)


@pytest.mark.parametrize("name", WORKLOADS, ids=list(WORKLOADS))
def test_extract_and_inject_invalidate(name):
    wl = WORKLOADS[name]()
    for _ in range(5):
        if not wl.done():
            wl.expand_cycle()
    holders = np.flatnonzero(wl.expanding_mask())
    assert len(holders), "fixture must leave at least one non-empty PE"
    donor = int(holders[0])
    empties = np.flatnonzero(wl.idle_mask())
    receiver = int(empties[0]) if len(empties) else (donor + 1) % N_PES

    _masks(wl)
    payload, n_entries = wl.extract_pe(donor)
    assert n_entries > 0
    assert not wl.expanding_mask()[donor], "extracted PE must read empty"
    _assert_masks_fresh(wl)

    _masks(wl)
    injected = wl.inject_pe(receiver, payload)
    assert injected == n_entries
    assert wl.expanding_mask()[receiver], "injected PE must read non-empty"
    _assert_masks_fresh(wl)


@pytest.mark.parametrize("name", WORKLOADS, ids=list(WORKLOADS))
def test_extract_inject_round_trip_conserves_totals(name):
    wl = WORKLOADS[name]()
    for _ in range(5):
        if not wl.done():
            wl.expand_cycle()
    before = wl._counts().copy() if hasattr(wl, "_counts") else None
    holders = np.flatnonzero(wl.expanding_mask())
    donor = int(holders[0])
    payload, n_entries = wl.extract_pe(donor)
    back = wl.inject_pe(donor, payload)
    assert back == n_entries
    if before is not None:
        assert np.array_equal(wl._counts(), before)
