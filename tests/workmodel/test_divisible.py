import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.splitting import HalfSplitter
from repro.workmodel.divisible import DivisibleWorkload
from repro.util.rng import as_generator


class TestConstruction:
    def test_root_initial_distribution(self):
        wl = DivisibleWorkload(100, 8)
        assert wl.work[0] == 100
        assert wl.work[1:].sum() == 0

    def test_uniform_initial_distribution(self):
        wl = DivisibleWorkload(10, 4, initial="uniform")
        assert wl.work.sum() == 10
        assert wl.work.max() - wl.work.min() <= 1

    def test_bad_initial_rejected(self):
        with pytest.raises(ValueError, match="initial"):
            DivisibleWorkload(10, 4, initial="weird")

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            DivisibleWorkload(0, 4)
        with pytest.raises(ValueError):
            DivisibleWorkload(10, 0)


class TestMasks:
    def test_mask_definitions(self):
        wl = DivisibleWorkload(10, 4)
        wl.work[:] = [0, 1, 2, 5]
        assert np.array_equal(wl.expanding_mask(), [False, True, True, True])
        assert np.array_equal(wl.busy_mask(), [False, False, True, True])
        assert np.array_equal(wl.idle_mask(), [True, False, False, False])


class TestExpandCycle:
    def test_consumes_one_per_active(self):
        wl = DivisibleWorkload(10, 4)
        wl.work[:] = [3, 0, 1, 2]
        n = wl.expand_cycle()
        assert n == 3
        assert np.array_equal(wl.work, [2, 0, 0, 1])

    def test_exact_total_consumption(self):
        wl = DivisibleWorkload(1000, 8, rng=0)
        cycles = 0
        while not wl.done():
            wl.expand_cycle()
            cycles += 1
            assert cycles < 10_000
        assert wl.total_expanded() == 1000
        assert wl.total_remaining() == 0


class TestTransfer:
    def test_half_split(self):
        wl = DivisibleWorkload(100, 4, splitter=HalfSplitter(), rng=0)
        wl.work[:] = [10, 0, 0, 0]
        moved = wl.transfer(np.array([0]), np.array([1]))
        assert moved == 1
        assert np.array_equal(wl.work, [5, 5, 0, 0])

    def test_skips_invalid_donor(self):
        wl = DivisibleWorkload(100, 4, rng=0)
        wl.work[:] = [1, 0, 0, 0]
        assert wl.transfer(np.array([0]), np.array([1])) == 0

    def test_empty_transfer(self):
        wl = DivisibleWorkload(100, 4)
        assert wl.transfer(np.array([], dtype=int), np.array([], dtype=int)) == 0

    def test_shape_mismatch_rejected(self):
        wl = DivisibleWorkload(100, 4)
        with pytest.raises(ValueError):
            wl.transfer(np.array([0]), np.array([1, 2]))

    @given(st.integers(10, 5000), st.integers(2, 32), st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_conservation_under_random_schedule(self, work, n_pes, seed):
        rng = as_generator(seed)
        wl = DivisibleWorkload(work, n_pes, rng=seed)
        guard = 0
        while not wl.done():
            guard += 1
            assert guard < work + 10
            wl.expand_cycle()
            assert wl.check_conservation()
            busy = np.flatnonzero(wl.busy_mask())
            idle = np.flatnonzero(wl.idle_mask())
            k = min(len(busy), len(idle))
            if k > 0 and rng.random() < 0.5:
                wl.transfer(rng.permutation(busy)[:k], rng.permutation(idle)[:k])
                assert wl.check_conservation()
        assert wl.total_expanded() == work
