import numpy as np
import pytest

from repro.core.triggering import DKTrigger, DPTrigger, StaticTrigger
from repro.workmodel.profiles import cliff_profile, gradual_profile, trigger_fire_cycle


class TestGradualProfile:
    def test_starts_at_p_ends_at_floor(self):
        prof = gradual_profile(100, 50)
        assert prof[0] == 100
        assert prof[-1] == 1

    def test_monotone_nonincreasing(self):
        prof = gradual_profile(256, 200)
        assert np.all(np.diff(prof) <= 0)

    def test_concave_shape(self):
        # Figure 5a: the decay accelerates (early losses are small).
        prof = gradual_profile(1000, 100).astype(float)
        first_half_drop = prof[0] - prof[50]
        second_half_drop = prof[50] - prof[-1]
        assert second_half_drop > first_half_drop


class TestCliffProfile:
    def test_collapses_to_tail(self):
        prof = cliff_profile(1000, 200, cliff_at=0.1, tail_active=2)
        assert prof[0] == 1000
        assert np.all(prof[20:] == 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            cliff_profile(10, 10, cliff_at=0.0)
        with pytest.raises(ValueError):
            cliff_profile(10, 10, tail_active=11)


class TestTriggerFireCycle:
    def test_static_fires_at_threshold_crossing(self):
        prof = gradual_profile(100, 100)
        fire = trigger_fire_cycle(StaticTrigger(x=0.5), prof)
        assert fire is not None
        assert prof[fire] <= 50
        assert fire == 0 or prof[fire - 1] > 50

    def test_dp_prompt_on_gradual(self):
        prof = gradual_profile(1024, 2000)
        fire = trigger_fire_cycle(DPTrigger(initial_lb_cost=0.013), prof)
        assert fire is not None
        assert prof[fire] > 0.5 * 1024  # fires while most PEs still active

    def test_dp_never_fires_on_cliff_with_high_lb_cost(self):
        # Section 6.1 observation 3: once one PE is active, R1 stops
        # growing, so any L exceeding the cliff's area (here ~1.5e3
        # processor-seconds) starves D_P forever.
        prof = cliff_profile(1024, 2000, cliff_at=0.05, tail_active=1)
        fire = trigger_fire_cycle(DPTrigger(initial_lb_cost=5000.0), prof)
        assert fire is None

    def test_dk_always_fires_on_cliff(self):
        prof = cliff_profile(1024, 2000, cliff_at=0.05, tail_active=1)
        fire = trigger_fire_cycle(DKTrigger(initial_lb_cost=0.013), prof)
        assert fire is not None

    def test_dk_fires_later_when_lb_expensive(self):
        prof = cliff_profile(1024, 5000, cliff_at=0.05)
        cheap = trigger_fire_cycle(DKTrigger(initial_lb_cost=0.013), prof)
        dear = trigger_fire_cycle(DKTrigger(initial_lb_cost=0.13), prof)
        assert cheap is not None and dear is not None
        assert dear > cheap
