"""Runtime sanitizer: fuzzed invariant checks and deliberate fault injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PAPER_SCHEMES
from repro.core.scheduler import Scheduler
from repro.lint.runtime import SanitizerError, SchedulerSanitizer, require
from repro.simd.dataparallel import ParallelVM
from repro.simd.machine import SimdMachine
from repro.workmodel.divisible import DivisibleWorkload
from repro.workmodel.stackmodel import StackWorkload


class TestFuzzSchedulerInvariants:
    """Random workloads under every scheme never trip the sanitizer."""

    @settings(max_examples=30, deadline=None)
    @given(
        work=st.integers(min_value=10, max_value=4000),
        n_pes=st.integers(min_value=2, max_value=96),
        scheme=st.sampled_from(PAPER_SCHEMES),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        init=st.sampled_from([None, 0.5, 0.85]),
    )
    def test_divisible_workload_clean(self, work, n_pes, scheme, seed, init):
        workload = DivisibleWorkload(work, n_pes, rng=seed)
        scheduler = Scheduler(
            workload,
            SimdMachine(n_pes, sanitize=True),
            scheme,
            init_threshold=init,
            sanitize=True,
        )
        metrics = scheduler.run()
        assert metrics.total_work == work

    @settings(max_examples=10, deadline=None)
    @given(
        work=st.integers(min_value=20, max_value=600),
        n_pes=st.integers(min_value=2, max_value=32),
        scheme=st.sampled_from(PAPER_SCHEMES),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_stack_workload_clean(self, work, n_pes, scheme, seed):
        workload = StackWorkload(work, n_pes, rng=seed)
        scheduler = Scheduler(
            workload, SimdMachine(n_pes, sanitize=True), scheme, sanitize=True
        )
        metrics = scheduler.run()
        assert metrics.total_work == work


class _PointerCorruptingWorkload:
    """Proxy workload that corrupts the scheduler's GP pointer mid-run."""

    def __init__(self, inner, after_cycles):
        self.inner = inner
        self.after_cycles = after_cycles
        self.scheduler = None
        self._cycles = 0

    def expand_cycle(self):
        n = self.inner.expand_cycle()
        self._cycles += 1
        if self._cycles == self.after_cycles:
            self.scheduler.matcher.pointer = self.inner.n_pes + 7
        return n

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestFaultInjection:
    def test_corrupted_gp_pointer_is_caught(self):
        inner = DivisibleWorkload(5000, 16, rng=0)
        workload = _PointerCorruptingWorkload(inner, after_cycles=40)
        scheduler = Scheduler(
            workload, SimdMachine(16), "GP-S0.90", sanitize=True
        )
        workload.scheduler = scheduler
        with pytest.raises(SanitizerError, match="gp-pointer-range"):
            scheduler.run()

    def test_same_run_clean_without_corruption(self):
        scheduler = Scheduler(
            DivisibleWorkload(5000, 16, rng=0),
            SimdMachine(16),
            "GP-S0.90",
            sanitize=True,
        )
        assert scheduler.run().total_work == 5000
        assert scheduler.matcher is not None
        assert scheduler.trigger is not None

    def test_sanitize_does_not_change_the_run(self):
        def run(sanitize):
            return Scheduler(
                DivisibleWorkload(20_000, 64, rng=3),
                SimdMachine(64),
                "GP-DK",
                init_threshold=0.85,
                sanitize=sanitize,
            ).run()

        plain, checked = run(False), run(True)
        assert plain.n_expand == checked.n_expand
        assert plain.n_lb == checked.n_lb
        assert plain.n_transfers == checked.n_transfers
        assert plain.ledger.elapsed == checked.ledger.elapsed


class TestSchedulerSanitizerUnits:
    def test_disjoint_masks_violation(self):
        sanitizer = SchedulerSanitizer(4)
        overlap = np.array([True, False, False, False])
        with pytest.raises(SanitizerError, match="masks-disjoint"):
            sanitizer.check_masks(overlap, overlap, np.ones(4, dtype=bool))

    def test_exhaustive_masks_violation(self):
        sanitizer = SchedulerSanitizer(4)
        none = np.zeros(4, dtype=bool)
        with pytest.raises(SanitizerError, match="masks-exhaustive"):
            sanitizer.check_masks(none, none, none)

    def test_round_progress_violation(self):
        with pytest.raises(SanitizerError, match="lb-round-progress"):
            SchedulerSanitizer(8).check_round_progress(3, 3, 2)

    def test_round_progress_exact_accounting(self):
        with pytest.raises(SanitizerError, match="lb-round-progress"):
            SchedulerSanitizer(8).check_round_progress(5, 2, 1)
        SchedulerSanitizer(8).check_round_progress(5, 3, 2)

    def test_pointer_bounds(self):
        sanitizer = SchedulerSanitizer(8)

        class FakeMatcher:
            pointer = None

        sanitizer.check_pointer(FakeMatcher())  # None is fine
        FakeMatcher.pointer = 7
        sanitizer.check_pointer(FakeMatcher())
        FakeMatcher.pointer = -1
        with pytest.raises(SanitizerError, match="gp-pointer-range"):
            sanitizer.check_pointer(FakeMatcher())

    def test_require_passthrough(self):
        require(True, "anything", "never raised")
        with pytest.raises(SanitizerError) as excinfo:
            require(False, "my-invariant", "boom")
        assert excinfo.value.invariant == "my-invariant"
        assert isinstance(excinfo.value, AssertionError)


class TestParallelVMSanitize:
    def test_balanced_where_is_clean(self):
        vm = ParallelVM(8, sanitize=True)
        mask = np.arange(8) < 4
        with vm.where(mask):
            with vm.where(~mask):
                assert vm.context_depth == 2
        assert vm.context_depth == 0
        vm.assert_balanced()

    def test_extra_push_inside_where_caught(self):
        vm = ParallelVM(8, sanitize=True)
        with pytest.raises(SanitizerError, match="context-balance"):
            with vm.where(np.ones(8, dtype=bool)):
                vm._context.append(np.ones(8, dtype=bool))

    def test_rogue_pop_inside_where_caught(self):
        vm = ParallelVM(8, sanitize=True)
        with pytest.raises(SanitizerError, match="context-balance"):
            with vm.where(np.ones(8, dtype=bool)):
                vm._context.pop()

    def test_assert_balanced_reports_open_frames(self):
        vm = ParallelVM(4, sanitize=True)
        vm._context.append(np.ones(4, dtype=bool))
        with pytest.raises(SanitizerError, match="context-balance"):
            vm.assert_balanced()

    def test_unsanitized_vm_keeps_old_behaviour(self):
        vm = ParallelVM(8)
        with vm.where(np.ones(8, dtype=bool)):
            vm._context.append(np.ones(8, dtype=bool))
            vm._context.pop()
        assert vm.context_depth == 0


class TestMachineSanitize:
    def test_clean_charges_pass(self):
        machine = SimdMachine(8, sanitize=True)
        machine.charge_expansion_cycle(5)
        machine.charge_lb_phase(transfer_rounds=1, n_transfers=3)
        machine.charge_collective(0.001)
        assert machine.check_time_identity()

    def test_corrupted_ledger_caught_on_next_charge(self):
        machine = SimdMachine(8, sanitize=True)
        machine.charge_expansion_cycle(5)
        machine.ledger.t_calc += 1.0  # break the identity behind its back
        with pytest.raises(SanitizerError, match="time-identity"):
            machine.charge_expansion_cycle(5)
