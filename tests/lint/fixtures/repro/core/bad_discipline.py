"""Seeded violations of every lint rule — consumed by the lint tests only.

This module is never imported; it lives under a ``repro/core/`` directory
so the scoped rules (R002, R004) treat it like a real core module.  It
deliberately omits ``__all__`` (R003).
"""

import random
import time

import numpy as np

from repro.simd.scan import sum_scan


def jitter():
    return random.random() + np.random.default_rng().random()


def stamp():
    return time.time()


def pick(options):
    for item in {1, 2, 3}:
        options.append(item)
    return options


def raw_scan(vm):
    values = vm.pvar(1)
    return sum_scan(values)
