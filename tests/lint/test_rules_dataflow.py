"""Golden tests for the dataflow rule family (R100-R103).

Each rule gets its seeded fixture (a true positive per violation class)
and near-misses that must stay clean — including the acceptance cases:
a non-``spawn_child`` RNG for R100 and an unmasked PE write for R103.
The call-graph tests pin the interprocedural machinery the rules ride
on: cross-module return provenance and call-site parameter provenance.
"""

import ast
from pathlib import Path

from repro.lint import run_lint
from repro.lint.dataflow import MASK_INDEX, RNG_BAD, compute_project_facts
from repro.lint.graph import build_project, module_name_for, parse_kernel_pragmas

FIXTURES = Path(__file__).resolve().parent / "fixtures_dataflow"
KERN = FIXTURES / "repro" / "kern"


def lint_fixture(name, rules):
    return run_lint([str(KERN / name)], rules=rules)


def flagged_functions(result, source_path):
    """Names of the fixture functions each finding lands in."""
    tree = ast.parse(source_path.read_text())
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.name, node.lineno, node.end_lineno))
    out = set()
    for f in result.findings:
        for name, lo, hi in spans:
            if lo <= f.line <= hi:
                out.add(name)
    return out


class TestR100RngProvenance:
    def test_positives_fire(self):
        result = lint_fixture("rng_flow.py", ["R100"])
        hit = flagged_functions(result, KERN / "rng_flow.py")
        assert "bad_direct" in hit  # the non-spawn_child acceptance case
        assert "bad_laundered" in hit  # RNG_BAD through a helper's return

    def test_draw_from_bad_stream_reported(self):
        result = lint_fixture("rng_flow.py", ["R100"])
        assert any(".integers()" in f.message for f in result.findings)

    def test_near_misses_stay_clean(self):
        result = lint_fixture("rng_flow.py", ["R100"])
        hit = flagged_functions(result, KERN / "rng_flow.py")
        assert "good_as_generator" not in hit
        assert "good_spawn_child" not in hit
        # the helper itself is not kernel-scoped
        assert "_launder" not in hit


class TestR101Nondeterminism:
    def test_all_source_classes_fire(self):
        result = lint_fixture("nondet.py", ["R101"])
        messages = " ".join(f.message for f in result.findings)
        assert "time.perf_counter" in messages
        assert "os.environ" in messages
        assert "iteration over a set" in messages
        assert "id()-keyed" in messages

    def test_near_misses_stay_clean(self):
        result = lint_fixture("nondet.py", ["R101"])
        hit = flagged_functions(result, KERN / "nondet.py")
        assert "near_miss_not_kernel" not in hit
        assert "near_miss_sorted_view" not in hit


class TestR102KernelPurity:
    def test_all_purity_clauses_fire(self):
        result = lint_fixture("purity.py", ["R102"])
        hit = flagged_functions(result, KERN / "purity.py")
        assert {
            "bad_pe_loop",
            "bad_object_dtype",
            "bad_float_drift",
            "bad_io",
            "bad_memo",
        } <= hit

    def test_memo_finding_names_the_bench_regression(self):
        result = lint_fixture("purity.py", ["R102"])
        memo = [f for f in result.findings if "memoization" in f.message]
        assert len(memo) == 1
        assert "BENCH_search.json" in memo[0].message

    def test_near_misses_stay_clean(self):
        result = lint_fixture("purity.py", ["R102"])
        hit = flagged_functions(result, KERN / "purity.py")
        assert "near_miss_bounded_loop" not in hit
        assert "near_miss_int64" not in hit
        assert "near_miss_unmarked" not in hit


class TestR103MaskProvenance:
    def test_unmasked_pe_write_fires(self):
        result = run_lint([str(FIXTURES)], rules=["R103"])
        hit = flagged_functions(result, KERN / "mask_writes.py")
        assert "bad_unmasked_write" in hit  # the acceptance case

    def test_near_misses_stay_clean(self):
        result = run_lint([str(FIXTURES)], rules=["R103"])
        hit = flagged_functions(result, KERN / "mask_writes.py")
        for clean in (
            "good_flatnonzero",
            "good_guarded",
            "good_full_slice",
            "good_documented",
        ):
            assert clean not in hit, clean

    def test_interprocedural_mask_provenance(self):
        """push_masked is clean only because driver.py passes
        np.flatnonzero indices: linted alone it must be flagged."""
        whole = run_lint([str(FIXTURES)], rules=["R103"])
        assert "push_masked" not in flagged_functions(
            whole, KERN / "mask_writes.py"
        )
        alone = lint_fixture("mask_writes.py", ["R103"])
        assert "push_masked" in flagged_functions(
            alone, KERN / "mask_writes.py"
        )


def _fixture_entries():
    entries = []
    for path in sorted(KERN.glob("*.py")):
        logical = f"repro/kern/{path.name}"
        entries.append((path, logical, path.read_text(), ast.parse(path.read_text())))
    return entries


class TestCallGraph:
    def test_pragmas_attach_to_functions(self):
        source = (KERN / "rng_flow.py").read_text()
        module_level, defs = parse_kernel_pragmas(source, ast.parse(source))
        assert not module_level
        assert len(defs) == 4  # the four pragma-marked functions

    def test_docstring_mention_is_not_a_pragma(self):
        source = '"""Docs mention # repro: kernel but mean nothing."""\nx = 1\n'
        module_level, defs = parse_kernel_pragmas(source, ast.parse(source))
        assert not module_level and not defs

    def test_attr_alias_call_resolves_across_modules(self):
        project = build_project(_fixture_entries())
        donate = project.functions["repro.kern.driver.Scheduler.donate"]
        assert donate.kernel
        assert (
            project.attr_types["repro.kern.driver.Scheduler._arena"]
            == "repro.kern.mask_writes.TinyArena"
        )
        assert (
            "repro.kern.mask_writes.TinyArena.push_masked"
            in project.call_graph["repro.kern.driver.Scheduler.donate"]
        )
        assert project.callers_of(
            "repro.kern.mask_writes.TinyArena.push_masked"
        ) == [
            "repro.kern.driver.Scheduler.donate",
            "repro.kern.driver.donate_through_param",
            "repro.kern.driver.fill_annotated",
        ]

    def test_annotated_param_call_resolves(self):
        """A parameter annotated with a project class types the receiver."""
        project = build_project(_fixture_entries())
        assert (
            "repro.kern.mask_writes.TinyArena.push_masked"
            in project.call_graph["repro.kern.driver.fill_annotated"]
        )

    def test_attr_alias_through_annotated_receiver(self):
        """``arena = sched._arena`` resolves when ``sched`` is annotated."""
        project = build_project(_fixture_entries())
        assert (
            "repro.kern.mask_writes.TinyArena.push_masked"
            in project.call_graph["repro.kern.driver.donate_through_param"]
        )

    def test_return_provenance_crosses_functions(self):
        project = build_project(_fixture_entries())
        facts = compute_project_facts(project)
        assert RNG_BAD in facts["repro.kern.rng_flow._launder"].returns
        assert RNG_BAD in facts["repro.kern.rng_flow.bad_laundered"].returns

    def test_param_provenance_from_call_sites(self):
        project = build_project(_fixture_entries())
        facts = compute_project_facts(project)
        params = facts["repro.kern.mask_writes.TinyArena.push_masked"].params
        assert MASK_INDEX in params.get("pes", set())

    def test_module_name_for(self):
        assert module_name_for("repro/kern/driver.py") == "repro.kern.driver"
        assert module_name_for("repro/kern/__init__.py") == "repro.kern"


class TestSuppressionAndConfig:
    def test_inline_disable_applies_to_dataflow_rules(self, tmp_path):
        bad = (KERN / "rng_flow.py").read_text().replace(
            "gen = np.random.default_rng(seed)",
            "gen = np.random.default_rng(seed)  # repro-lint: disable=R100",
        )
        target = tmp_path / "repro" / "kern" / "rng_flow.py"
        target.parent.mkdir(parents=True)
        target.write_text(bad)
        result = run_lint([str(target)], rules=["R100"])
        # the bind finding on the disabled line is gone; the draw on the
        # next line still fires, which is exactly line-scoped behavior
        assert not any("'bad_direct' binds" in f.message for f in result.findings)
        assert any(".integers()" in f.message for f in result.findings)
        assert result.suppressed >= 1

    def test_severity_override_downgrades_to_warning(self):
        from repro.lint.config import LintConfig

        cfg = LintConfig(severity={"R103": "warning"})
        result = run_lint(
            [str(KERN / "mask_writes.py")], rules=["R103"], config=cfg
        )
        assert result.findings and result.ok  # reported but not failing

    def test_per_path_disable(self):
        from repro.lint.config import LintConfig

        cfg = LintConfig(per_path={"repro/kern/": ["R103"]})
        result = run_lint(
            [str(KERN / "mask_writes.py")], rules=["R103"], config=cfg
        )
        assert result.findings == []
