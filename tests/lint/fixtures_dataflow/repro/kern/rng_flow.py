"""R100 fixture: RNG provenance in kernel-marked code.

Seeded true positives: a kernel binding a stream straight from
``numpy.random.default_rng`` (the non-spawn_child case), the same
stream laundered through a local helper, and a draw from it.
Near-misses: streams rooted at ``as_generator`` / ``spawn_child`` must
stay clean.
"""

import numpy as np

from repro.util.rng import as_generator, spawn_child


def _launder(seed):
    return np.random.default_rng(seed)


def bad_direct(seed):  # repro: kernel
    gen = np.random.default_rng(seed)
    return gen.integers(0, 10)


def bad_laundered(seed):  # repro: kernel
    gen = _launder(seed)
    return gen


def good_as_generator(seed):  # repro: kernel
    gen = as_generator(seed)
    return gen.integers(0, 10)


def good_spawn_child(seed, index):  # repro: kernel
    gen = spawn_child(seed, index)
    return gen.random()
