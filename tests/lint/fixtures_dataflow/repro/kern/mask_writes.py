"""R103 fixture: mask provenance for PE-indexed arena writes.

``bad_unmasked_write`` is the seeded unmasked-PE-write true positive.
``push_masked`` is only clean *interprocedurally*: its ``pes`` argument
carries mask provenance solely from the call site in ``driver.py`` —
linting this file alone must flag it, linting the package must not.
"""

import numpy as np


class TinyArena:
    def __init__(self, n_pes):
        self.tops = np.zeros(n_pes, dtype=np.int64)

    def bad_unmasked_write(self, pes, vals):  # repro: kernel
        self.tops[pes] = vals

    def push_masked(self, pes, vals):  # repro: kernel
        self.tops[pes] = vals

    def good_flatnonzero(self, alive, vals):  # repro: kernel
        pes = np.flatnonzero(alive)
        self.tops[pes] = vals[pes]

    def good_guarded(self, counts, pe, val):  # repro: kernel
        live = counts > 0
        if live[pe]:
            self.tops[pe] = val

    def good_full_slice(self):  # repro: kernel
        self.tops[:] = 0

    def good_documented(self, pes, vals):  # repro: kernel
        """Full-width setup write; every PE is reinitialized."""
        self.tops[pes] = vals
