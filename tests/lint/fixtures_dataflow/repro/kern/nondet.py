"""R101 fixture: host-environment nondeterminism in kernel code.

Positives cover every source class the rule knows: wall-clock reads,
``os.environ``, set-order iteration, and ``id()``-keyed maps.  The
near-misses are the same constructs outside kernel scope or behind a
``sorted()`` view.
"""

import os
import time


def bad_clock():  # repro: kernel
    return time.perf_counter()


def bad_environ():  # repro: kernel
    return os.environ["OMP_NUM_THREADS"]


def bad_set_iteration(xs):  # repro: kernel
    return [x for x in set(xs)]


def bad_id_keyed(objs):  # repro: kernel
    return {id(o): o for o in objs}


def near_miss_not_kernel():
    return time.perf_counter()


def near_miss_sorted_view(xs):  # repro: kernel
    return [x for x in sorted(set(xs))]
