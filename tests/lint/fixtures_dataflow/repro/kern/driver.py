"""Call-graph fixture: mask indices flow into the arena through a call.

``donate`` derives PE indices with ``np.flatnonzero`` and hands them to
``TinyArena.push_masked`` through an instance-attribute alias — the
exact call style the real kernels use.  The interprocedural pass must
carry MASK_INDEX into ``push_masked``'s ``pes`` parameter.

``fill_annotated`` and ``donate_through_param`` exercise the
annotation-typed variants: a parameter annotated with a project class
resolves directly, and an instance attribute read off such a parameter
(``sched._arena``) resolves through the attribute-type table — the call
style of the extracted kernel tier, where the workload arrives as an
annotated function parameter instead of ``self``.
"""

import numpy as np

from repro.kern.mask_writes import TinyArena


class Scheduler:
    def __init__(self, n_pes):
        self._arena = TinyArena(n_pes)

    def donate(self, counts, vals):  # repro: kernel
        pes = np.flatnonzero(counts > 0)
        arena = self._arena
        arena.push_masked(pes, vals)
        return pes


def fill_annotated(arena: TinyArena, alive, vals):  # repro: kernel
    pes = np.flatnonzero(alive)
    arena.push_masked(pes, vals)
    return pes


def donate_through_param(sched: Scheduler, counts, vals):  # repro: kernel
    pes = np.flatnonzero(counts > 0)
    arena = sched._arena
    arena.push_masked(pes, vals)
    return pes
