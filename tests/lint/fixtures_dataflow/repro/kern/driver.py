"""Call-graph fixture: mask indices flow into the arena through a call.

``donate`` derives PE indices with ``np.flatnonzero`` and hands them to
``TinyArena.push_masked`` through an instance-attribute alias — the
exact call style the real kernels use.  The interprocedural pass must
carry MASK_INDEX into ``push_masked``'s ``pes`` parameter.
"""

import numpy as np

from repro.kern.mask_writes import TinyArena


class Scheduler:
    def __init__(self, n_pes):
        self._arena = TinyArena(n_pes)

    def donate(self, counts, vals):  # repro: kernel
        pes = np.flatnonzero(counts > 0)
        arena = self._arena
        arena.push_masked(pes, vals)
        return pes
