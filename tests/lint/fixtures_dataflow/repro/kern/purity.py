"""R102 fixture: kernel purity (PE loops, dtype drift, I/O, memo).

One seeded violation per purity clause, plus near-misses that look
similar but are allowed: a bounded (non-PE-axis) loop, an int64 array,
and the same PE loop in an unmarked method.
"""

import numpy as np

from repro.search.memo import HeuristicMemo


class KernelArena:
    def bad_pe_loop(self, vals):  # repro: kernel
        total = 0
        for pe in range(self.n_pes):
            total += vals[pe]
        return total

    def bad_object_dtype(self, n):  # repro: kernel
        return np.empty(n, dtype=object)

    def bad_float_drift(self, tops):  # repro: kernel
        return tops.astype(np.float64)

    def bad_io(self, report):  # repro: kernel
        print(report)

    def bad_memo(self, h):  # repro: kernel
        return HeuristicMemo(h)

    def near_miss_bounded_loop(self, k):  # repro: kernel
        return [i * i for i in range(k)]

    def near_miss_int64(self, n):  # repro: kernel
        return np.zeros(n, dtype=np.int64)

    def near_miss_unmarked(self, vals):
        total = 0
        for pe in range(self.n_pes):
            total += vals[pe]
        return total
