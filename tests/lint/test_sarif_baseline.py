"""SARIF 2.1.0 shape, the baseline ratchet, and the repo self-check."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import run_lint
from repro.lint.baseline import Baseline, apply_baseline, fingerprint
from repro.lint.config import load_config
from repro.lint.findings import Finding, Severity
from repro.lint.sarif import render_sarif, to_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
BASELINE_PATH = REPO_ROOT / ".lint-baseline.json"


def make_finding(line=10, snippet="x = bad()", rule="R001", logical="repro/core/m.py"):
    return Finding(
        rule=rule,
        path=f"/abs/{logical}",
        line=line,
        col=0,
        message="msg",
        severity=Severity.ERROR,
        logical=logical,
        snippet=snippet,
    )


class TestSarifShape:
    def test_log_structure(self):
        result = run_lint([str(FIXTURES)])
        log = to_sarif(result)
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        [run] = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        catalog = {r["id"] for r in driver["rules"]}
        # the full catalog ships in every run, both rule families
        assert {"R001", "R002", "R003", "R004", "R005"} <= catalog
        assert {"R100", "R101", "R102", "R103"} <= catalog
        assert run["results"], "fixture findings must appear as results"

    def test_result_entries(self):
        result = run_lint([str(FIXTURES)])
        log = to_sarif(result)
        [run] = log["runs"]
        rules = run["tool"]["driver"]["rules"]
        for entry in run["results"]:
            assert entry["level"] in ("error", "warning")
            assert entry["message"]["text"]
            assert entry["partialFingerprints"]["reproLint/v1"]
            [loc] = entry["locations"]
            region = loc["physicalLocation"]["region"]
            assert region["startLine"] >= 1 and region["startColumn"] >= 1
            assert loc["physicalLocation"]["artifactLocation"]["uri"]
            # ruleIndex points at the matching catalog entry
            assert rules[entry["ruleIndex"]]["id"] == entry["ruleId"]

    def test_clean_run_has_empty_results(self):
        result = run_lint([str(REPO_ROOT / "src" / "repro" / "util")])
        log = json.loads(render_sarif(result))
        assert log["runs"][0]["results"] == []

    def test_cli_sarif_output_parses(self, capsys):
        main(["lint", str(FIXTURES), "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"


class TestFingerprint:
    def test_line_number_insensitive(self):
        a = make_finding(line=10)
        b = make_finding(line=99)
        assert fingerprint(a) == fingerprint(b)

    def test_sensitive_to_rule_path_and_snippet(self):
        base = make_finding()
        assert fingerprint(base) != fingerprint(make_finding(rule="R002"))
        assert fingerprint(base) != fingerprint(
            make_finding(logical="repro/core/other.py")
        )
        assert fingerprint(base) != fingerprint(make_finding(snippet="y = bad()"))

    def test_duplicate_lines_get_distinct_occurrences(self):
        findings = [make_finding(line=10), make_finding(line=20)]
        baseline = Baseline.from_findings(findings)
        assert len(baseline) == 2


class TestRatchet:
    def test_baselined_findings_drop_new_ones_survive(self):
        old = make_finding()
        baseline = Baseline.from_findings([old])
        new = make_finding(snippet="z = worse()")
        surviving, dropped = apply_baseline([old, new], baseline)
        assert dropped == 1
        assert surviving == [new]

    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_findings([make_finding()])
        path = baseline.save(tmp_path / "b.json")
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert fingerprint(make_finding()) in loaded

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_malformed_file_rejected(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text('{"not": "a baseline"}')
        with pytest.raises(ValueError, match="entries"):
            Baseline.load(bad)

    def test_update_baseline_cli_round_trip(self, tmp_path, capsys):
        # copy the fixture out of the config-excluded tree
        bad = tmp_path / "repro" / "core" / "bad_discipline.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            (FIXTURES / "repro" / "core" / "bad_discipline.py").read_text()
        )
        path = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--update-baseline",
                     "--baseline", str(path)]) == 0
        capsys.readouterr()
        # every finding is now accepted debt: the ratcheted run passes...
        assert main(["lint", str(bad), "--baseline", str(path)]) == 0
        assert "baselined" in capsys.readouterr().out
        # ...and without the baseline it still fails
        assert main(["lint", str(bad)]) == 1


class TestRepoSelfCheck:
    """The committed baseline matches the tree: strict lint is clean."""

    def test_strict_lint_clean_against_committed_baseline(self):
        result = run_lint(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
            strict=True,
            config=load_config(REPO_ROOT),
            baseline=Baseline.load(BASELINE_PATH),
        )
        details = [(f.rule, f.logical, f.line, f.message) for f in result.findings]
        assert result.findings == [], details
        assert result.ok

    def test_committed_baseline_is_not_stale(self):
        """Every baseline entry still matches a real finding — deleting
        the accepted debt without pruning the baseline must surface."""
        baseline = Baseline.load(BASELINE_PATH)
        result = run_lint(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
            strict=True,
            config=load_config(REPO_ROOT),
            baseline=baseline,
        )
        assert result.baselined == len(baseline)
