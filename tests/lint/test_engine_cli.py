"""End-to-end lint runs: the seeded fixture, the real tree, and the CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import exit_code, render_json, render_text, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
BAD_MODULE = FIXTURES / "repro" / "core" / "bad_discipline.py"


class TestFixtureModule:
    """The acceptance fixture seeds one violation of every rule."""

    def test_every_rule_fires_with_location(self):
        result = run_lint([str(FIXTURES)])
        fired = {f.rule for f in result.findings}
        assert {"R001", "R002", "R003", "R004"} <= fired
        for finding in result.findings:
            assert finding.path.endswith("bad_discipline.py")
            assert finding.line >= 1
        assert exit_code(result) == 1

    def test_expected_violation_lines(self):
        result = run_lint([str(BAD_MODULE)])
        by_rule = {}
        for f in result.findings:
            by_rule.setdefault(f.rule, []).append(f.line)
        source_lines = BAD_MODULE.read_text().splitlines()
        # R001: `import random` plus the two calls in jitter().
        assert len(by_rule["R001"]) == 3
        # R002: time.time() and the set-literal iteration.
        assert len(by_rule["R002"]) == 2
        # R003: missing __all__ (line 1) and raw_scan's bare pvar.
        assert 1 in by_rule["R003"]
        # R004: the sum_scan call inside raw_scan.
        [r004_line] = by_rule["R004"]
        assert "sum_scan(values)" in source_lines[r004_line - 1]


class TestRealTreeStaysClean:
    def test_src_lints_clean(self):
        result = run_lint([str(REPO_ROOT / "src")])
        assert result.findings == [], render_text(result)
        assert result.files_checked > 50
        assert exit_code(result) == 0


class TestReporting:
    def test_text_report_format(self):
        result = run_lint([str(BAD_MODULE)])
        text = render_text(result)
        first = text.splitlines()[0]
        path, line, col, rest = first.split(":", 3)
        assert path.endswith("bad_discipline.py")
        assert int(line) >= 1 and int(col) >= 0
        assert rest.strip().startswith("R0")
        assert "suppressed" in text.splitlines()[-1]

    def test_json_report_round_trips(self):
        result = run_lint([str(BAD_MODULE)])
        payload = json.loads(render_json(result))
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert {"R001", "R002", "R003", "R004"} <= rules
        for f in payload["findings"]:
            assert set(f) == {
                "rule", "path", "line", "col", "message", "severity",
                "logical", "snippet",
            }
            assert f["logical"].startswith("repro/")
            assert f["snippet"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint([str(REPO_ROOT / "no_such_dir")])


@pytest.fixture
def fixture_copy(tmp_path):
    """The seeded fixture outside tests/lint/fixtures.

    The repo's ``[tool.repro.lint]`` excludes the fixture tree, and the
    CLI loads that config — so CLI tests lint a copy whose path the
    exclude pattern does not match.
    """
    target = tmp_path / "repro" / "core" / "bad_discipline.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_MODULE.read_text())
    return target


class TestCli:
    def test_lint_fixture_exits_nonzero(self, fixture_copy, capsys):
        assert main(["lint", str(fixture_copy)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "bad_discipline.py" in out

    def test_lint_src_exits_zero(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_fixture_tree_excluded_by_repo_config(self, capsys):
        """Linting the real fixture path through the CLI checks nothing:
        the committed exclude keeps seeded violations out of CI runs."""
        assert main(["lint", str(FIXTURES)]) == 0
        assert "0 file(s) checked" in capsys.readouterr().out

    def test_json_format(self, fixture_copy, capsys):
        assert main(["lint", str(fixture_copy), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]

    def test_rule_subset(self, fixture_copy, capsys):
        assert main(["lint", str(fixture_copy), "--rules", "R002"]) == 1
        out = capsys.readouterr().out
        assert "R002" in out and "R001" not in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004"):
            assert rule_id in out
