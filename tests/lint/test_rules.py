"""Per-rule behaviour of the R001-R004 static checks."""

import pytest

from repro.lint import all_rules, run_lint


def lint_source(tmp_path, source, rel="repro/core/mod.py", rules=None):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_lint([str(path)], rules=rules)


def rule_hits(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


CLEAN_HEADER = '__all__ = []\n'


class TestR001:
    def test_flags_stdlib_random_import_and_call(self, tmp_path):
        result = lint_source(
            tmp_path,
            CLEAN_HEADER + "import random\n\n\ndef f():\n    return random.random()\n",
            rules=["R001"],
        )
        assert len(rule_hits(result, "R001")) == 2

    def test_flags_numpy_default_rng_call(self, tmp_path):
        result = lint_source(
            tmp_path,
            CLEAN_HEADER + "import numpy as np\n\n\ndef f():\n"
            "    return np.random.default_rng(3)\n",
            rules=["R001"],
        )
        hits = rule_hits(result, "R001")
        assert len(hits) == 1
        assert hits[0].line == 6
        assert "numpy.random.default_rng" in hits[0].message

    def test_flags_from_numpy_random_import(self, tmp_path):
        result = lint_source(
            tmp_path,
            CLEAN_HEADER + "from numpy.random import default_rng\n",
            rules=["R001"],
        )
        assert len(rule_hits(result, "R001")) == 1

    def test_annotations_and_isinstance_not_flagged(self, tmp_path):
        source = (
            "from __future__ import annotations\n"
            + CLEAN_HEADER
            + "import numpy as np\n\n\n"
            "def f(rng: np.random.Generator) -> np.random.Generator:\n"
            "    assert isinstance(rng, np.random.Generator)\n"
            "    return rng\n"
        )
        assert not lint_source(tmp_path, source, rules=["R001"]).findings

    def test_rng_module_itself_exempt(self, tmp_path):
        source = (
            CLEAN_HEADER + "import numpy as np\n\n\ndef g(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        result = lint_source(tmp_path, source, rel="repro/util/rng.py", rules=["R001"])
        assert not result.findings

    def test_applies_outside_core_too(self, tmp_path):
        source = CLEAN_HEADER + "import random\n"
        result = lint_source(
            tmp_path, source, rel="repro/problems/mod.py", rules=["R001"]
        )
        assert len(rule_hits(result, "R001")) == 1


class TestR002:
    def test_flags_wall_clock_in_core(self, tmp_path):
        source = CLEAN_HEADER + "import time\n\n\ndef f():\n    return time.time()\n"
        result = lint_source(tmp_path, source, rules=["R002"])
        hits = rule_hits(result, "R002")
        assert len(hits) == 1 and hits[0].line == 6

    def test_flags_from_import_alias(self, tmp_path):
        source = (
            CLEAN_HEADER + "from time import perf_counter as clock\n\n\n"
            "def f():\n    return clock()\n"
        )
        assert len(rule_hits(lint_source(tmp_path, source, rules=["R002"]), "R002")) == 1

    def test_flags_urandom_and_uuid(self, tmp_path):
        source = (
            CLEAN_HEADER + "import os\nimport uuid\n\n\ndef f():\n"
            "    return os.urandom(4), uuid.uuid4()\n"
        )
        assert len(rule_hits(lint_source(tmp_path, source, rules=["R002"]), "R002")) == 2

    def test_flags_set_iteration(self, tmp_path):
        source = (
            CLEAN_HEADER + "def f(xs):\n"
            "    for x in set(xs):\n"
            "        yield x\n"
            "    return [y for y in {1, 2}]\n"
        )
        assert len(rule_hits(lint_source(tmp_path, source, rules=["R002"]), "R002")) == 2

    def test_sorted_set_iteration_allowed(self, tmp_path):
        source = (
            CLEAN_HEADER + "def f(xs):\n"
            "    for x in sorted(set(xs)):\n"
            "        yield x\n"
        )
        assert not lint_source(tmp_path, source, rules=["R002"]).findings

    def test_out_of_scope_module_ignored(self, tmp_path):
        source = CLEAN_HEADER + "import time\n\n\ndef f():\n    return time.time()\n"
        result = lint_source(
            tmp_path, source, rel="repro/experiments/mod.py", rules=["R002"]
        )
        assert not result.findings


class TestR003:
    def test_public_module_without_all_flagged(self, tmp_path):
        result = lint_source(tmp_path, "x = 1\n", rules=["R003"])
        hits = rule_hits(result, "R003")
        assert len(hits) == 1 and hits[0].line == 1

    def test_private_module_exempt(self, tmp_path):
        result = lint_source(
            tmp_path, "x = 1\n", rel="repro/core/_helpers.py", rules=["R003"]
        )
        assert not result.findings

    def test_pvar_without_where_flagged(self, tmp_path):
        source = (
            CLEAN_HEADER + "def f(vm):\n"
            '    """Make a counter."""\n'
            "    return vm.pvar(1)\n"
        )
        hits = rule_hits(lint_source(tmp_path, source, rules=["R003"]), "R003")
        assert len(hits) == 1
        assert "'f'" in hits[0].message

    def test_pvar_under_where_allowed(self, tmp_path):
        source = (
            CLEAN_HEADER + "def f(vm, mask):\n"
            "    with vm.where(mask):\n"
            "        return vm.pvar(1)\n"
        )
        assert not lint_source(tmp_path, source, rules=["R003"]).findings

    def test_pvar_documented_full_width_allowed(self, tmp_path):
        source = (
            CLEAN_HEADER + "def f(vm):\n"
            '    """Build a counter, full-width on purpose."""\n'
            "    return vm.pvar(1)\n"
        )
        assert not lint_source(tmp_path, source, rules=["R003"]).findings


class TestR004:
    def test_raw_collective_flagged_in_core(self, tmp_path):
        source = (
            CLEAN_HEADER + "from repro.simd.scan import rendezvous\n\n\n"
            "def f(i, b):\n    return rendezvous(i, b)\n"
        )
        hits = rule_hits(lint_source(tmp_path, source, rules=["R004"]), "R004")
        assert len(hits) == 1 and "rendezvous" in hits[0].message

    def test_package_reexport_flagged(self, tmp_path):
        source = (
            CLEAN_HEADER + "from repro.simd import reduce_array\n\n\n"
            "def f(v):\n    return reduce_array(v, 'sum')\n"
        )
        assert len(rule_hits(lint_source(tmp_path, source, rules=["R004"]), "R004")) == 1

    def test_simd_package_itself_exempt(self, tmp_path):
        source = (
            CLEAN_HEADER + "from repro.simd.scan import sum_scan\n\n\n"
            "def f(v):\n    return sum_scan(v)\n"
        )
        result = lint_source(
            tmp_path, source, rel="repro/simd/mod.py", rules=["R004"]
        )
        assert not result.findings

    def test_vm_method_call_allowed(self, tmp_path):
        source = (
            CLEAN_HEADER + "def f(vm, v):\n    return vm.scan_add(v)\n"
        )
        assert not lint_source(tmp_path, source, rules=["R004"]).findings


class TestSuppression:
    def test_inline_disable(self, tmp_path):
        source = (
            CLEAN_HEADER
            + "import random  # repro-lint: disable=R001\n"
        )
        result = lint_source(tmp_path, source, rules=["R001"])
        assert not result.findings and result.suppressed == 1

    def test_inline_disable_all(self, tmp_path):
        source = CLEAN_HEADER + "import random  # repro-lint: disable=all\n"
        result = lint_source(tmp_path, source, rules=["R001"])
        assert not result.findings and result.suppressed == 1

    def test_file_level_disable_with_justification(self, tmp_path):
        source = (
            "# repro-lint: disable-file=R001 -- fixture exercises raw RNG\n"
            + CLEAN_HEADER
            + "import random\n\n\ndef f():\n    return random.random()\n"
        )
        result = lint_source(tmp_path, source, rules=["R001"])
        assert not result.findings and result.suppressed == 2

    def test_disable_wrong_rule_does_not_suppress(self, tmp_path):
        source = CLEAN_HEADER + "import random  # repro-lint: disable=R004\n"
        result = lint_source(tmp_path, source, rules=["R001"])
        assert len(result.findings) == 1 and result.suppressed == 0


class TestRegistry:
    def test_five_rules_registered(self):
        assert [r.rule_id for r in all_rules()] == [
            "R001", "R002", "R003", "R004", "R005",
        ]

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            all_rules(["R999"])

    def test_parse_error_reported_not_raised(self, tmp_path):
        result = lint_source(tmp_path, "def broken(:\n")
        assert len(result.findings) == 1
        assert result.findings[0].rule == "R000"
        assert result.findings[0].line >= 1


class TestR005:
    VIOLATION = CLEAN_HEADER + (
        "def f(trace):\n"
        "    trace.busy_per_cycle.append(3)\n"
        "    trace.lb_cycle_indices.extend([1, 2])\n"
    )

    def test_flags_direct_series_mutation(self, tmp_path):
        result = lint_source(tmp_path, self.VIOLATION, rules=["R005"])
        assert len(rule_hits(result, "R005")) == 2

    def test_exempt_inside_repro_obs(self, tmp_path):
        result = lint_source(
            tmp_path, self.VIOLATION, rel="repro/obs/custom_sink.py",
            rules=["R005"],
        )
        assert rule_hits(result, "R005") == []

    def test_exempt_in_metrics_module_itself(self, tmp_path):
        result = lint_source(
            tmp_path, self.VIOLATION, rel="repro/core/metrics.py",
            rules=["R005"],
        )
        assert rule_hits(result, "R005") == []

    def test_record_calls_are_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            CLEAN_HEADER + (
                "def f(trace, lists):\n"
                "    trace.record_cycle(1, 2, 0.5, 0.25)\n"
                "    trace.record_lb(7)\n"
                "    lists.other_series.append(3)\n"
            ),
            rules=["R005"],
        )
        assert rule_hits(result, "R005") == []

    def test_src_tree_is_clean(self):
        result = run_lint(["src"], rules=["R005"])
        assert rule_hits(result, "R005") == []
