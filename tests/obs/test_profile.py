"""Span profiler: totals, Chrome-trace export, and kernel-time fidelity."""

import json
import time

import pytest

from repro.core.scheduler import Scheduler
from repro.obs.profile import (
    Profiler,
    active_profiler,
    profiled,
    span,
)
from repro.simd.machine import SimdMachine
from repro.workmodel.stackmodel import StackWorkload


class TestProfilerBasics:
    def test_span_off_by_default(self):
        assert active_profiler() is None
        with span("noop"):  # must be a free no-op when nothing is active
            pass

    def test_totals_aggregate_per_name(self):
        prof = Profiler()
        with profiled(prof):
            for _ in range(3):
                with span("k"):
                    pass
        totals = prof.totals()
        assert totals["k"]["count"] == 3
        assert totals["k"]["seconds"] >= 0.0
        assert active_profiler() is None  # context manager restored

    def test_max_spans_keeps_totals(self):
        prof = Profiler(max_spans=2)
        with profiled(prof):
            for _ in range(5):
                with span("k"):
                    pass
        assert len(prof.spans) == 2
        assert prof.n_dropped == 3
        assert prof.totals()["k"]["count"] == 5

    def test_chrome_trace_is_valid_json_schema(self, tmp_path):
        prof = Profiler()
        with profiled(prof):
            with span("outer", cat="test"):
                with span("inner", cat="test"):
                    pass
        path = prof.save_chrome_trace(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert len(events) == 2
        for e in events:
            assert e["ph"] == "X"
            assert set(e) >= {"name", "cat", "ts", "dur", "pid", "tid"}
        # Nesting: the outer span encloses the inner one on the timeline.
        by_name = {e["name"]: e for e in events}
        assert by_name["outer"]["ts"] <= by_name["inner"]["ts"]
        assert (
            by_name["outer"]["ts"] + by_name["outer"]["dur"]
            >= by_name["inner"]["ts"] + by_name["inner"]["dur"]
        )


class TestKernelSpanFidelity:
    def test_expand_span_sum_matches_directly_timed_kernel(self, monkeypatch):
        """The acceptance bar: the profiler's expansion-kernel span sum
        agrees with an independent perf_counter measurement of the same
        kernel bodies to within 10%."""
        manual = [0.0]
        inner = StackWorkload._expand_cycle_arena_inner

        def timed_inner(self):
            t0 = time.perf_counter()
            out = inner(self)
            manual[0] += time.perf_counter() - t0
            return out

        monkeypatch.setattr(
            StackWorkload, "_expand_cycle_arena_inner", timed_inner
        )
        workload = StackWorkload(40_000, 128, rng=0, backend="arena")
        machine = SimdMachine(128)
        prof = Profiler()
        with profiled(prof):
            Scheduler(
                workload, machine, "GP-DK", init_threshold=0.85
            ).run()
        kernel = prof.total_seconds("expand.stack.arena")
        assert kernel > 0.0
        assert kernel == pytest.approx(manual[0], rel=0.10)
        # Every expansion cycle produced exactly one span.
        assert prof.totals()["expand.stack.arena"]["count"] == machine.n_cycles
