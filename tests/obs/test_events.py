"""Typed trace events and the two bounded sinks."""

import pickle

import pytest

from repro.obs.events import (
    CycleEvent,
    FaultEvent,
    IterationEvent,
    JsonlSink,
    LBPhaseEvent,
    RecoveryEvent,
    RingBufferSink,
    event_from_dict,
    read_jsonl_events,
)

ALL_EVENTS = [
    CycleEvent(cycle=3, busy=7, expanding=9, r1=1.5, r2=0.25),
    LBPhaseEvent(cycle=4, rounds=2, transfers=11, dt=0.125),
    RecoveryEvent(cycle=5, rounds=1, transfers=3),
    FaultEvent(cycle=6, event="death", pe=13),
    FaultEvent(cycle=6, event="quarantine", pe=13, entries=42),
    IterationEvent(cycle=7, bound=22, expanded=900),
]


class TestEventSchema:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: e.kind)
    def test_dict_round_trip(self, event):
        d = event.to_dict()
        assert d["kind"] == event.kind
        assert event_from_dict(d) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            event_from_dict({"kind": "nope", "cycle": 0})

    def test_events_are_immutable(self):
        with pytest.raises(AttributeError):
            ALL_EVENTS[0].busy = 99


class TestRingBufferSink:
    def test_wraparound_keeps_newest_and_counts_dropped(self):
        sink = RingBufferSink(maxlen=4)
        for i in range(10):
            sink.emit(IterationEvent(cycle=i, bound=i, expanded=i))
        assert len(sink) == 4
        assert sink.n_emitted == 10
        assert sink.dropped == 6
        assert [e.cycle for e in sink] == [6, 7, 8, 9]

    def test_unbounded_escape_hatch(self):
        sink = RingBufferSink(maxlen=None)
        for i in range(100):
            sink.emit(CycleEvent(cycle=i, busy=0, expanding=0, r1=0.0, r2=0.0))
        assert len(sink) == 100 and sink.dropped == 0

    def test_kind_filter(self):
        sink = RingBufferSink()
        for event in ALL_EVENTS:
            sink.emit(event)
        assert [e.kind for e in sink.events("fault")] == ["fault", "fault"]
        assert sink.events() == ALL_EVENTS

    def test_rejects_bad_maxlen(self):
        with pytest.raises(ValueError, match="maxlen"):
            RingBufferSink(maxlen=0)


class TestJsonlSink:
    def test_streams_and_reads_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        for event in ALL_EVENTS:
            sink.emit(event)
        sink.close()
        assert read_jsonl_events(path) == ALL_EVENTS

    def test_append_across_reopen(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = JsonlSink(path)
        first.emit(ALL_EVENTS[0])
        first.close()
        second = JsonlSink(path)
        second.emit(ALL_EVENTS[1])
        second.close()
        assert read_jsonl_events(path) == ALL_EVENTS[:2]

    def test_picklable_mid_stream(self, tmp_path):
        """Checkpointed runs can carry a streaming sink: the live file
        handle is dropped on pickle and reopens on the next emit."""
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit(ALL_EVENTS[0])
        clone = pickle.loads(pickle.dumps(sink))
        sink.close()
        clone.emit(ALL_EVENTS[1])
        clone.close()
        assert read_jsonl_events(path) == ALL_EVENTS[:2]


class TestRegisterEventType:
    def test_round_trip_of_registered_kind(self, tmp_path):
        from dataclasses import dataclass

        from repro.obs.events import (
            TraceEvent,
            event_from_dict,
            register_event_type,
        )

        @register_event_type
        @dataclass(frozen=True)
        class ProbeEvent(TraceEvent):
            note: str = ""
            kind = "test-probe"

        original = ProbeEvent(cycle=3, note="hello")
        rebuilt = event_from_dict(original.to_dict())
        assert rebuilt == original

    def test_reregistering_same_class_is_noop(self):
        from repro.serve.schemas import JobEvent
        from repro.obs.events import register_event_type

        assert register_event_type(JobEvent) is JobEvent

    def test_conflicting_kind_is_refused(self):
        from dataclasses import dataclass

        from repro.obs.events import TraceEvent, register_event_type

        @dataclass(frozen=True)
        class Impostor(TraceEvent):
            kind = "cycle"  # the built-in scheduler event's kind

        with pytest.raises(ValueError, match="already registered"):
            register_event_type(Impostor)

    def test_missing_kind_is_refused(self):
        from dataclasses import dataclass

        from repro.obs.events import TraceEvent, register_event_type

        @dataclass(frozen=True)
        class Unkinded(TraceEvent):
            kind = ""

        with pytest.raises(ValueError, match="non-empty string"):
            register_event_type(Unkinded)
