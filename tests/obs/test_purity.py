"""Observation purity: instrumentation never changes what a run computes.

The canonical acceptance test of the observability layer — for every
Table 1 scheme on both storage backends, with the runtime sanitizer
asserting the lock-step invariants throughout, a fully instrumented run
(ring-buffer events + metrics registry + active profiler + bounded
Trace) produces ``RunMetrics`` bit-identical to a bare run.
"""

import pytest

from repro.core.config import PAPER_SCHEMES
from repro.core.scheduler import Scheduler
from repro.experiments.runner import default_init_threshold
from repro.lint.runtime import SanitizerError, check_observation_purity
from repro.obs import MetricsRegistry, Observability, Profiler, RingBufferSink, profiled
from repro.simd.machine import SimdMachine
from repro.workmodel.stackmodel import StackWorkload

WORK, N_PES, SEED = 6_000, 32, 5


def _run(spec, backend, obs=None, trace=True):
    workload = StackWorkload(WORK, N_PES, rng=SEED, backend=backend)
    machine = SimdMachine(N_PES)
    return Scheduler(
        workload,
        machine,
        spec,
        init_threshold=default_init_threshold(spec),
        trace=trace,
        sanitize=True,
        obs=obs,
    ).run()


class TestPurityAcrossSchemes:
    @pytest.mark.parametrize("backend", ["list", "arena"])
    @pytest.mark.parametrize("spec", PAPER_SCHEMES)
    def test_metrics_bit_identical_with_full_instrumentation(self, spec, backend):
        bare = _run(spec, backend)
        obs = Observability(events=RingBufferSink(), metrics=MetricsRegistry())
        with profiled(Profiler()):
            observed = _run(spec, backend, obs=obs)
        check_observation_purity(bare, observed)
        assert bare == observed
        assert obs.events.n_emitted > 0
        assert obs.metrics.counter("runs_total").value == 0  # folded by drivers


class TestObservedSeriesConsistency:
    def test_cycle_events_mirror_the_trace(self):
        obs = Observability(events=RingBufferSink())
        metrics = _run("GP-DK", "arena", obs=obs)
        cycles = obs.events.events("cycle")
        assert len(cycles) == metrics.n_expand
        assert [e.busy for e in cycles] == metrics.trace.busy_per_cycle
        assert [e.cycle for e in cycles] == sorted(e.cycle for e in cycles)

    def test_lb_events_count_phases(self):
        obs = Observability(events=RingBufferSink())
        metrics = _run("GP-DK", "arena", obs=obs)
        lb = obs.events.events("lb")
        # Initial-distribution phases pre-date the trigger loop, so only
        # the n_lb triggered phases emit LBPhaseEvents.
        assert len(lb) == metrics.n_lb
        assert 0 < sum(e.transfers for e in lb) <= metrics.n_transfers


class TestPurityChecker:
    def test_flags_first_differing_field(self):
        a = _run("GP-DK", "arena")
        b = _run("GP-DP", "arena")
        with pytest.raises(SanitizerError, match="observation-purity"):
            check_observation_purity(a, b)
