"""Metrics registry: instruments, snapshots, and the ledger-identity check."""

import json

import pytest

from repro.errors import RecordStoreError
from repro.experiments.runner import run_divisible
from repro.obs import (
    MetricsRegistry,
    Observability,
    check_snapshot_identity,
    load_snapshot,
    record_run,
    render_snapshot,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrement(self):
        reg = MetricsRegistry()
        c = reg.counter("nodes")
        c.inc()
        c.inc(41)
        assert reg.counter("nodes").value == 42
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_labels_become_distinct_keys(self):
        reg = MetricsRegistry()
        reg.counter("lb.phases", {"scheme": "GP-DK"}).inc()
        reg.counter("lb.phases", {"scheme": "nGP-DP"}).inc(2)
        snap = reg.snapshot()
        assert snap["counters"]["lb.phases{scheme=GP-DK}"] == 1
        assert snap["counters"]["lb.phases{scheme=nGP-DP}"] == 2

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("eff").set(0.5)
        reg.gauge("eff").set(0.9)
        assert reg.gauge("eff").value == 0.9

    def test_histogram_buckets_cumulative_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("transfers", buckets=(1, 10))
        for v in (0, 1, 5, 100):
            h.observe(v)
        assert h.count == 4
        assert h.bucket_counts == [2, 1, 1]  # <=1, <=10, +Inf
        assert h.mean == pytest.approx(106 / 4)


class TestSnapshotPersistence:
    def test_save_load_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(7)
        path = reg.save_json(tmp_path / "snap.json")
        assert load_snapshot(path) == reg.snapshot()

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{not json")
        with pytest.raises(RecordStoreError):
            load_snapshot(path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(RecordStoreError, match="schema"):
            load_snapshot(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(RecordStoreError):
            load_snapshot(tmp_path / "absent.json")


class TestRecordRun:
    @pytest.fixture(scope="class")
    def registry(self):
        reg = MetricsRegistry()
        obs = Observability(metrics=reg)
        run_divisible("GP-DK", 5_000, 32, seed=3, obs=obs)
        return reg

    def test_ledger_identity_holds_in_snapshot(self, registry):
        assert check_snapshot_identity(registry.snapshot()) == ["GP-DK"]

    def test_counters_match_run(self, registry):
        snap = registry.snapshot()
        assert snap["counters"]["runs_total"] == 1
        assert snap["counters"]["search.nodes_expanded{scheme=GP-DK}"] == 5_000

    def test_identity_check_catches_tampering(self, registry):
        snap = registry.snapshot()
        snap["gauges"]["ledger.t_calc{scheme=GP-DK}"] += 123.0
        with pytest.raises(RecordStoreError, match="ledger identity"):
            check_snapshot_identity(snap)

    def test_render_is_deterministic_text(self, registry):
        text = render_snapshot(registry.snapshot())
        assert text == render_snapshot(registry.snapshot())
        assert "runs_total" in text and "ledger.t_par{scheme=GP-DK}" in text


class TestFold:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("nodes").inc(10)
        b.counter("nodes").inc(32)
        b.counter("lb.phases", {"scheme": "GP-DK"}).inc()
        a.fold(b)
        assert a.counter("nodes").value == 42
        assert a.snapshot()["counters"]["lb.phases{scheme=GP-DK}"] == 1

    def test_gauges_take_folded_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("eff").set(0.1)
        b.gauge("eff").set(0.9)
        a.fold(b)
        assert a.gauge("eff").value == 0.9

    def test_histograms_merge_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0, 5):
            a.histogram("transfers", buckets=(1, 10)).observe(v)
        for v in (1, 100):
            b.histogram("transfers", buckets=(1, 10)).observe(v)
        a.fold(b)
        h = a.histogram("transfers", buckets=(1, 10))
        assert h.count == 4
        assert h.bucket_counts == [2, 1, 1]

    def test_bucket_mismatch_is_refused(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("transfers", buckets=(1, 10)).observe(1)
        b._histograms["transfers"] = type(a._histograms["transfers"])(
            "transfers", (2, 20)
        )
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.fold(b)

    def test_fold_empty_is_identity(self):
        a = MetricsRegistry()
        a.counter("nodes").inc(7)
        before = a.snapshot()
        a.fold(MetricsRegistry())
        assert a.snapshot() == before
