"""Examples stay importable and the fast ones actually run."""

import py_compile
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute inside the test suite.
FAST = ["matching_walkthrough.py", "optimal_trigger_tuning.py"]


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in ALL_EXAMPLES}
        assert "quickstart.py" in names
        assert len(names) >= 3, "the deliverable requires >= 3 examples"

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("name", FAST)
    def test_fast_examples_run(self, name, capsys):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip(), f"{name} produced no output"

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_has_module_docstring(self, path):
        first = path.read_text().lstrip().splitlines()
        text = "\n".join(first[:5])
        assert '"""' in text, f"{path.name} lacks a module docstring"
