"""Tests for repro.util.atomic — durable, concurrency-safe publication."""

import os

import pytest

from repro.util.atomic import atomic_write_bytes, atomic_write_text, fsync_dir


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "out.bin"
        returned = atomic_write_bytes(path, b"\x00\x01payload")
        assert returned == path
        assert path.read_bytes() == b"\x00\x01payload"

    def test_writes_text_utf8(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "speedup → 1024 PEs")
        assert path.read_text(encoding="utf-8") == "speedup → 1024 PEs"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_file_left_on_success(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "data")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_unique_staging_names(self, tmp_path, monkeypatch):
        """Two writers staging for one target never share a temp name —
        the fixed-name ``.tmp`` race this helper replaces."""
        staged = []
        real_replace = os.replace

        def spy_replace(src, dst):
            staged.append(os.path.basename(src))
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy_replace)
        path = tmp_path / "out.txt"
        atomic_write_text(path, "a")
        atomic_write_text(path, "b")
        assert len(staged) == 2
        assert staged[0] != staged[1]
        assert all(name.startswith("out.txt.") for name in staged)

    def test_crash_before_replace_preserves_target_and_cleans_tmp(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "survivor")

        def boom(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(path, "lost update")
        monkeypatch.undo()
        assert path.read_text() == "survivor"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_parent_must_exist(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            atomic_write_text(tmp_path / "missing" / "out.txt", "data")


class TestFsyncDir:
    def test_syncs_existing_directory(self, tmp_path):
        fsync_dir(tmp_path)  # must not raise

    def test_missing_directory_is_tolerated(self, tmp_path):
        # Platforms where directories cannot be opened (or the dir is
        # gone) must not turn a successful rename into a crash.
        fsync_dir(tmp_path / "never-created")

    def test_called_by_atomic_write(self, tmp_path, monkeypatch):
        import repro.util.atomic as atomic_mod

        synced = []
        monkeypatch.setattr(
            atomic_mod, "fsync_dir", lambda p: synced.append(str(p))
        )
        atomic_mod.atomic_write_text(tmp_path / "out.txt", "data")
        assert synced == [str(tmp_path)]
