import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All lines align to the same width.
        assert len(set(len(line) for line in lines)) == 1

    def test_title_prepended(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_none_renders_dash(self):
        out = format_table(["a"], [[None]])
        assert out.splitlines()[-1].strip() == "-"

    def test_formats_applied(self):
        out = format_table(["e"], [[0.123456]], formats=[".2f"])
        assert "0.12" in out
        assert "0.1234" not in out

    def test_string_cells_bypass_format(self):
        out = format_table(["e"], [["raw"]], formats=[".2f"])
        assert "raw" in out

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_formats_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="formats"):
            format_table(["a"], [[1]], formats=[None, None])
