import pytest

from repro.util.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot(
            {"a": [(0, 0), (1, 1), (2, 4)]}, width=40, height=10, title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "o a" in out  # legend with first marker
        assert "x: x   y: y" in out

    def test_markers_distinct_per_series(self):
        out = ascii_plot({"a": [(0, 0)], "b": [(1, 1)]})
        assert "o a" in out and "x b" in out

    def test_log_axes(self):
        out = ascii_plot(
            {"curve": [(10, 100), (100, 10000)]}, logx=True, logy=True
        )
        assert "1e+04" in out or "10000" in out or "1e+4" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_plot({"a": [(0, 1)]}, logx=True)

    def test_constant_series_padded(self):
        out = ascii_plot({"flat": [(1, 5), (2, 5)]})
        assert "flat" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": []})

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 0)]}, width=4, height=2)

    def test_points_land_in_grid(self):
        out = ascii_plot({"a": [(0, 0), (10, 10)]}, width=20, height=8)
        # Corner points: a marker at bottom-left and top-right rows.
        rows = [line for line in out.splitlines() if "|" in line]
        assert "o" in rows[0]
        assert "o" in rows[-1]
